//! Reinforcement-learning Eddies.
//!
//! Tuples from a driver table are routed, one at a time, through the
//! remaining join "operators" (hash-index lookups for equality predicates,
//! filtered scans otherwise). The routing policy learns online which
//! operator to visit next from the observed expansion cost (probes plus
//! matches) per (joined-set, next-table) pair, with ε-greedy exploration —
//! the Q-learning formulation of Tzoumas et al.
//!
//! Faithful to the paper's characterization, partial tuples are **never
//! discarded**: once an intermediate tuple exists it will be routed to
//! completion no matter how expensive, which is exactly why bad early
//! routing decisions hurt (no regret bound).

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_exec::{
    postprocess, preprocess, ExecContext, ExecMetrics, ExecOutcome, ExecutionStrategy, Timeout,
    TupleIxs, WorkBudget,
};
use skinner_query::expr::EvalCtx;
use skinner_query::{JoinQuery, TableSet};
use skinner_storage::{HashIndex, RowId};

/// Eddy configuration.
#[derive(Debug, Clone)]
pub struct EddyConfig {
    /// ε-greedy exploration rate.
    pub epsilon: f64,
    pub seed: u64,
    /// Global work-unit cap.
    pub work_limit: u64,
    pub preprocess_threads: usize,
}

impl Default for EddyConfig {
    fn default() -> Self {
        EddyConfig {
            epsilon: 0.1,
            seed: 0x0EDD1,
            work_limit: u64::MAX,
            preprocess_threads: 1,
        }
    }
}

/// The eddy as a pluggable [`ExecutionStrategy`].
#[derive(Debug, Clone, Default)]
pub struct EddyStrategy(pub EddyConfig);

impl ExecutionStrategy for EddyStrategy {
    fn name(&self) -> &str {
        "Eddy"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_eddy(query, ctx, &self.0)
    }
}

/// Running average expansion cost per (joined-set, next-table).
#[derive(Default)]
struct QTable {
    stats: HashMap<(u64, usize), (f64, u64)>,
}

impl QTable {
    fn update(&mut self, mask: u64, t: usize, cost: f64) {
        let e = self.stats.entry((mask, t)).or_insert((0.0, 0));
        e.0 += cost;
        e.1 += 1;
    }

    fn mean(&self, mask: u64, t: usize) -> Option<f64> {
        self.stats
            .get(&(mask, t))
            .map(|&(sum, n)| sum / n.max(1) as f64)
    }
}

/// Evaluate `query` with an RL eddy. The outcome's metrics report a
/// `routings` counter (tuple routing decisions taken).
pub fn run_eddy(query: &JoinQuery, ctx: &ExecContext, cfg: &EddyConfig) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let bail = |budget: &WorkBudget, routings: u64, start: Instant| {
        ctx.absorb_work(budget.used());
        ExecOutcome::timeout(columns.clone(), budget.used(), start.elapsed())
            .with_metrics(ExecMetrics::default().with_counter("routings", routings))
    };

    let pre = match preprocess(query, &budget, cfg.preprocess_threads) {
        Ok(p) => p,
        Err(_) => return bail(&budget, 0, start),
    };
    let m = query.num_tables();
    let graph = query.join_graph();
    let interner = pre.tables[0].interner().clone();

    // STeM-like hash indexes over every equality join column.
    let mut indexes: HashMap<(usize, usize), HashIndex> = HashMap::new();
    for t in 0..m {
        for col in query.equi_join_columns(t) {
            if budget.charge(pre.tables[t].num_rows() as u64).is_err() {
                return bail(&budget, 0, start);
            }
            indexes.insert((t, col), HashIndex::build(pre.tables[t].column(col)));
        }
    }

    let mut q = QTable::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut results: Vec<TupleIxs> = Vec::new();
    let mut routings = 0u64;
    let mut timed_out = false;

    if !query.always_false && pre.tables.iter().all(|t| t.num_rows() > 0) {
        // Driver: the smallest filtered table (a common eddy heuristic; the
        // routing policy handles everything after the first hop).
        let driver = (0..m).min_by_key(|&t| pre.tables[t].num_rows()).unwrap();
        // Depth-first routing stack avoids materializing the full frontier.
        // Entries: (mask of joined tables, tuple rows).
        let mut stack: Vec<(TableSet, TupleIxs)> = Vec::new();
        'driver: for row in 0..pre.tables[driver].cardinality() {
            // Cooperative cancellation/deadline, once per driver tuple.
            if ctx.interrupted() || budget.charge(1).is_err() {
                timed_out = true;
                break;
            }
            let mut t0 = vec![0 as RowId; m].into_boxed_slice();
            t0[driver] = row;
            stack.push((TableSet::singleton(driver), t0));
            while let Some((mask, tuple)) = stack.pop() {
                if mask.len() == m {
                    results.push(tuple);
                    continue;
                }
                routings += 1;
                let next = choose_next(&graph, &q, mask, &mut rng, cfg.epsilon);
                match expand(
                    query,
                    &pre.tables,
                    &indexes,
                    &interner,
                    &mask,
                    &tuple,
                    next,
                    &budget,
                ) {
                    Ok(children) => {
                        let cost = 1.0 + children.len() as f64;
                        q.update(mask.mask(), next, cost);
                        let new_mask = mask.with(next);
                        for c in children {
                            stack.push((new_mask, c));
                        }
                    }
                    Err(_) => {
                        timed_out = true;
                        break 'driver;
                    }
                }
            }
        }
    }

    if timed_out {
        return bail(&budget, routings, start);
    }
    let result = match postprocess(&pre.tables, query, &results, &budget) {
        Ok(r) => r,
        Err(_) => return bail(&budget, routings, start),
    };
    ctx.absorb_work(budget.used());
    ExecOutcome::completed(result, budget.used(), start.elapsed())
        .with_metrics(ExecMetrics::default().with_counter("routings", routings))
}

/// ε-greedy choice of the next table for a partial tuple class.
fn choose_next(
    graph: &skinner_query::JoinGraph,
    q: &QTable,
    mask: TableSet,
    rng: &mut StdRng,
    epsilon: f64,
) -> usize {
    let eligible: Vec<usize> = graph.eligible_next(mask).iter().collect();
    debug_assert!(!eligible.is_empty());
    if rng.gen::<f64>() < epsilon {
        return eligible[rng.gen_range(0..eligible.len())];
    }
    // Prefer unexplored actions, then lowest mean expansion cost.
    let mut best: Option<(f64, usize)> = None;
    for &t in &eligible {
        match q.mean(mask.mask(), t) {
            None => return t,
            Some(c) => {
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, t));
                }
            }
        }
    }
    best.unwrap().1
}

/// Join `tuple` with table `next`, returning all extended tuples.
#[allow(clippy::too_many_arguments)]
fn expand(
    query: &JoinQuery,
    tables: &[std::sync::Arc<skinner_storage::Table>],
    indexes: &HashMap<(usize, usize), HashIndex>,
    interner: &std::sync::Arc<skinner_storage::Interner>,
    mask: &TableSet,
    tuple: &TupleIxs,
    next: usize,
    budget: &WorkBudget,
) -> Result<Vec<TupleIxs>, Timeout> {
    let step_set = mask.with(next);
    // Equality predicates now applicable connecting `next` to the tuple.
    let equi: Vec<_> = query
        .equi_preds
        .iter()
        .filter(|p| p.table_set().is_subset_of(&step_set) && p.side_on(next).is_some())
        .collect();
    let generic: Vec<_> = query
        .generic_preds
        .iter()
        .filter(|p| p.tables.is_subset_of(&step_set) && p.tables.contains(next))
        .collect();
    let mut out = Vec::new();
    let mut scratch: Vec<RowId> = tuple.to_vec();
    let emit =
        |row: RowId, scratch: &mut Vec<RowId>, out: &mut Vec<TupleIxs>| -> Result<(), Timeout> {
            scratch[next] = row;
            budget.charge(generic.len() as u64)?;
            let ctx = EvalCtx::new(tables, scratch, interner);
            if generic.iter().all(|p| p.expr.eval_bool(&ctx)) {
                budget.produce_tuples(1)?;
                out.push(scratch.clone().into_boxed_slice());
            }
            Ok(())
        };
    if let Some(p) = equi.first() {
        // Probe the index of the first predicate; verify the rest.
        let mine = p.side_on(next).unwrap();
        let other = p.other_side(next).unwrap();
        let key = tables[other.table]
            .column(other.col)
            .key_at(tuple[other.table]);
        budget.charge(1)?;
        for &row in indexes[&(next, mine.col)].lookup(key) {
            budget.charge(1)?;
            let verified = equi.iter().skip(1).all(|p| {
                let mine = p.side_on(next).unwrap();
                let other = p.other_side(next).unwrap();
                tables[next].column(mine.col).key_at(row)
                    == tables[other.table]
                        .column(other.col)
                        .key_at(tuple[other.table])
            });
            if verified {
                emit(row, &mut scratch, &mut out)?;
            }
        }
    } else {
        // No equality predicate: scan.
        for row in 0..tables[next].cardinality() {
            budget.charge(1)?;
            emit(row, &mut scratch, &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..40 {
            a.push_row(&[Value::Int(i), Value::Int(i % 4)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..60 {
            b.push_row(&[Value::Int(i % 40), Value::Int(i % 8)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..8 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn matches_reference() {
        let cat = setup();
        for sql in [
            "SELECT a.id FROM a, b WHERE a.id = b.aid",
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw AND a.g = 1",
            "SELECT a.g, COUNT(*) cnt FROM a, b WHERE a.id = b.aid GROUP BY a.g ORDER BY a.g",
        ] {
            let q = bind(sql, &cat);
            let out = run_eddy(&q, &ExecContext::default(), &EddyConfig::default());
            assert!(!out.timed_out, "{sql}");
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn theta_join_via_scan() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, c WHERE a.id < c.bw", &cat);
        let out = run_eddy(&q, &ExecContext::default(), &EddyConfig::default());
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn work_limit_trips() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = EddyConfig {
            work_limit: 20,
            ..Default::default()
        };
        let out = run_eddy(&q, &ExecContext::default(), &cfg);
        assert!(out.timed_out);
    }

    #[test]
    fn routing_stats_accumulate() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let out = run_eddy(&q, &ExecContext::default(), &EddyConfig::default());
        assert!(out.metrics.counter("routings").unwrap() > 0);
    }

    #[test]
    fn empty_filter_is_empty_result() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 999",
            &cat,
        );
        let out = run_eddy(&q, &ExecContext::default(), &EddyConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
    }
}
