//! Adaptive query-processing baselines from the paper's appendix.
//!
//! SkinnerDB is compared against prior adaptive strategies; since their
//! original code is unavailable, the paper re-implemented them — and so do
//! we, sharing the storage/query/post-processing substrate so comparisons
//! isolate the *optimization* strategy (the paper does the same and
//! additionally counts predicate evaluations, Figure 11):
//!
//! * [`eddies`] — reinforcement-learning Eddies (Avnur & Hellerstein;
//!   Tzoumas et al.'s RL variant): per-tuple routing through join operators,
//!   learning routing quality online. Crucially, Eddies **never discard
//!   intermediate results**, the property the paper identifies as their
//!   weakness versus regret-bounded evaluation.
//! * [`reoptimizer`] — sampling-based re-optimization (Wu et al.): sample
//!   predicate selectivities, plan with calibrated estimates, materialize
//!   one join at a time, re-plan whenever observed cardinalities deviate.

pub mod eddies;
pub mod reoptimizer;

pub use eddies::{run_eddy, EddyConfig, EddyStrategy};
pub use reoptimizer::{run_reoptimizer, ReoptimizerConfig, ReoptimizerStrategy};
