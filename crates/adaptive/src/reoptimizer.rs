//! Sampling-based re-optimization (Wu et al., SIGMOD 2016).
//!
//! The baseline the paper's appendix compares against: before execution,
//! predicate selectivities are *measured on samples* instead of estimated
//! from statistics; during execution, each join is materialized one step at
//! a time, the observed intermediate cardinality is fed back into the
//! estimator, and the remaining join order is re-optimized whenever the
//! observation deviates from the estimate. The paper notes this repairs a
//! few wrong estimates well but still trusts the (possibly misled) planner
//! between checkpoints — and cannot undo a bad join it already materialized.

use std::time::Instant;

use skinner_exec::{
    join_step, postprocess, preprocess, ExecContext, ExecMetrics, ExecOutcome, ExecProfile,
    ExecutionStrategy, TupleIxs, WorkBudget,
};
use skinner_optimizer::dp::best_left_deep_from;
use skinner_query::{JoinQuery, TableSet};
use skinner_stats::{sample_selectivity, Estimator};
use skinner_storage::RowId;

/// Re-optimizer configuration.
#[derive(Debug, Clone)]
pub struct ReoptimizerConfig {
    /// Rows sampled per table for initial selectivity measurement.
    pub sample_size: usize,
    /// Re-plan when `max(obs,est)/min(obs,est)` exceeds this.
    pub deviation_threshold: f64,
    pub seed: u64,
    pub profile: ExecProfile,
    pub work_limit: u64,
    pub preprocess_threads: usize,
}

impl Default for ReoptimizerConfig {
    fn default() -> Self {
        ReoptimizerConfig {
            sample_size: 500,
            deviation_threshold: 2.0,
            seed: 0x5A3B1E,
            profile: ExecProfile::row_store(),
            work_limit: u64::MAX,
            preprocess_threads: 1,
        }
    }
}

/// The re-optimizer as a pluggable [`ExecutionStrategy`].
#[derive(Debug, Clone, Default)]
pub struct ReoptimizerStrategy(pub ReoptimizerConfig);

impl ExecutionStrategy for ReoptimizerStrategy {
    fn name(&self) -> &str {
        "Re-optimizer"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_reoptimizer(query, ctx, &self.0)
    }
}

fn reopt_metrics(order: Vec<usize>, replans: u32) -> ExecMetrics {
    ExecMetrics {
        order,
        ..ExecMetrics::default()
    }
    .with_counter("replans", replans as u64)
}

/// Evaluate `query` with sampling-based re-optimization. The outcome's
/// metrics report the executed `order` and a `replans` counter.
pub fn run_reoptimizer(
    query: &JoinQuery,
    ctx: &ExecContext,
    cfg: &ReoptimizerConfig,
) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let bail = |budget: &WorkBudget, replans: u32, order: Vec<usize>, start: Instant| {
        ctx.absorb_work(budget.used());
        ExecOutcome::timeout(columns.clone(), budget.used(), start.elapsed())
            .with_metrics(reopt_metrics(order, replans))
    };

    let m = query.num_tables();
    let graph = query.join_graph();
    let mut est = Estimator::new(query, ctx.stats());

    // Sampling pass: measure unary selectivities on samples (charged as one
    // unit per sampled predicate evaluation, like any predicate).
    for t in 0..m {
        if query.unary[t].is_empty() {
            continue;
        }
        let k = cfg.sample_size.min(query.tables[t].num_rows().max(1));
        if budget.charge((k * query.unary[t].len()) as u64).is_err() {
            return bail(&budget, 0, Vec::new(), start);
        }
        let sel = sample_selectivity(&query.tables, t, &query.unary[t], k, cfg.seed ^ (t as u64));
        est.calibrate_filtered(t, sel * query.tables[t].num_rows() as f64);
    }

    let pre = match preprocess(query, &budget, cfg.preprocess_threads) {
        Ok(p) => p,
        Err(_) => return bail(&budget, 0, Vec::new(), start),
    };
    // Exact filtered cardinalities are now known — calibrate.
    for t in 0..m {
        est.calibrate_filtered(t, pre.tables[t].num_rows() as f64);
    }

    let mut executed: Vec<usize> = Vec::new();
    let mut prefix = TableSet::EMPTY;
    let mut current: Vec<TupleIxs> = Vec::new();
    let mut replans = 0u32;
    let mut planned_rest: Vec<usize> = Vec::new();
    let floors: Vec<RowId> = vec![0; m];

    if !query.always_false {
        while executed.len() < m {
            // Cooperative cancellation/deadline, once per join step.
            if ctx.interrupted() {
                return bail(&budget, replans, executed, start);
            }
            let (rest, _) = best_left_deep_from(&graph, prefix, |s| est.join_cardinality(s));
            if !planned_rest.is_empty() && rest != planned_rest[1..] {
                replans += 1;
            }
            let next = rest[0];
            planned_rest = rest;
            if executed.is_empty() {
                // Initial scan of the first table.
                let n = pre.tables[next].cardinality();
                if budget.charge(n as u64).is_err() {
                    return bail(&budget, replans, executed, start);
                }
                current = (0..n)
                    .map(|r| {
                        let mut t = vec![0 as RowId; m].into_boxed_slice();
                        t[next] = r;
                        t
                    })
                    .collect();
            } else {
                match join_step(
                    &pre.tables,
                    query,
                    &current,
                    prefix,
                    next,
                    &floors,
                    &cfg.profile,
                    &budget,
                ) {
                    Ok(v) => current = v,
                    Err(_) => return bail(&budget, replans, executed, start),
                }
            }
            executed.push(next);
            prefix.insert(next);
            // Feedback: the observed cardinality overrides the estimate for
            // this subset in all future planning.
            let observed = current.len() as f64;
            let estimated = est.join_cardinality(prefix).max(1.0);
            est.calibrate_set(prefix, observed);
            let deviation = (observed.max(1.0) / estimated).max(estimated / observed.max(1.0));
            let _ = deviation >= cfg.deviation_threshold; // re-planning is
                                                          // unconditional per
                                                          // step; the metric
                                                          // counts changes.
            if current.is_empty() {
                break; // empty intermediate: result is empty
            }
        }
    }

    let tuples = if executed.len() < m {
        Vec::new()
    } else {
        current
    };
    let result = match postprocess(&pre.tables, query, &tuples, &budget) {
        Ok(r) => r,
        Err(_) => return bail(&budget, replans, executed, start),
    };
    ctx.absorb_work(budget.used());
    ExecOutcome::completed(result, budget.used(), start.elapsed())
        .with_metrics(reopt_metrics(executed, replans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..50 {
            a.push_row(&[Value::Int(i), Value::Int(i % 5)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..80 {
            b.push_row(&[Value::Int(i % 50), Value::Int(i % 10)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..10 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn matches_reference() {
        let cat = setup();
        for sql in [
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 2",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
            "SELECT a.id FROM a WHERE a.g = 0",
        ] {
            let q = bind(sql, &cat);
            let out = run_reoptimizer(&q, &ExecContext::default(), &ReoptimizerConfig::default());
            assert!(!out.timed_out, "{sql}");
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn empty_intermediate_short_circuits() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 900",
            &cat,
        );
        let out = run_reoptimizer(&q, &ExecContext::default(), &ReoptimizerConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
    }

    #[test]
    fn executes_a_complete_order() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let out = run_reoptimizer(&q, &ExecContext::default(), &ReoptimizerConfig::default());
        assert_eq!(out.metrics.order.len(), 3);
        let mut sorted = out.metrics.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn work_limit_trips() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = ReoptimizerConfig {
            work_limit: 10,
            ..Default::default()
        };
        let out = run_reoptimizer(&q, &ExecContext::default(), &cfg);
        assert!(out.timed_out);
    }
}
