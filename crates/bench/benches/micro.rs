//! Criterion micro-benchmarks of SkinnerDB's performance-critical pieces:
//! the multi-way join inner loop, UCT selection overhead, join-order
//! switching (backup + restore), index jumps, and the pyramid scheme.
//!
//! These quantify the constants the paper's design minimizes — the cost of
//! switching join orders tens of thousands of times per second.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use skinnerdb::skinner_core::skinner_c::join::{continue_join, MultiwayCtx, OrderInfo};
use skinnerdb::skinner_core::skinner_c::result_set::ResultSet;
use skinnerdb::skinner_core::skinner_c::state::{JoinState, ProgressTracker};
use skinnerdb::skinner_core::{run_skinner_c, PyramidScheme, SkinnerCConfig};
use skinnerdb::skinner_exec::{ExecContext, WorkBudget};
use skinnerdb::skinner_query::{JoinGraph, TableSet};
use skinnerdb::skinner_storage::HashIndex;
use skinnerdb::skinner_uct::{UctConfig, UctTree};
use skinnerdb::{DataType, Database, Value};

fn bench_db(rows: i64) -> (Database, String) {
    let db = Database::new();
    db.create_table(
        "a",
        &[("id", DataType::Int), ("g", DataType::Int)],
        (0..rows)
            .map(|i| vec![Value::Int(i), Value::Int(i % 16)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "b",
        &[("aid", DataType::Int), ("w", DataType::Int)],
        (0..rows * 2)
            .map(|i| vec![Value::Int(i % rows), Value::Int(i % 64)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "c",
        &[("bw", DataType::Int)],
        (0..64).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    (
        db,
        "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw".to_string(),
    )
}

fn multiway_join_throughput(c: &mut Criterion) {
    let (db, sql) = bench_db(2_000);
    let q = db.bind(&sql).unwrap();
    let mut indexes = std::collections::HashMap::new();
    for (t, table) in q.tables.iter().enumerate() {
        for col in q.equi_join_columns(t) {
            indexes.insert((t, col), HashIndex::build(table.column(col)));
        }
    }
    let ctx = MultiwayCtx {
        tables: q.tables.clone(),
        indexes,
        interner: q.tables[0].interner().clone(),
    };
    let info = OrderInfo::build(&q, &ctx, &[0, 1, 2], true);
    c.bench_function("multiway_join_full_pass", |bench| {
        bench.iter_batched(
            || {
                (
                    JoinState::fresh(&[0, 0, 0]),
                    ResultSet::new(),
                    WorkBudget::unlimited(),
                )
            },
            |(mut state, mut results, budget)| {
                let offsets = [0, 0, 0];
                continue_join(
                    &ctx,
                    &info,
                    &mut state,
                    &offsets,
                    u64::MAX,
                    &budget,
                    &mut results,
                )
                .unwrap();
                results.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn uct_selection_overhead(c: &mut Criterion) {
    let graph = JoinGraph::new(10, (0..9).map(|i| TableSet::from_iter([i, i + 1])));
    c.bench_function("uct_choose_and_update", |bench| {
        let mut tree = UctTree::new(graph.clone(), UctConfig::default());
        bench.iter(|| {
            let order = tree.choose();
            tree.update(&order, 0.4);
            order.len()
        })
    });
}

fn join_order_switch_cost(c: &mut Criterion) {
    // Backup + restore of execution state — the operation Skinner-C performs
    // at every slice boundary (tens of thousands of times per second).
    let m = 10;
    let orders: Vec<Vec<usize>> = (0..m)
        .map(|rot| (0..m).map(|i| (i + rot) % m).collect())
        .collect();
    c.bench_function("progress_tracker_switch", |bench| {
        let mut tracker = ProgressTracker::new(m, true);
        let offsets = vec![0u32; m];
        let mut k = 0usize;
        bench.iter(|| {
            let order = &orders[k % orders.len()];
            k += 1;
            let mut state = tracker.restore(order, &offsets);
            state.s[order[0]] = (k as u32) % 1000;
            state.depth = k % m;
            tracker.backup(order, &state);
        })
    });
}

fn index_jump_vs_scan(c: &mut Criterion) {
    let column =
        skinnerdb::skinner_storage::Column::Int((0..100_000i64).map(|i| i % 1000).collect());
    let index = HashIndex::build(&column);
    c.bench_function("hash_index_next_match", |bench| {
        let mut from = 0u32;
        bench.iter(|| {
            let r = index.next_match(500, from % 99_000);
            from = from.wrapping_add(997);
            r
        })
    });
}

fn pyramid_scheme(c: &mut Criterion) {
    c.bench_function("pyramid_next_timeout", |bench| {
        let mut p = PyramidScheme::new();
        bench.iter(|| p.next_timeout())
    });
}

fn skinner_c_end_to_end(c: &mut Criterion) {
    let (db, sql) = bench_db(500);
    let q = db.bind(&sql).unwrap();
    c.bench_function("skinner_c_small_query", |bench| {
        let ctx = ExecContext::default();
        bench.iter(|| {
            run_skinner_c(&q, &ctx, &SkinnerCConfig::default())
                .metrics
                .result_tuples
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets =
        multiway_join_throughput,
        uct_selection_overhead,
        join_order_switch_cost,
        index_jump_vs_scan,
        pyramid_scheme,
        skinner_c_end_to_end,
}
criterion_main!(benches);
