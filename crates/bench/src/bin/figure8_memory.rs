fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!("{}", skinner_bench::experiments::figure8_memory::run(scale));
}
