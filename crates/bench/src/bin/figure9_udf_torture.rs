fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!(
        "{}",
        skinner_bench::experiments::figure9_udf_torture::run(scale)
    );
}
