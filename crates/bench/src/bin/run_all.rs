//! Regenerate every table and figure of the paper, writing one markdown
//! report per experiment into `bench_reports/`.
//!
//! ```sh
//! cargo run --release -p skinner_bench --bin run_all              # quick
//! BENCH_SCALE=paper cargo run --release -p skinner_bench --bin run_all
//! # Only a subset (the bench-smoke CI job does this):
//! BENCH_SCALE=smoke cargo run --release -p skinner_bench --bin run_all \
//!     -- thread_scaling repeat_workload disk_scan
//! ```

use std::fs;
use std::time::Instant;

use skinner_bench::experiments as ex;
use skinner_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::path::Path::new("bench_reports");
    fs::create_dir_all(dir).expect("create bench_reports/");

    type Job = (&'static str, Box<dyn Fn(Scale) -> String>);
    let jobs: Vec<Job> = vec![
        (
            "table1_job_single",
            Box::new(|s| ex::table1_job::run(s, false)),
        ),
        (
            "table2_job_multi",
            Box::new(|s| ex::table1_job::run(s, true)),
        ),
        (
            "table3_order_replay",
            Box::new(|s| ex::table3_replay::run(s, false)),
        ),
        (
            "table4_order_replay_multi",
            Box::new(|s| ex::table3_replay::run(s, true)),
        ),
        (
            "table5_learning_vs_random",
            Box::new(ex::table5_random::run),
        ),
        ("table6_features", Box::new(ex::table6_features::run)),
        (
            "figure6_speedup_sources",
            Box::new(ex::figure6_speedups::run),
        ),
        (
            "figure7_convergence",
            Box::new(ex::figure7_convergence::run),
        ),
        ("figure8_memory", Box::new(ex::figure8_memory::run)),
        (
            "figure9_udf_torture",
            Box::new(ex::figure9_udf_torture::run),
        ),
        (
            "figure10_correlation_torture",
            Box::new(ex::figure10_correlation::run),
        ),
        ("figure11_failures", Box::new(ex::figure11_failures::run)),
        ("figure12_trivial", Box::new(ex::figure12_trivial::run)),
        ("table7_tpch", Box::new(ex::table7_tpch::run)),
        ("ablation_design_choices", Box::new(ex::ablation::run)),
        ("optimizer_bakeoff", Box::new(ex::optimizer_bakeoff::run)),
        ("thread_scaling", Box::new(ex::thread_scaling::run)),
        ("disk_scan", Box::new(ex::disk_scan::run)),
        ("repeat_workload", Box::new(ex::repeat_workload::run)),
        ("server_throughput", Box::new(ex::server_throughput::run)),
        ("telemetry_overhead", Box::new(ex::telemetry_overhead::run)),
    ];

    if !filter.is_empty() {
        let known: Vec<&str> = jobs.iter().map(|(n, _)| *n).collect();
        for want in &filter {
            assert!(
                known.contains(&want.as_str()),
                "unknown experiment {want:?}; known: {known:?}"
            );
        }
    }
    for (name, f) in jobs {
        if !filter.is_empty() && !filter.iter().any(|w| w == name) {
            continue;
        }
        let started = Instant::now();
        eprint!("running {name} … ");
        let report = f(scale);
        let path = dir.join(format!("{name}.md"));
        fs::write(&path, &report).expect("write report");
        eprintln!(
            "done in {:.1}s → {}",
            started.elapsed().as_secs_f64(),
            path.display()
        );
        println!("{report}\n");
    }
}
