fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!(
        "{}",
        skinner_bench::experiments::table1_job::run(scale, true)
    );
}
