fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!(
        "{}",
        skinner_bench::experiments::table3_replay::run(scale, true)
    );
}
