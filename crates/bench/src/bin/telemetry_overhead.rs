fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!(
        "{}",
        skinner_bench::experiments::telemetry_overhead::run(scale)
    );
}
