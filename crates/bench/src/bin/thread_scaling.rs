fn main() {
    let scale = skinner_bench::Scale::from_env();
    println!("{}", skinner_bench::experiments::thread_scaling::run(scale));
}
