//! Ablation of Skinner-C's design choices (beyond the paper's Table 6):
//! the reward function variants and cross-order progress sharing that
//! Section 4.5 calls out as the engine's key mechanisms.

use crate::harness::{human, markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, RewardKind, SkinnerCConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    // The larger queries are where the mechanisms matter.
    let queries: Vec<_> = w.queries.iter().filter(|q| q.num_tables >= 5).collect();

    let variants: [(&str, SkinnerCConfig); 4] = [
        (
            "refined reward + sharing (default)",
            SkinnerCConfig {
                reward: RewardKind::FractionalProgress,
                share_progress: true,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "left-most-only reward",
            SkinnerCConfig {
                reward: RewardKind::LeftmostDelta,
                share_progress: true,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "no progress sharing",
            SkinnerCConfig {
                reward: RewardKind::FractionalProgress,
                share_progress: false,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "no index jumps",
            SkinnerCConfig {
                reward: RewardKind::FractionalProgress,
                share_progress: true,
                use_jump_indexes: false,
                work_limit: limit,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, cfg) in &variants {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut slices = 0u64;
        let mut timeouts = 0usize;
        for q in &queries {
            let query = db.bind(&q.script).unwrap();
            let o = run_skinner_c(&query, &db.exec_context(), cfg);
            total += o.work_units;
            max = max.max(o.work_units);
            slices += o.metrics.slices;
            if o.timed_out {
                timeouts += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            human(total),
            human(max),
            slices.to_string(),
            timeouts.to_string(),
        ]);
    }
    format!(
        "## Ablation — Skinner-C design choices ({} queries with ≥5 tables)\n\n{}",
        queries.len(),
        markdown_table(
            &["Variant", "Total Work", "Max Work", "Slices", "Timeouts"],
            &rows
        )
    )
}
