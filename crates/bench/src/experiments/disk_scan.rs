//! Zone-map scan pruning on disk-backed tables.
//!
//! Builds one wide fact table, persists it as a paged columnar segment
//! (per-page min/max zone maps) and runs a ladder of unary predicates of
//! decreasing selectivity against both the disk-backed table and a plain
//! in-memory copy. For each query the report shows:
//!
//! * `pages_read` / `pages_skipped` — how many zone-mapped pages had their
//!   rows evaluated versus how many the scan planner refuted outright from
//!   the page bounds;
//! * total work units on the zone-mapped table versus the flat in-memory
//!   scan — the deterministic cost currency the whole repository
//!   benchmarks in, so the saving is hardware-independent.
//!
//! The fact table is sorted by `id`, so range predicates on `id` (and on
//! the correlated `v` column) are the favourable clustered case; the
//! unclustered `tag` equality shows zone maps degrading gracefully to a
//! full read rather than helping. The raw numbers land in
//! `bench_reports/BENCH_disk_scan.json` with `pages_read` /
//! `pages_skipped` headline fields.

use skinnerdb::{DataType, Database, Value};

use crate::harness::{fmt_dur, human, markdown_table, Scale};

struct Case {
    name: &'static str,
    sql: String,
}

fn cases(rows: i64) -> Vec<Case> {
    vec![
        Case {
            name: "narrow range (~1%)",
            sql: format!("SELECT f.id FROM fact f WHERE f.id < {}", rows / 100),
        },
        Case {
            name: "band (~10%)",
            sql: format!(
                "SELECT f.id FROM fact f WHERE f.id BETWEEN {} AND {}",
                rows / 2,
                rows / 2 + rows / 10
            ),
        },
        Case {
            name: "correlated float (~25%)",
            sql: format!("SELECT f.id FROM fact f WHERE f.v < {}", rows / 4),
        },
        Case {
            name: "unclustered tag (no skip)",
            sql: "SELECT f.id FROM fact f WHERE f.tag = 'hot'".to_string(),
        },
    ]
}

fn fill(db: &Database, rows: i64) {
    db.create_table(
        "fact",
        &[
            ("id", DataType::Int),
            ("v", DataType::Float),
            ("tag", DataType::Str),
        ],
        (0..rows)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64),
                    // `hot` rows are scattered through every page, so tag
                    // zones cannot prune anything.
                    Value::from(if i % 97 == 0 { "hot" } else { "cold" }),
                ]
            })
            .collect(),
    )
    .unwrap();
}

struct Sample {
    wall: std::time::Duration,
    work: u64,
    rows: usize,
    pages_read: u64,
    pages_skipped: u64,
}

fn measure(db: &Database, sql: &str) -> Sample {
    let out = db
        .run_script(sql, &skinnerdb::Strategy::default())
        .expect("bench query must run");
    assert!(!out.timed_out, "disk_scan queries must not time out");
    Sample {
        wall: out.wall,
        work: out.work_units,
        rows: out.result.num_rows(),
        pages_read: out.metrics.pages_read,
        pages_skipped: out.metrics.pages_skipped,
    }
}

fn write_json(
    dir: &std::path::Path,
    rows: i64,
    runs: &[(String, Sample, Sample)],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_disk_scan.json");
    let pages_read: u64 = runs.iter().map(|(_, d, _)| d.pages_read).sum();
    let pages_skipped: u64 = runs.iter().map(|(_, d, _)| d.pages_skipped).sum();
    let total = (pages_read + pages_skipped).max(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str(&format!("  \"pages_read\": {pages_read},\n"));
    out.push_str(&format!("  \"pages_skipped\": {pages_skipped},\n"));
    out.push_str(&format!(
        "  \"skip_ratio\": {:.3},\n",
        pages_skipped as f64 / total as f64
    ));
    out.push_str("  \"runs\": [\n");
    for (i, (name, disk, mem)) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"pages_read\": {}, \"pages_skipped\": {}, \
             \"rows\": {}, \"disk_work_units\": {}, \"mem_work_units\": {}, \
             \"disk_wall_us\": {}, \"mem_wall_us\": {}}}{}\n",
            name,
            disk.pages_read,
            disk.pages_skipped,
            disk.rows,
            disk.work,
            mem.work,
            disk.wall.as_micros(),
            mem.wall.as_micros(),
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

pub fn run(scale: Scale) -> String {
    let rows: i64 = if scale.is_smoke() {
        40_000
    } else {
        scale.pick(100_000, 1_000_000)
    };

    let dir = std::env::temp_dir().join(format!("skinner_bench_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_db = Database::open(&dir).expect("open bench data dir");
    fill(&disk_db, rows);
    disk_db.persist_table("fact").expect("persist fact");
    let mem_db = Database::new();
    fill(&mem_db, rows);

    let mut out = format!(
        "## Disk scan — zone-map pruning on a {}−row persistent segment\n\n\
         Each query runs once on the disk-backed (zone-mapped) table and\n\
         once on a plain in-memory copy; rows are sorted by `id`, pages\n\
         hold 1024 rows. Work units are the repository's deterministic\n\
         cost currency, so `saving` is hardware-independent.\n\n",
        human(rows as u64)
    );

    let mut table = Vec::new();
    let mut runs = Vec::new();
    for case in cases(rows) {
        let disk = measure(&disk_db, &case.sql);
        let mem = measure(&mem_db, &case.sql);
        assert_eq!(disk.rows, mem.rows, "disk and memory must agree");
        let saving = 100.0 * (1.0 - disk.work as f64 / mem.work.max(1) as f64);
        table.push(vec![
            case.name.to_string(),
            format!("{}", disk.rows),
            format!("{}", disk.pages_read),
            format!("{}", disk.pages_skipped),
            format!("{}u", human(disk.work)),
            format!("{}u", human(mem.work)),
            format!("{saving:.1}%"),
            fmt_dur(disk.wall),
        ]);
        runs.push((case.name.to_string(), disk, mem));
    }
    out.push_str(&markdown_table(
        &[
            "query",
            "rows out",
            "pages read",
            "pages skipped",
            "disk work",
            "mem work",
            "saving",
            "disk wall",
        ],
        &table,
    ));
    out.push_str(
        "\nClustered predicates skip most pages (the saving column); the\n\
         unclustered tag equality reads every page and pays only the\n\
         per-page bound consults — zone maps degrade to a full scan, they\n\
         never lose rows.\n",
    );
    match write_json(std::path::Path::new("bench_reports"), rows, &runs) {
        Ok(path) => out.push_str(&format!(
            "\nRaw counters written to `{}`.\n",
            path.display()
        )),
        Err(e) => out.push_str(&format!("\n(could not write BENCH_disk_scan.json: {e})\n")),
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_scan_skips_pages_and_saves_work() {
        let dir = std::env::temp_dir().join(format!("skinner_bench_dtest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk_db = Database::open(&dir).unwrap();
        fill(&disk_db, 10_000);
        disk_db.persist_table("fact").unwrap();
        let mem_db = Database::new();
        fill(&mem_db, 10_000);

        let sql = &cases(10_000)[0].sql;
        let disk = measure(&disk_db, sql);
        let mem = measure(&mem_db, sql);
        assert_eq!(disk.rows, mem.rows);
        assert!(disk.pages_skipped > 0, "selective scan must skip pages");
        assert!(disk.work < mem.work, "zone maps must be a net work saving");
        assert_eq!((mem.pages_read, mem.pages_skipped), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_artifact_has_headline_fields() {
        let tmp = std::env::temp_dir().join(format!("skinner_bench_djson_{}", std::process::id()));
        let s = |pr, ps| Sample {
            wall: std::time::Duration::from_micros(10),
            work: 100,
            rows: 5,
            pages_read: pr,
            pages_skipped: ps,
        };
        let runs = vec![("q".to_string(), s(2, 8), s(0, 0))];
        let path = write_json(&tmp, 1000, &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"pages_read\": 2"));
        assert!(text.contains("\"pages_skipped\": 8"));
        assert!(text.contains("\"skip_ratio\": 0.800"));
    }
}
