//! Figure 10: the Correlation Torture benchmark.
//!
//! Chain equi-joins with statistics that cannot distinguish the edges; the
//! selective (empty) edge sits at position `m`. The paper varies `m` between
//! the beginning of the chain (m = 1) and the middle (m = #tables / 2).

use crate::harness::{human, markdown_table, run_single, Scale, System};
use skinnerdb::skinner_workloads::torture::correlation_torture;
use skinnerdb::Database;

const SYSTEMS: [System; 7] = [
    System::SkinnerC,
    System::Eddy,
    System::Reoptimizer,
    System::RowDB,
    System::SkinnerGRow,
    System::SkinnerHRow,
    System::ColDB,
];

pub fn run(scale: Scale) -> String {
    // The paper uses 1M tuples/table on a server; we scale down and note it.
    let rows_per_table = scale.pick(2_000, 50_000);
    let limit: u64 = scale.pick(20_000_000, 500_000_000);
    let sizes: Vec<usize> = scale.pick(vec![4, 6, 8], vec![4, 5, 6, 7, 8, 9, 10]);

    let mut out =
        format!("## Figure 10 — Correlation Torture benchmark ({rows_per_table} tuples/table)\n");
    for (label, mid) in [("m = 1 (first edge)", false), ("m = #tables/2", true)] {
        out += &format!(
            "\n### {label} (work units; '>' = timeout at {})\n\n",
            human(limit)
        );
        let mut table = Vec::new();
        for &k in &sizes {
            let m = if mid { (k - 1) / 2 } else { 0 };
            let w = correlation_torture(k, rows_per_table, m);
            let db = Database::from_parts(w.catalog.clone(), w.udfs);
            let mut row = vec![k.to_string()];
            for sys in SYSTEMS {
                let o = run_single(&db, &w.queries[0].script, sys, limit);
                row.push(if o.timed_out {
                    format!(">{}", human(o.work.min(limit)))
                } else {
                    human(o.work)
                });
            }
            table.push(row);
        }
        let mut headers = vec!["#tables"];
        headers.extend(SYSTEMS.iter().map(|s| s.name()));
        out += &markdown_table(&headers, &table);
    }
    out += "\nSame tendencies as UDF torture, with a slightly smaller gap —\n\
            plain correlated predicates mislead less than opaque UDFs\n\
            (matching the paper's comparison of Figures 9 and 10).\n";
    out
}
