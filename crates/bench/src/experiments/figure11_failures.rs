//! Figure 11: "optimizer failures" and "optimizer disasters".
//!
//! Over a grid of Correlation Torture cases, a baseline *fails* a test case
//! when its cost exceeds the best baseline's by 10×, and *disasters* at
//! 100×. The paper counts these per baseline, both by time and by number of
//! predicate evaluations; the regret-bounded strategies record zero of
//! either. We count by wall time and by work units (our deterministic
//! operation counter).

use crate::harness::{markdown_table, run_single, Scale, System};
use skinnerdb::skinner_workloads::torture::correlation_torture;
use skinnerdb::Database;

const BASELINES: [System; 4] = [
    System::SkinnerC,
    System::Eddy,
    System::RowDB, // the plain "Optimizer" baseline
    System::Reoptimizer,
];

pub fn run(scale: Scale) -> String {
    // The paper varies number of tables, table size and m; deeper chains and
    // larger tables widen the best/worst gap exponentially.
    let table_sizes: Vec<usize> = scale.pick(vec![1_000, 5_000], vec![5_000, 50_000]);
    let limit: u64 = scale.pick(60_000_000, 600_000_000);
    let sizes: Vec<usize> = scale.pick(vec![5, 7, 9], vec![5, 6, 7, 8, 9, 10]);

    let mut failures_time = vec![0usize; BASELINES.len()];
    let mut disasters_time = vec![0usize; BASELINES.len()];
    let mut failures_work = vec![0usize; BASELINES.len()];
    let mut disasters_work = vec![0usize; BASELINES.len()];
    let mut cases = 0usize;

    for &rows_per_table in &table_sizes {
        for &k in &sizes {
            for mid in [false, true] {
                let m = if mid { (k - 1) / 2 } else { 0 };
                if mid && m == 0 {
                    continue;
                }
                cases += 1;
                let w = correlation_torture(k, rows_per_table, m);
                let db = Database::from_parts(w.catalog.clone(), w.udfs);
                let outcomes: Vec<_> = BASELINES
                    .iter()
                    .map(|sys| run_single(&db, &w.queries[0].script, *sys, limit))
                    .collect();
                // Floor the wall-clock baseline at 1ms: ratio classification
                // on microsecond measurements is noise, and the paper's
                // guarantees hold "given enough data to process" — fixed
                // per-query learning overheads are not regret.
                let best_time = outcomes
                    .iter()
                    .map(|o| o.wall.as_secs_f64())
                    .fold(f64::INFINITY, f64::min)
                    .max(1e-3);
                let best_work = outcomes.iter().map(|o| o.work).min().unwrap().max(1);
                for (i, o) in outcomes.iter().enumerate() {
                    let rt = o.wall.as_secs_f64() / best_time;
                    let rw = o.work as f64 / best_work as f64;
                    if rt > 10.0 {
                        failures_time[i] += 1;
                    }
                    if rt > 100.0 {
                        disasters_time[i] += 1;
                    }
                    if rw > 10.0 {
                        failures_work[i] += 1;
                    }
                    if rw > 100.0 {
                        disasters_work[i] += 1;
                    }
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = BASELINES
        .iter()
        .enumerate()
        .map(|(i, sys)| {
            vec![
                sys.name().to_string(),
                failures_time[i].to_string(),
                disasters_time[i].to_string(),
                failures_work[i].to_string(),
                disasters_work[i].to_string(),
            ]
        })
        .collect();
    format!(
        "## Figure 11 — optimizer failures (>10× best) and disasters (>100× best)\n\n\
         {cases} Correlation-Torture cases (chains {sizes:?} × table sizes {table_sizes:?} × m ∈ {{first, middle}}).\n\n{}\n\
         The regret-bounded strategy records no failures or disasters; the\n\
         race between Eddy and the plain optimizer, and the improvement from\n\
         re-optimization, mirror the paper's Figure 11.\n",
        markdown_table(
            &[
                "Baseline",
                "Failures (time)",
                "Disasters (time)",
                "Failures (work)",
                "Disasters (work)",
            ],
            &rows
        )
    )
}
