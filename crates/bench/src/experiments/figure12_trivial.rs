//! Figure 12: the Trivial Optimization benchmark.
//!
//! All non-Cartesian plans are equivalent (fanout-1 chain via opaque UDF
//! equality, 250 tuples/table), so join-order exploration is pure overhead.
//! Robustness costs bounded peak performance here — the price the paper
//! quantifies.

use crate::harness::{human, markdown_table, run_single, Scale, System};
use skinnerdb::skinner_workloads::torture::trivial;
use skinnerdb::Database;

const SYSTEMS: [System; 7] = [
    System::SkinnerC,
    System::Eddy,
    System::Reoptimizer,
    System::RowDB,
    System::SkinnerGRow,
    System::SkinnerHRow,
    System::ColDB,
];

pub fn run(scale: Scale) -> String {
    let rows_per_table = 250; // the paper's setting
    let limit: u64 = scale.pick(50_000_000, 500_000_000);
    let sizes: Vec<usize> = scale.pick(vec![4, 6, 8], vec![4, 5, 6, 7, 8, 9, 10]);

    let mut table = Vec::new();
    for &k in &sizes {
        let w = trivial(k, rows_per_table);
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let mut row = vec![k.to_string()];
        for sys in SYSTEMS {
            let o = run_single(&db, &w.queries[0].script, sys, limit);
            row.push(if o.timed_out {
                format!(">{}", human(o.work.min(limit)))
            } else {
                human(o.work)
            });
        }
        table.push(row);
    }
    let mut headers = vec!["#tables"];
    headers.extend(SYSTEMS.iter().map(|s| s.name()));
    format!(
        "## Figure 12 — Trivial Optimization benchmark \
         (UDF equality predicates, {rows_per_table} tuples/table; work units)\n\n{}\n\
         Exploration-free optimizers win when all plans are equal; the\n\
         adaptive strategies pay a bounded overhead — robustness in corner\n\
         cases costs peak performance in trivial ones (paper, Figure 12).\n",
        markdown_table(&headers, &table)
    )
}
