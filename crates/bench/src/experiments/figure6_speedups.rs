//! Figure 6: where do the speedups versus MonetDB come from?
//!
//! (a) The column engine spends most of its total runtime on a handful of
//! queries with catastrophic plans; (b) SkinnerDB's per-query speedups are
//! concentrated exactly on those most expensive queries.

use crate::harness::{human, markdown_table, run_bound, Scale, System};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);

    // Per-query work for both systems.
    let mut per_query: Vec<(String, u64, u64)> = Vec::new();
    for q in &w.queries {
        let query = db.bind(&q.script).unwrap();
        let sk = run_bound(&db, &query, System::SkinnerC, limit);
        let mdb = run_bound(&db, &query, System::ColDB, limit);
        per_query.push((q.name.clone(), sk.work, mdb.work));
    }

    // (a) Cumulative share of total ColDB work by its top-k queries.
    let mut by_mdb: Vec<u64> = per_query.iter().map(|(_, _, m)| *m).collect();
    by_mdb.sort_unstable_by(|a, b| b.cmp(a));
    let total_mdb: u64 = by_mdb.iter().sum();
    let mut cum = 0u64;
    let mut cum_rows = Vec::new();
    for (k, work) in by_mdb.iter().enumerate() {
        cum += work;
        if k < 5 || (k + 1) % 5 == 0 || k + 1 == by_mdb.len() {
            cum_rows.push(vec![
                format!("{}", k + 1),
                format!("{:.1}%", 100.0 * cum as f64 / total_mdb.max(1) as f64),
            ]);
        }
    }

    // (b) Speedup vs ColDB work per query, sorted by ColDB work.
    let mut sorted = per_query.clone();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.2));
    let speedup_rows: Vec<Vec<String>> = sorted
        .iter()
        .take(12)
        .map(|(name, sk, mdb)| {
            vec![
                name.clone(),
                human(*mdb),
                human(*sk),
                format!("{:.2}x", *mdb as f64 / (*sk).max(1) as f64),
            ]
        })
        .collect();

    let total_sk: u64 = per_query.iter().map(|(_, s, _)| s).sum();
    format!(
        "## Figure 6 — sources of SkinnerDB's speedups vs the column engine\n\n\
         ### (a) Cumulative share of ColDB's total work in its top-k queries\n\n{}\n\
         ### (b) Speedup vs ColDB work, most expensive ColDB queries first\n\n{}\n\
         Totals: Skinner-C {} vs ColDB {} work units.\n",
        markdown_table(&["Top-k queries", "% of ColDB total work"], &cum_rows),
        markdown_table(
            &["Query", "ColDB work", "Skinner work", "Speedup"],
            &speedup_rows
        ),
        human(total_sk),
        human(total_mdb),
    )
}
