//! Figure 7: convergence of Skinner-C to optimal join orders.
//!
//! (a) UCT search-tree growth slows down over time; (b) most time slices go
//! to one or two join orders — with a larger slice budget `b = 500` fewer
//! slices are available, so concentration is slightly lower than `b = 10`.

use crate::harness::{markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    // The largest query in the workload.
    let q = w
        .queries
        .iter()
        .max_by_key(|q| q.num_tables)
        .expect("non-empty workload");
    let query = db.bind(&q.script).unwrap();

    let mut out = format!(
        "## Figure 7 — convergence of Skinner-C (query {}, {} tables)\n\n",
        q.name, q.num_tables
    );

    for b in [10u64, 500] {
        let o = run_skinner_c(
            &query,
            &db.exec_context(),
            &SkinnerCConfig {
                slice_steps: b,
                work_limit: limit,
                ..Default::default()
            },
        );
        // (a) tree growth, normalized.
        let growth_rows: Vec<Vec<String>> = o
            .metrics
            .tree_growth
            .iter()
            .step_by((o.metrics.tree_growth.len() / 10).max(1))
            .map(|(slice, nodes)| {
                vec![
                    format!("{:.2}", *slice as f64 / o.metrics.slices.max(1) as f64),
                    format!("{:.2}", *nodes as f64 / o.metrics.uct_nodes.max(1) as f64),
                ]
            })
            .collect();
        // (b) share of slices per top-k orders.
        let total: u64 = o.metrics.order_slice_counts.iter().map(|(_, c)| c).sum();
        let mut cum = 0u64;
        let topk_rows: Vec<Vec<String>> = o
            .metrics
            .order_slice_counts
            .iter()
            .take(5)
            .enumerate()
            .map(|(k, (_, c))| {
                cum += c;
                vec![
                    format!("{}", k + 1),
                    format!("{:.1}%", 100.0 * cum as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        out += &format!(
            "### Slice budget b = {b}: {} slices, {} tree nodes\n\n\
             (a) tree growth (fractions)\n\n{}\n(b) cumulative slice share of top-k orders\n\n{}\n",
            o.metrics.slices,
            o.metrics.uct_nodes,
            markdown_table(&["time (scaled)", "#nodes (scaled)"], &growth_rows),
            markdown_table(&["top-k orders", "% of selections"], &topk_rows),
        );
    }
    out
}
