//! Figure 8: memory consumption of Skinner-C's auxiliary data structures,
//! as a function of query size — UCT tree nodes, progress-tracker nodes,
//! result-tuple index vectors, and their combined byte footprint.

use std::collections::BTreeMap;

use crate::harness::{human, markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);

    // Max per #joined-tables, as in the paper's scatter plots.
    #[derive(Default)]
    struct Agg {
        uct: usize,
        tracker: usize,
        results: usize,
        bytes: usize,
    }
    let mut by_size: BTreeMap<usize, Agg> = BTreeMap::new();
    for q in &w.queries {
        let query = db.bind(&q.script).unwrap();
        let o = run_skinner_c(
            &query,
            &db.exec_context(),
            &SkinnerCConfig {
                work_limit: limit,
                ..Default::default()
            },
        );
        let e = by_size.entry(q.num_tables).or_default();
        e.uct = e.uct.max(o.metrics.uct_nodes);
        e.tracker = e.tracker.max(o.metrics.tracker_nodes);
        e.results = e.results.max(o.metrics.result_tuples as usize);
        e.bytes = e.bytes.max(o.metrics.total_aux_bytes);
    }

    let rows: Vec<Vec<String>> = by_size
        .iter()
        .map(|(tables, a)| {
            vec![
                tables.to_string(),
                a.uct.to_string(),
                a.tracker.to_string(),
                human(a.results as u64),
                format!("{:.3} MB", a.bytes as f64 / 1e6),
            ]
        })
        .collect();
    format!(
        "## Figure 8 — memory consumption of Skinner-C (max per query size)\n\n{}\n\
         Result-tuple index vectors dominate, followed by the progress\n\
         tracker and the UCT tree — the paper's ordering (Figure 8a–d).\n",
        markdown_table(
            &[
                "# joined tables",
                "(a) UCT nodes",
                "(b) tracker nodes",
                "(c) result tuples",
                "(d) aux bytes",
            ],
            &rows
        )
    )
}
