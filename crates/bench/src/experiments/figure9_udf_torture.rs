//! Figure 9: the UDF Torture benchmark.
//!
//! Chain and star queries whose join predicates are all UDFs; one hidden
//! predicate empties the result. Averages over several good-predicate
//! positions per query size, like the paper's ten test cases per point.

use crate::harness::{human, markdown_table, run_single, Scale, System};
use skinnerdb::skinner_workloads::torture::{udf_torture, Shape};
use skinnerdb::Database;

const SYSTEMS: [System; 7] = [
    System::SkinnerC,
    System::Eddy,
    System::Reoptimizer,
    System::RowDB,
    System::SkinnerGRow,
    System::SkinnerHRow,
    System::ColDB,
];

pub fn run(scale: Scale) -> String {
    let rows_per_table = 100;
    let limit: u64 = scale.pick(10_000_000, 200_000_000);
    let sizes: Vec<usize> = scale.pick(vec![4, 6, 8], vec![4, 5, 6, 7, 8, 9, 10]);

    let mut out = String::from("## Figure 9 — UDF Torture benchmark\n");
    for shape in [Shape::Chain, Shape::Star] {
        out += &format!(
            "\n### {shape:?} queries, {rows_per_table} tuples/table (avg work units; \
             '>' = timeout at {})\n\n",
            human(limit)
        );
        let mut table = Vec::new();
        for &k in &sizes {
            let mut row = vec![k.to_string()];
            // Average over several positions of the good predicate.
            let positions: Vec<usize> = vec![0, (k - 1) / 2, k - 2]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            for sys in SYSTEMS {
                let mut total = 0u64;
                let mut timeouts = 0usize;
                for &good in &positions {
                    let w = udf_torture(shape, k, rows_per_table, good);
                    let db = Database::from_parts(w.catalog.clone(), w.udfs);
                    let o = run_single(&db, &w.queries[0].script, sys, limit);
                    total += o.work.min(limit);
                    if o.timed_out {
                        timeouts += 1;
                    }
                }
                let avg = total / positions.len() as u64;
                row.push(if timeouts == positions.len() {
                    format!(">{}", human(avg))
                } else if timeouts > 0 {
                    format!("~{}", human(avg))
                } else {
                    human(avg)
                });
            }
            table.push(row);
        }
        let mut headers = vec!["#tables"];
        headers.extend(SYSTEMS.iter().map(|s| s.name()));
        out += &markdown_table(&headers, &table);
    }
    out += "\nSkinner-C stays near-optimal regardless of where the selective\n\
            predicate hides; statistics-guided baselines explode by orders of\n\
            magnitude (the paper's Figure 9 shape).\n";
    out
}
