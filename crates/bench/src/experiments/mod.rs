//! One module per paper table/figure (see DESIGN.md §4 for the index).

pub mod ablation;
pub mod disk_scan;
pub mod figure10_correlation;
pub mod figure11_failures;
pub mod figure12_trivial;
pub mod figure6_speedups;
pub mod figure7_convergence;
pub mod figure8_memory;
pub mod figure9_udf_torture;
pub mod optimizer_bakeoff;
pub mod repeat_workload;
pub mod server_throughput;
pub mod table1_job;
pub mod table3_replay;
pub mod table5_random;
pub mod table6_features;
pub mod table7_tpch;
pub mod telemetry_overhead;
pub mod thread_scaling;

use skinnerdb::skinner_workloads::job_like::{generate, JobConfig};
use skinnerdb::skinner_workloads::Workload;
use skinnerdb::Database;

use crate::harness::Scale;

/// The JOB-like workload at benchmark scale, plus a database over it.
pub fn job_workload(scale: Scale) -> (Workload, Database) {
    let cfg = JobConfig {
        scale: scale.pick(0.12, 1.0),
        seed: 0x10B,
    };
    let w = generate(&cfg);
    let db = Database::from_parts(
        w.catalog.clone(),
        skinnerdb::skinner_query::UdfRegistry::new(),
    );
    (w, db)
}

/// Per-query work-unit limit for JOB experiments.
pub fn job_limit(scale: Scale) -> u64 {
    scale.pick(30_000_000, 2_000_000_000)
}
