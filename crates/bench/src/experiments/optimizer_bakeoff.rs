//! Optimizer-vs-RL bakeoff on a misestimation-adversarial workload.
//!
//! Three contenders — the traditional optimizer path (`Traditional`), pure
//! learned execution (`skinner_g`, whole orders as UCT arms) and the sliced
//! hybrid (`skinner_h`) — plus Skinner-C as the customized-engine reference
//! point, all run over workloads chosen to punish cardinality estimation:
//!
//! * `udf_torture` — selective UDFs the estimator is blind to, so the DP
//!   plan is catastrophically wrong (the hybrid's switchover case);
//! * `correlation_torture` — correlated predicates violating the
//!   independence assumption;
//! * `trivial` — a well-estimated control where the optimizer's plan is
//!   good and learning is pure overhead.
//!
//! The headline number is `h_vs_best_ratio`: the hybrid's total work
//! divided by the sum of per-query `min(Traditional, skinner_g)` work —
//! the measured constant of the regret bound `tests/bakeoff.rs` asserts.
//! Raw numbers land in `bench_reports/BENCH_optimizer_bakeoff.json`.

use skinnerdb::skinner_workloads::torture::{correlation_torture, trivial, udf_torture, Shape};
use skinnerdb::skinner_workloads::Workload;
use skinnerdb::{Database, ExecOutcome, Strategy};

use crate::harness::{fmt_dur, human, markdown_table, Scale};

fn contenders() -> Vec<Strategy> {
    vec![
        Strategy::Traditional(Default::default()),
        Strategy::SkinnerGArms(Default::default()),
        Strategy::SkinnerHSliced(Default::default()),
        Strategy::SkinnerC(Default::default()),
    ]
}

fn workloads(scale: Scale) -> Vec<(&'static str, Workload)> {
    let (udf_tables, udf_rows) = scale.pick((5, 40), (6, 60));
    let (corr_rows, triv_rows) = scale.pick((60, 40), (200, 120));
    vec![
        (
            "udf_torture",
            udf_torture(Shape::Chain, udf_tables, udf_rows, 2),
        ),
        ("correlation_torture", correlation_torture(4, corr_rows, 2)),
        ("trivial_control", trivial(4, triv_rows)),
    ]
}

struct Run {
    workload: &'static str,
    query: String,
    strategy: String,
    work: u64,
    wall_us: u128,
    switched_at: u64,
}

fn measure(db: &Database, script: &str, strategy: &Strategy) -> ExecOutcome {
    let out = db
        .run_script(script, strategy)
        .expect("bakeoff query must run");
    assert!(!out.timed_out, "{} timed out", strategy.name());
    out
}

fn write_json(
    dir: &std::path::Path,
    runs: &[Run],
    per_strategy: &[(String, u64, f64)],
    h_vs_best_ratio: f64,
    switchovers: u64,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_optimizer_bakeoff.json");
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"h_vs_best_ratio\": {h_vs_best_ratio:.3},\n"));
    out.push_str(&format!("  \"hybrid_switchovers\": {switchovers},\n"));
    out.push_str("  \"strategies\": [\n");
    for (i, (name, work, qps)) in per_strategy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{name}\", \"total_work_units\": {work}, \"qps\": {qps:.1}}}{}\n",
            if i + 1 < per_strategy.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"query\": \"{}\", \"strategy\": \"{}\", \
             \"work_units\": {}, \"wall_us\": {}, \"switched_at_episode\": {}}}{}\n",
            r.workload,
            r.query,
            r.strategy,
            r.work,
            r.wall_us,
            r.switched_at,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

pub fn run(scale: Scale) -> String {
    let strategies = contenders();
    let mut runs: Vec<Run> = Vec::new();
    let mut rows = Vec::new();
    // Per-query minimum of the two pure contenders, and the hybrid's work.
    let mut best_total = 0u64;
    let mut hybrid_total = 0u64;
    let mut switchovers = 0u64;

    for (wname, w) in workloads(scale) {
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        for q in &w.queries {
            let mut per_query = Vec::new();
            for s in &strategies {
                let out = measure(&db, &q.script, s);
                let switched = out.metrics.counter("switched_at_episode").unwrap_or(0);
                rows.push(vec![
                    wname.to_string(),
                    q.name.clone(),
                    s.name().to_string(),
                    format!("{}u", human(out.work_units)),
                    fmt_dur(out.wall),
                    if s.name() == "skinner_h" && switched > 0 {
                        format!("ep {switched}")
                    } else {
                        String::new()
                    },
                ]);
                per_query.push((s.name().to_string(), out.work_units));
                runs.push(Run {
                    workload: wname,
                    query: q.name.clone(),
                    strategy: s.name().to_string(),
                    work: out.work_units,
                    wall_us: out.wall.as_micros(),
                    switched_at: switched,
                });
                if s.name() == "skinner_h" {
                    hybrid_total += out.work_units;
                    switchovers += u64::from(switched > 0);
                }
            }
            let find = |n: &str| per_query.iter().find(|(s, _)| s == n).unwrap().1;
            best_total += find("Traditional").min(find("skinner_g"));
        }
    }

    let h_vs_best_ratio = hybrid_total as f64 / best_total.max(1) as f64;
    let per_strategy: Vec<(String, u64, f64)> = strategies
        .iter()
        .map(|s| {
            let mine: Vec<&Run> = runs.iter().filter(|r| r.strategy == s.name()).collect();
            let work: u64 = mine.iter().map(|r| r.work).sum();
            let wall_s: f64 = mine.iter().map(|r| r.wall_us as f64 / 1e6).sum();
            (
                s.name().to_string(),
                work,
                mine.len() as f64 / wall_s.max(1e-9),
            )
        })
        .collect();

    let mut out = String::from(
        "## Optimizer bakeoff — traditional plan vs learned vs sliced hybrid\n\n\
         Workloads are misestimation-adversarial (optimizer-opaque UDFs,\n\
         correlated predicates) plus a well-estimated control. The hybrid's\n\
         claim: on every query it stays within a constant of the better\n\
         pure contender, and on misestimated plans its one-way switchover\n\
         abandons the optimizer mid-race.\n\n",
    );
    out.push_str(&markdown_table(
        &[
            "workload",
            "query",
            "strategy",
            "work",
            "wall",
            "switchover",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nPer-strategy totals: {}.\n",
        per_strategy
            .iter()
            .map(|(n, w, qps)| format!("{n} {}u ({qps:.1} q/s)", human(*w)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "\n**Headline:** `h_vs_best_ratio` = {h_vs_best_ratio:.2} \
         (hybrid {}u vs per-query best {}u), {switchovers} switchover(s).\n",
        human(hybrid_total),
        human(best_total),
    ));
    match write_json(
        std::path::Path::new("bench_reports"),
        &runs,
        &per_strategy,
        h_vs_best_ratio,
        switchovers,
    ) {
        Ok(path) => out.push_str(&format!("\nRaw numbers written to `{}`.\n", path.display())),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_optimizer_bakeoff.json: {e})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_artifact_has_headline_fields() {
        let tmp = std::env::temp_dir().join(format!("skinner_bench_obk_{}", std::process::id()));
        let runs = vec![Run {
            workload: "w",
            query: "q".to_string(),
            strategy: "skinner_h".to_string(),
            work: 10,
            wall_us: 5,
            switched_at: 3,
        }];
        let per = vec![("skinner_h".to_string(), 10u64, 2.0f64)];
        let path = write_json(&tmp, &runs, &per, 1.25, 1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"h_vs_best_ratio\": 1.250"));
        assert!(text.contains("\"hybrid_switchovers\": 1"));
        assert!(text.contains("\"switched_at_episode\": 3"));
    }

    #[test]
    fn contenders_agree_and_ratio_is_bounded() {
        let w = trivial(3, 25);
        let db = Database::from_parts(w.catalog.clone(), w.udfs);
        let script = &w.queries[0].script;
        let outs: Vec<ExecOutcome> = contenders()
            .iter()
            .map(|s| measure(&db, script, s))
            .collect();
        for o in &outs[1..] {
            assert_eq!(o.result.canonical_rows(), outs[0].result.canonical_rows());
        }
        let best = outs[0].work_units.min(outs[1].work_units).max(1);
        let ratio = outs[2].work_units as f64 / best as f64;
        assert!(ratio < 8.0 + 20_000.0 / best as f64, "ratio {ratio}");
    }
}
