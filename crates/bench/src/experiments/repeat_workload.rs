//! Cross-query learning on a repeated-template workload.
//!
//! The serving scenario the `learning_cache` knob exists for: the same
//! query *template* arrives over and over with different literals. With
//! the cache off, every execution learns its join order from scratch; with
//! it on, the second-and-later executions warm-start their UCT tree from
//! the previous run's decayed statistics and should lock onto the best
//! join order in measurably fewer episodes.
//!
//! Convergence measure: `last_order_switch` — the episode index after
//! which the engine executed one join order exclusively (reported by both
//! Skinner-C and `parallel_skinner`). Lower = faster lock-in. The report
//! compares it (plus work units and wall time) per repetition, cache on vs
//! off, for the sequential and the 4-thread parallel engine.
//!
//! Correctness is asserted, not assumed: for one representative literal
//! the experiment executes the template cache-on and cache-off at 1, 2, 4
//! and 8 worker threads and panics unless the result rows are bit-for-bit
//! identical — a panic fails the `bench-smoke` CI job.
//!
//! Raw numbers land in `bench_reports/BENCH_repeat_workload.json`.

use skinnerdb::skinner_core::{ParallelSkinnerConfig, SkinnerCConfig};
use skinnerdb::{DataType, Database, Strategy, TreeCacheConfig, Value};

use crate::harness::{human, markdown_table, Scale};

/// Star schema whose best join order is clearly "filtered small dimension
/// first": a selective unary predicate on `d1` makes starting anywhere
/// else pay a large intermediate result.
fn build_db(scale: Scale) -> Database {
    let fact_rows = if scale.is_smoke() {
        1500
    } else {
        scale.pick(4000, 40_000)
    };
    let db = Database::new();
    db.create_table(
        "d1",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..24)
            .map(|i| vec![Value::Int(i), Value::Int(i % 12)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "d2",
        &[("id", DataType::Int)],
        (0..240).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "d3",
        &[("id", DataType::Int)],
        (0..600).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "fact",
        &[
            ("k1", DataType::Int),
            ("k2", DataType::Int),
            ("k3", DataType::Int),
        ],
        (0..fact_rows)
            .map(|i| {
                vec![
                    Value::Int(i % 24),
                    Value::Int((i * 7) % 240),
                    Value::Int((i * 13) % 600),
                ]
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The repeated template; `lit` is the varying literal.
fn sql(lit: i64) -> String {
    format!(
        "SELECT d1.a, COUNT(*) c FROM fact f, d1, d2, d3 \
         WHERE f.k1 = d1.id AND f.k2 = d2.id AND f.k3 = d3.id AND d1.a < {lit} \
         GROUP BY d1.a ORDER BY d1.a"
    )
}

struct Rep {
    lit: i64,
    cache_hit: bool,
    warm_start_visits: u64,
    episodes: u64,
    last_order_switch: u64,
    /// Episodes spent executing something other than the run's final
    /// (most-visited) order — the exploration cost warm starts amortize.
    off_order: u64,
    work: u64,
    wall_us: u64,
}

fn run_reps(db: &Database, strategy: &Strategy, reps: usize) -> Vec<Rep> {
    (0..reps)
        .map(|r| {
            let lit = 3 + (r as i64 % 5);
            let o = db
                .run_script(&sql(lit), strategy)
                .expect("bench query must run");
            assert!(!o.timed_out, "repeat_workload query timed out");
            let counter = |name| o.metrics.counter(name).unwrap_or(0);
            let best_count = o
                .metrics
                .order_slice_counts
                .first()
                .map(|(_, c)| *c)
                .unwrap_or(0);
            Rep {
                lit,
                cache_hit: counter("cache_hit") == 1,
                warm_start_visits: counter("warm_start_visits"),
                episodes: o.metrics.slices,
                last_order_switch: counter("last_order_switch"),
                off_order: o.metrics.slices.saturating_sub(best_count),
                work: o.work_units,
                wall_us: o.wall.as_micros() as u64,
            }
        })
        .collect()
}

/// Mean of `f` over the warm repetitions (2nd and later).
fn warm_mean(reps: &[Rep], f: impl Fn(&Rep) -> u64) -> f64 {
    if reps.len() < 2 {
        return 0.0;
    }
    let tail = &reps[1..];
    tail.iter().map(|r| f(r) as f64).sum::<f64>() / tail.len() as f64
}

/// Mean `last_order_switch` of the warm repetitions.
fn mean_lock_in(reps: &[Rep]) -> f64 {
    warm_mean(reps, |r| r.last_order_switch)
}

/// Mean off-final-order episodes of the warm repetitions.
fn mean_off_order(reps: &[Rep]) -> f64 {
    warm_mean(reps, |r| r.off_order)
}

fn render_section(name: &str, off: &[Rep], on: &[Rep], out: &mut String) {
    out.push_str(&format!("### {name}\n\n"));
    let mut rows = Vec::new();
    for (i, (a, b)) in off.iter().zip(on).enumerate() {
        rows.push(vec![
            format!("{} (a<{})", i + 1, a.lit),
            format!(
                "{} ep, lock {}, {} expl",
                a.episodes, a.last_order_switch, a.off_order
            ),
            human(a.work),
            format!(
                "{} ep, lock {}, {} expl{}",
                b.episodes,
                b.last_order_switch,
                b.off_order,
                if b.cache_hit { " (warm)" } else { "" }
            ),
            human(b.work),
            format!("{}", b.warm_start_visits),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "rep",
            "cache off",
            "work (off)",
            "cache on",
            "work (on)",
            "warm visits",
        ],
        &rows,
    ));
    let off_lock = mean_lock_in(off);
    let on_lock = mean_lock_in(on);
    let off_expl = mean_off_order(off);
    let on_expl = mean_off_order(on);
    out.push_str(&format!(
        "\nWarm repetitions (2nd+), cache off vs on: mean lock-in episode \
         {off_lock:.1} vs {on_lock:.1}; mean exploration episodes (off the \
         final order) {off_expl:.1} vs {on_expl:.1}{}.\n\n",
        if on_expl < off_expl {
            format!(
                " — **{:.1}x less exploration**",
                off_expl / on_expl.max(0.5)
            )
        } else {
            String::new()
        }
    ));
}

fn json_reps(reps: &[Rep]) -> String {
    let cells: Vec<String> = reps
        .iter()
        .map(|r| {
            format!(
                "{{\"lit\": {}, \"cache_hit\": {}, \"warm_start_visits\": {}, \
                 \"episodes\": {}, \"last_order_switch\": {}, \"work_units\": {}, \
                 \"wall_us\": {}}}",
                r.lit,
                r.cache_hit,
                r.warm_start_visits,
                r.episodes,
                r.last_order_switch,
                r.work,
                r.wall_us
            )
        })
        .collect();
    format!("[{}]", cells.join(", "))
}

fn write_json(
    dir: &std::path::Path,
    sections: &[(&str, &[Rep], &[Rep])],
    drift: Option<&DriftOutcome>,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_repeat_workload.json");
    let mut out = String::from("{\n  \"engines\": [\n");
    for (i, (name, off, on)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{name}\", \"cache_off\": {}, \"cache_on\": {}, \
             \"mean_lock_in_off\": {:.2}, \"mean_lock_in_on\": {:.2}}}{}\n",
            json_reps(off),
            json_reps(on),
            mean_lock_in(off),
            mean_lock_in(on),
            if i + 1 < sections.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some(d) = drift {
        out.push_str(&format!(",\n  \"drift\": {}", json_drift(d)));
    }
    out.push_str("\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

// ---------------------------------------------------------------------
// Drift variant: a workload whose warm starts MISLEAD.
// ---------------------------------------------------------------------

/// Schema for the drift workload: a fact joining two same-sized dimensions
/// with a filterable column each. The template `b1.a < l1 AND b2.a < l2`
/// alternates which dimension is selective, so the join order learned in
/// one phase is exactly wrong for the next — the adversarial case drift
/// detection exists for.
fn build_drift_db(scale: Scale) -> Database {
    let fact_rows = if scale.is_smoke() {
        1500
    } else {
        scale.pick(4000, 40_000)
    };
    let db = Database::new();
    // Same shape as `build_db`, but BOTH the small and the large dimension
    // carry a filterable column, so the selective side can flip.
    db.create_table(
        "b1",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..24)
            .map(|i| vec![Value::Int(i), Value::Int(i % 12)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "d2",
        &[("id", DataType::Int)],
        (0..240).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "b3",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..600)
            .map(|i| vec![Value::Int(i), Value::Int(i % 300)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "fact",
        &[
            ("k1", DataType::Int),
            ("k2", DataType::Int),
            ("k3", DataType::Int),
        ],
        (0..fact_rows)
            .map(|i| {
                vec![
                    Value::Int(i % 24),
                    Value::Int((i * 7) % 240),
                    Value::Int((i * 13) % 600),
                ]
            })
            .collect(),
    )
    .unwrap();
    db
}

/// One template, two literals: `(2, 300)` makes `b1` the selective side
/// (`b3.a < 300` passes everything), `(12, 2)` flips it to `b3`. The
/// template key normalizes literals, so both phases share one cache entry
/// — and warm-start each other, wrongly.
fn drift_sql(l1: i64, l3: i64) -> String {
    format!(
        "SELECT COUNT(*) c FROM fact f, b1, d2, b3 \
         WHERE f.k1 = b1.id AND f.k2 = d2.id AND f.k3 = b3.id \
         AND b1.a < {l1} AND b3.a < {l3}"
    )
}

struct DriftOutcome {
    reps: Vec<Rep>,
    /// Quarantines entered during the bimodal phase (from cache stats).
    quarantines: u64,
    /// Mean episode count of the pre-quarantine runs executed cold.
    cold_mean_episodes: f64,
    /// Mean episode count of the *cold* runs after the first quarantine
    /// fired — the rehabilitation window quarantine forces. Comparing
    /// cold-vs-cold proves quarantine restores baseline performance;
    /// warm runs after rehabilitation are excluded because the workload
    /// stays adversarial by construction and regresses them on purpose.
    post_quarantine_mean_episodes: f64,
    /// Did the run right after the data mutation execute cold?
    mutation_run_cold: bool,
}

/// Run the bimodal workload: alternate the selective dimension every
/// repetition so every warm start is misleading, then mutate `b1`'s data
/// and verify the next run refuses the stale prior.
fn run_drift(scale: Scale, reps: usize) -> DriftOutcome {
    let db = build_drift_db(scale);
    db.set_learning_cache(true);
    // Sticky priors on purpose: a high decay makes the misleading warm
    // start expensive to unlearn, which is exactly the regression signal
    // quarantine keys on. (Capacity/export defaults are fine.)
    db.set_learning_cache_config(TreeCacheConfig {
        decay: 0.9,
        ..Default::default()
    });
    // Fine-grained slices: at the default 500 steps the smoke-scale join
    // finishes in a handful of episodes, leaving no headroom for a
    // misleading prior to show up as extra episodes. 50 steps puts cold
    // convergence in the tens of episodes, where order quality dominates.
    let strategy = Strategy::SkinnerC(SkinnerCConfig {
        slice_steps: 50,
        ..SkinnerCConfig::default()
    });
    let mut out = Vec::with_capacity(reps);
    let mut quarantined_at: Option<usize> = None;
    for r in 0..reps {
        let (l1, l3) = if r % 2 == 0 { (2, 300) } else { (12, 2) };
        let o = db
            .run_script(&drift_sql(l1, l3), &strategy)
            .expect("drift query must run");
        assert!(!o.timed_out, "drift query timed out");
        let counter = |name| o.metrics.counter(name).unwrap_or(0);
        let best_count = o
            .metrics
            .order_slice_counts
            .first()
            .map(|(_, c)| *c)
            .unwrap_or(0);
        out.push(Rep {
            lit: l1,
            cache_hit: counter("cache_hit") == 1,
            warm_start_visits: counter("warm_start_visits"),
            episodes: o.metrics.slices,
            last_order_switch: counter("last_order_switch"),
            off_order: o.metrics.slices.saturating_sub(best_count),
            work: o.work_units,
            wall_us: o.wall.as_micros() as u64,
        });
        if quarantined_at.is_none() && db.learning_cache_stats().quarantines > 0 {
            quarantined_at = Some(r);
        }
    }
    let quarantines = db.learning_cache_stats().quarantines;

    // Convergence cost = total episodes (the drift judge's metric): it
    // prices a sticky-but-wrong prior, which pins a bad order at episode
    // one and never shows up in the lock-in point.
    let mean = |rs: &[&Rep]| {
        if rs.is_empty() {
            0.0
        } else {
            rs.iter().map(|r| r.episodes as f64).sum::<f64>() / rs.len() as f64
        }
    };
    let cold: Vec<&Rep> = out
        .iter()
        .take(quarantined_at.map_or(out.len(), |q| q + 1))
        .filter(|r| !r.cache_hit)
        .collect();
    let post: Vec<&Rep> = match quarantined_at {
        Some(q) => out.iter().skip(q + 1).filter(|r| !r.cache_hit).collect(),
        None => Vec::new(),
    };
    let cold_mean_episodes = mean(&cold);
    let post_quarantine_mean_episodes = mean(&post);

    // Mutation act: replace b1 with different content. The drop observer
    // purges the template (by uid and name), so the next run must execute
    // cold — a prior learned on the old data is never served.
    db.create_table(
        "b1",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..24)
            .map(|i| vec![Value::Int(i), Value::Int((i * 5) % 12)])
            .collect(),
    )
    .unwrap();
    let o = db
        .run_script(&drift_sql(2, 300), &strategy)
        .expect("post-mutation query must run");
    let mutation_run_cold = o.metrics.counter("cache_hit").unwrap_or(0) == 0;

    DriftOutcome {
        reps: out,
        quarantines,
        cold_mean_episodes,
        post_quarantine_mean_episodes,
        mutation_run_cold,
    }
}

fn render_drift(d: &DriftOutcome, out: &mut String) {
    out.push_str("### Drift: bimodal literals + data mutation\n\n");
    out.push_str(
        "The same template alternates which dimension is selective every\n\
         repetition, so each warm start seeds the *wrong* join order. Drift\n\
         detection must notice the warm-start regressions and quarantine the\n\
         template (runs go cold until the baseline re-establishes); a\n\
         mid-stream data mutation must purge the entry outright.\n\n",
    );
    let mut rows = Vec::new();
    for (i, r) in d.reps.iter().enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            if r.lit == 2 { "b1" } else { "b3" }.into(),
            if r.cache_hit { "warm" } else { "cold" }.into(),
            format!("{}", r.last_order_switch),
            format!("{}", r.episodes),
            human(r.work),
        ]);
    }
    out.push_str(&markdown_table(
        &["rep", "selective", "start", "lock-in", "episodes", "work"],
        &rows,
    ));
    out.push_str(&format!(
        "\nQuarantines: {}; cold mean episodes {:.1}; post-quarantine mean \
         episodes {:.1}; post-mutation run cold: {}.\n\n",
        d.quarantines, d.cold_mean_episodes, d.post_quarantine_mean_episodes, d.mutation_run_cold
    ));
}

fn json_drift(d: &DriftOutcome) -> String {
    format!(
        "{{\"quarantined_templates\": {}, \"cold_mean_episodes\": {:.2}, \
         \"post_quarantine_mean_episodes\": {:.2}, \"mutation_run_cold\": {}, \
         \"runs\": {}}}",
        d.quarantines,
        d.cold_mean_episodes,
        d.post_quarantine_mean_episodes,
        d.mutation_run_cold,
        json_reps(&d.reps)
    )
}

/// Bit-identity guard: the template's rows must be byte-for-byte the same
/// cache-on vs cache-off at every thread count. Panics on divergence.
fn assert_thread_equivalence(scale: Scale) {
    let db_off = build_db(scale);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let query = sql(5);
    for threads in [1usize, 2, 4, 8] {
        let strategy = Strategy::ParallelSkinner(ParallelSkinnerConfig {
            threads,
            batch_tuples: 256,
            ..Default::default()
        });
        // Two runs on the warm side so the second actually consumes a
        // cached prior at this thread count.
        let a = db_off.run_script(&query, &strategy).unwrap();
        db_on.run_script(&query, &strategy).unwrap();
        let b = db_on.run_script(&query, &strategy).unwrap();
        assert_eq!(
            a.result.rows, b.result.rows,
            "cache on/off rows diverged at {threads} threads"
        );
    }
    let a = db_off
        .run_script(&query, &Strategy::SkinnerC(SkinnerCConfig::default()))
        .unwrap();
    let b = db_on
        .run_script(&query, &Strategy::SkinnerC(SkinnerCConfig::default()))
        .unwrap();
    assert_eq!(a.result.rows, b.result.rows, "sequential rows diverged");
}

pub fn run(scale: Scale) -> String {
    let reps = if scale.is_smoke() {
        4
    } else {
        scale.pick(6, 10)
    };

    let mut out = String::from(
        "## Repeated-template workload — cross-query learning cache\n\n\
         The same query template executes repeatedly with varying literals.\n\
         `lock-in` is the episode index of the last join-order switch: after\n\
         it the engine ran one order exclusively. With `learning_cache` on,\n\
         repetitions 2+ warm-start from the previous run's decayed UCT\n\
         statistics (`warm visits` = seeded root visits) and should lock in\n\
         earlier; result rows are asserted bit-identical on vs off at 1, 2,\n\
         4 and 8 threads.\n\n",
    );

    // Sequential Skinner-C.
    let seq = Strategy::SkinnerC(SkinnerCConfig::default());
    let db_off = build_db(scale);
    let seq_off = run_reps(&db_off, &seq, reps);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let seq_on = run_reps(&db_on, &seq, reps);
    assert!(
        seq_on[1..].iter().all(|r| r.cache_hit),
        "warm repetitions must hit the template cache"
    );
    render_section("Skinner-C (sequential)", &seq_off, &seq_on, &mut out);

    // Parallel engine, 4 workers (sharded tree path).
    // Small batches: enough episodes per run for convergence (and its
    // acceleration) to be observable on bench-scale data.
    let par = Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads: 4,
        batch_tuples: 64,
        min_chunk_tuples: 8,
        ..Default::default()
    });
    let db_off = build_db(scale);
    let par_off = run_reps(&db_off, &par, reps);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let par_on = run_reps(&db_on, &par, reps);
    render_section("parallel_skinner (4 threads)", &par_off, &par_on, &mut out);

    // Drift: enough repetitions for two phase flips plus the quarantine's
    // cold window.
    let drift = run_drift(scale, if scale.is_smoke() { 10 } else { 12 });
    render_drift(&drift, &mut out);

    assert_thread_equivalence(scale);
    out.push_str("Thread equivalence check: rows bit-identical cache-on vs cache-off at 1/2/4/8 threads. ✔\n");

    match write_json(
        std::path::Path::new("bench_reports"),
        &[
            ("Skinner-C", &seq_off, &seq_on),
            ("parallel_skinner", &par_off, &par_on),
        ],
        Some(&drift),
    ) {
        Ok(path) => out.push_str(&format!(
            "\nRaw counters written to `{}`.\n",
            path.display()
        )),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_repeat_workload.json: {e})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_repetitions_hit_and_converge_no_worse() {
        let db = build_db(Scale::Smoke);
        db.set_learning_cache(true);
        let seq = Strategy::SkinnerC(SkinnerCConfig::default());
        let reps = run_reps(&db, &seq, 3);
        assert!(!reps[0].cache_hit, "first execution is cold");
        assert!(reps[1].cache_hit && reps[2].cache_hit);
        assert!(reps[1].warm_start_visits > 0);
        // Convergence must not regress on warm runs (usually improves).
        assert!(
            reps[1].last_order_switch <= reps[0].last_order_switch,
            "warm lock-in {} vs cold {}",
            reps[1].last_order_switch,
            reps[0].last_order_switch
        );
    }

    #[test]
    fn thread_equivalence_guard_passes() {
        assert_thread_equivalence(Scale::Smoke);
    }

    #[test]
    fn json_shape_is_valid() {
        let tmp = std::env::temp_dir().join(format!("skinner_repeat_json_{}", std::process::id()));
        let rep = Rep {
            lit: 3,
            cache_hit: true,
            warm_start_visits: 10,
            episodes: 5,
            last_order_switch: 2,
            off_order: 1,
            work: 100,
            wall_us: 42,
        };
        let drift = DriftOutcome {
            reps: vec![],
            quarantines: 1,
            cold_mean_episodes: 4.0,
            post_quarantine_mean_episodes: 3.5,
            mutation_run_cold: true,
        };
        let path = write_json(
            &tmp,
            &[("e", std::slice::from_ref(&rep), &[])],
            Some(&drift),
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"cache_hit\": true"));
        assert!(text.contains("\"mean_lock_in_off\""));
        assert!(text.contains("\"quarantined_templates\": 1"));
        assert!(text.contains("\"mutation_run_cold\": true"));
    }

    /// The drift workload is the CI gate's substrate: on smoke scale the
    /// bimodal phase must quarantine the template at least once, the
    /// post-mutation run must execute cold, and the post-quarantine runs
    /// must not regress versus cold execution.
    #[test]
    fn drift_workload_quarantines_and_recovers_deterministically() {
        let d = run_drift(Scale::Smoke, 10);
        assert!(
            d.quarantines >= 1,
            "bimodal warm starts must trip quarantine: {:?}",
            d.reps
                .iter()
                .map(|r| (r.cache_hit, r.episodes, r.last_order_switch))
                .collect::<Vec<_>>()
        );
        assert!(d.mutation_run_cold, "data mutation must purge the template");
        // Post-quarantine runs execute mostly cold; their convergence must
        // be no worse than cold baseline (generous noise margin).
        assert!(
            d.post_quarantine_mean_episodes <= d.cold_mean_episodes * 1.5 + 8.0,
            "post-quarantine {} vs cold {}",
            d.post_quarantine_mean_episodes,
            d.cold_mean_episodes
        );
    }
}
