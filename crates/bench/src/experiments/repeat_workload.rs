//! Cross-query learning on a repeated-template workload.
//!
//! The serving scenario the `learning_cache` knob exists for: the same
//! query *template* arrives over and over with different literals. With
//! the cache off, every execution learns its join order from scratch; with
//! it on, the second-and-later executions warm-start their UCT tree from
//! the previous run's decayed statistics and should lock onto the best
//! join order in measurably fewer episodes.
//!
//! Convergence measure: `last_order_switch` — the episode index after
//! which the engine executed one join order exclusively (reported by both
//! Skinner-C and `parallel_skinner`). Lower = faster lock-in. The report
//! compares it (plus work units and wall time) per repetition, cache on vs
//! off, for the sequential and the 4-thread parallel engine.
//!
//! Correctness is asserted, not assumed: for one representative literal
//! the experiment executes the template cache-on and cache-off at 1, 2, 4
//! and 8 worker threads and panics unless the result rows are bit-for-bit
//! identical — a panic fails the `bench-smoke` CI job.
//!
//! Raw numbers land in `bench_reports/BENCH_repeat_workload.json`.

use skinnerdb::skinner_core::{ParallelSkinnerConfig, SkinnerCConfig};
use skinnerdb::{DataType, Database, Strategy, Value};

use crate::harness::{human, markdown_table, Scale};

/// Star schema whose best join order is clearly "filtered small dimension
/// first": a selective unary predicate on `d1` makes starting anywhere
/// else pay a large intermediate result.
fn build_db(scale: Scale) -> Database {
    let fact_rows = if scale.is_smoke() {
        1500
    } else {
        scale.pick(4000, 40_000)
    };
    let db = Database::new();
    db.create_table(
        "d1",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..24)
            .map(|i| vec![Value::Int(i), Value::Int(i % 12)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "d2",
        &[("id", DataType::Int)],
        (0..240).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "d3",
        &[("id", DataType::Int)],
        (0..600).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "fact",
        &[
            ("k1", DataType::Int),
            ("k2", DataType::Int),
            ("k3", DataType::Int),
        ],
        (0..fact_rows)
            .map(|i| {
                vec![
                    Value::Int(i % 24),
                    Value::Int((i * 7) % 240),
                    Value::Int((i * 13) % 600),
                ]
            })
            .collect(),
    )
    .unwrap();
    db
}

/// The repeated template; `lit` is the varying literal.
fn sql(lit: i64) -> String {
    format!(
        "SELECT d1.a, COUNT(*) c FROM fact f, d1, d2, d3 \
         WHERE f.k1 = d1.id AND f.k2 = d2.id AND f.k3 = d3.id AND d1.a < {lit} \
         GROUP BY d1.a ORDER BY d1.a"
    )
}

struct Rep {
    lit: i64,
    cache_hit: bool,
    warm_start_visits: u64,
    episodes: u64,
    last_order_switch: u64,
    /// Episodes spent executing something other than the run's final
    /// (most-visited) order — the exploration cost warm starts amortize.
    off_order: u64,
    work: u64,
    wall_us: u64,
}

fn run_reps(db: &Database, strategy: &Strategy, reps: usize) -> Vec<Rep> {
    (0..reps)
        .map(|r| {
            let lit = 3 + (r as i64 % 5);
            let o = db
                .run_script(&sql(lit), strategy)
                .expect("bench query must run");
            assert!(!o.timed_out, "repeat_workload query timed out");
            let counter = |name| o.metrics.counter(name).unwrap_or(0);
            let best_count = o
                .metrics
                .order_slice_counts
                .first()
                .map(|(_, c)| *c)
                .unwrap_or(0);
            Rep {
                lit,
                cache_hit: counter("cache_hit") == 1,
                warm_start_visits: counter("warm_start_visits"),
                episodes: o.metrics.slices,
                last_order_switch: counter("last_order_switch"),
                off_order: o.metrics.slices.saturating_sub(best_count),
                work: o.work_units,
                wall_us: o.wall.as_micros() as u64,
            }
        })
        .collect()
}

/// Mean of `f` over the warm repetitions (2nd and later).
fn warm_mean(reps: &[Rep], f: impl Fn(&Rep) -> u64) -> f64 {
    if reps.len() < 2 {
        return 0.0;
    }
    let tail = &reps[1..];
    tail.iter().map(|r| f(r) as f64).sum::<f64>() / tail.len() as f64
}

/// Mean `last_order_switch` of the warm repetitions.
fn mean_lock_in(reps: &[Rep]) -> f64 {
    warm_mean(reps, |r| r.last_order_switch)
}

/// Mean off-final-order episodes of the warm repetitions.
fn mean_off_order(reps: &[Rep]) -> f64 {
    warm_mean(reps, |r| r.off_order)
}

fn render_section(name: &str, off: &[Rep], on: &[Rep], out: &mut String) {
    out.push_str(&format!("### {name}\n\n"));
    let mut rows = Vec::new();
    for (i, (a, b)) in off.iter().zip(on).enumerate() {
        rows.push(vec![
            format!("{} (a<{})", i + 1, a.lit),
            format!(
                "{} ep, lock {}, {} expl",
                a.episodes, a.last_order_switch, a.off_order
            ),
            human(a.work),
            format!(
                "{} ep, lock {}, {} expl{}",
                b.episodes,
                b.last_order_switch,
                b.off_order,
                if b.cache_hit { " (warm)" } else { "" }
            ),
            human(b.work),
            format!("{}", b.warm_start_visits),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "rep",
            "cache off",
            "work (off)",
            "cache on",
            "work (on)",
            "warm visits",
        ],
        &rows,
    ));
    let off_lock = mean_lock_in(off);
    let on_lock = mean_lock_in(on);
    let off_expl = mean_off_order(off);
    let on_expl = mean_off_order(on);
    out.push_str(&format!(
        "\nWarm repetitions (2nd+), cache off vs on: mean lock-in episode \
         {off_lock:.1} vs {on_lock:.1}; mean exploration episodes (off the \
         final order) {off_expl:.1} vs {on_expl:.1}{}.\n\n",
        if on_expl < off_expl {
            format!(
                " — **{:.1}x less exploration**",
                off_expl / on_expl.max(0.5)
            )
        } else {
            String::new()
        }
    ));
}

fn json_reps(reps: &[Rep]) -> String {
    let cells: Vec<String> = reps
        .iter()
        .map(|r| {
            format!(
                "{{\"lit\": {}, \"cache_hit\": {}, \"warm_start_visits\": {}, \
                 \"episodes\": {}, \"last_order_switch\": {}, \"work_units\": {}, \
                 \"wall_us\": {}}}",
                r.lit,
                r.cache_hit,
                r.warm_start_visits,
                r.episodes,
                r.last_order_switch,
                r.work,
                r.wall_us
            )
        })
        .collect();
    format!("[{}]", cells.join(", "))
}

fn write_json(
    dir: &std::path::Path,
    sections: &[(&str, &[Rep], &[Rep])],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_repeat_workload.json");
    let mut out = String::from("{\n  \"engines\": [\n");
    for (i, (name, off, on)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{name}\", \"cache_off\": {}, \"cache_on\": {}, \
             \"mean_lock_in_off\": {:.2}, \"mean_lock_in_on\": {:.2}}}{}\n",
            json_reps(off),
            json_reps(on),
            mean_lock_in(off),
            mean_lock_in(on),
            if i + 1 < sections.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Bit-identity guard: the template's rows must be byte-for-byte the same
/// cache-on vs cache-off at every thread count. Panics on divergence.
fn assert_thread_equivalence(scale: Scale) {
    let db_off = build_db(scale);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let query = sql(5);
    for threads in [1usize, 2, 4, 8] {
        let strategy = Strategy::ParallelSkinner(ParallelSkinnerConfig {
            threads,
            batch_tuples: 256,
            ..Default::default()
        });
        // Two runs on the warm side so the second actually consumes a
        // cached prior at this thread count.
        let a = db_off.run_script(&query, &strategy).unwrap();
        db_on.run_script(&query, &strategy).unwrap();
        let b = db_on.run_script(&query, &strategy).unwrap();
        assert_eq!(
            a.result.rows, b.result.rows,
            "cache on/off rows diverged at {threads} threads"
        );
    }
    let a = db_off
        .run_script(&query, &Strategy::SkinnerC(SkinnerCConfig::default()))
        .unwrap();
    let b = db_on
        .run_script(&query, &Strategy::SkinnerC(SkinnerCConfig::default()))
        .unwrap();
    assert_eq!(a.result.rows, b.result.rows, "sequential rows diverged");
}

pub fn run(scale: Scale) -> String {
    let reps = if scale.is_smoke() {
        4
    } else {
        scale.pick(6, 10)
    };

    let mut out = String::from(
        "## Repeated-template workload — cross-query learning cache\n\n\
         The same query template executes repeatedly with varying literals.\n\
         `lock-in` is the episode index of the last join-order switch: after\n\
         it the engine ran one order exclusively. With `learning_cache` on,\n\
         repetitions 2+ warm-start from the previous run's decayed UCT\n\
         statistics (`warm visits` = seeded root visits) and should lock in\n\
         earlier; result rows are asserted bit-identical on vs off at 1, 2,\n\
         4 and 8 threads.\n\n",
    );

    // Sequential Skinner-C.
    let seq = Strategy::SkinnerC(SkinnerCConfig::default());
    let db_off = build_db(scale);
    let seq_off = run_reps(&db_off, &seq, reps);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let seq_on = run_reps(&db_on, &seq, reps);
    assert!(
        seq_on[1..].iter().all(|r| r.cache_hit),
        "warm repetitions must hit the template cache"
    );
    render_section("Skinner-C (sequential)", &seq_off, &seq_on, &mut out);

    // Parallel engine, 4 workers (sharded tree path).
    // Small batches: enough episodes per run for convergence (and its
    // acceleration) to be observable on bench-scale data.
    let par = Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads: 4,
        batch_tuples: 64,
        min_chunk_tuples: 8,
        ..Default::default()
    });
    let db_off = build_db(scale);
    let par_off = run_reps(&db_off, &par, reps);
    let db_on = build_db(scale);
    db_on.set_learning_cache(true);
    let par_on = run_reps(&db_on, &par, reps);
    render_section("parallel_skinner (4 threads)", &par_off, &par_on, &mut out);

    assert_thread_equivalence(scale);
    out.push_str("Thread equivalence check: rows bit-identical cache-on vs cache-off at 1/2/4/8 threads. ✔\n");

    match write_json(
        std::path::Path::new("bench_reports"),
        &[
            ("Skinner-C", &seq_off, &seq_on),
            ("parallel_skinner", &par_off, &par_on),
        ],
    ) {
        Ok(path) => out.push_str(&format!(
            "\nRaw counters written to `{}`.\n",
            path.display()
        )),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_repeat_workload.json: {e})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_repetitions_hit_and_converge_no_worse() {
        let db = build_db(Scale::Smoke);
        db.set_learning_cache(true);
        let seq = Strategy::SkinnerC(SkinnerCConfig::default());
        let reps = run_reps(&db, &seq, 3);
        assert!(!reps[0].cache_hit, "first execution is cold");
        assert!(reps[1].cache_hit && reps[2].cache_hit);
        assert!(reps[1].warm_start_visits > 0);
        // Convergence must not regress on warm runs (usually improves).
        assert!(
            reps[1].last_order_switch <= reps[0].last_order_switch,
            "warm lock-in {} vs cold {}",
            reps[1].last_order_switch,
            reps[0].last_order_switch
        );
    }

    #[test]
    fn thread_equivalence_guard_passes() {
        assert_thread_equivalence(Scale::Smoke);
    }

    #[test]
    fn json_shape_is_valid() {
        let tmp = std::env::temp_dir().join(format!("skinner_repeat_json_{}", std::process::id()));
        let rep = Rep {
            lit: 3,
            cache_hit: true,
            warm_start_visits: 10,
            episodes: 5,
            last_order_switch: 2,
            off_order: 1,
            work: 100,
            wall_us: 42,
        };
        let path = write_json(&tmp, &[("e", std::slice::from_ref(&rep), &[])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"cache_hit\": true"));
        assert!(text.contains("\"mean_lock_in_off\""));
    }
}
