//! Server throughput under concurrent wire clients.
//!
//! Starts a real `skinner_server` on a loopback port and hammers it with
//! 1 / 4 / 16 / 64 concurrent `skinner_client` connections running a
//! mixed query set, with admission control **on** (concurrency gate sized
//! to the machine, bounded queue) and **off** (gate effectively
//! unbounded). Reports queries/sec, p50/p99 latency and how many queries
//! were load-shed — the point of the comparison: with the gate, overload
//! turns into explicit shed responses and stable latency instead of an
//! ever-growing pile of concurrent executions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use skinner_client::Client;
use skinner_server::{AdmissionConfig, Server, ServerConfig};
use skinnerdb::{DataType, Database, Value};

use crate::harness::{fmt_dur, markdown_table, Scale};

const CLIENT_COUNTS: [usize; 4] = [1, 4, 16, 64];

fn bench_db(scale: Scale) -> Database {
    let n = scale.pick(400u64, 2_000);
    let db = Database::new();
    db.create_table(
        "t",
        &[("id", DataType::Int), ("g", DataType::Int)],
        (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 7) as i64)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "u",
        &[("tid", DataType::Int), ("w", DataType::Int)],
        (0..n * 2)
            .map(|i| vec![Value::Int((i % n) as i64), Value::Int((i % 13) as i64)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "v",
        &[("uid", DataType::Int)],
        (0..n)
            .map(|i| vec![Value::Int(((i * 3) % n) as i64)])
            .collect(),
    )
    .unwrap();
    db
}

const QUERIES: [&str; 3] = [
    "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g",
    "SELECT t.id FROM t, u, v WHERE t.id = u.tid AND u.tid = v.uid AND t.g = 2",
    "SELECT u.w, COUNT(*) c FROM t, u WHERE t.id = u.tid AND t.g = 1 GROUP BY u.w",
];

struct RunStats {
    completed: usize,
    shed: usize,
    wall: Duration,
    latencies: Vec<Duration>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// `clients` connections, each running `per_client` queries round-robin.
fn drive(addr: &str, clients: usize, per_client: usize) -> RunStats {
    let addr: Arc<str> = addr.into();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let mut shed = 0usize;
                let mut client =
                    Client::connect_with_retry(&*addr, Duration::from_secs(10)).expect("connect");
                for i in 0..per_client {
                    let sql = QUERIES[(c + i) % QUERIES.len()];
                    let t0 = Instant::now();
                    match client.query(sql) {
                        Ok(_) => latencies.push(t0.elapsed()),
                        Err(e) if e.is_overloaded() => shed += 1,
                        Err(e) => panic!("unexpected query failure: {e}"),
                    }
                }
                (latencies, shed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut shed = 0;
    for h in handles {
        let (l, s) = h.join().expect("client thread");
        latencies.extend(l);
        shed += s;
    }
    let wall = started.elapsed();
    latencies.sort();
    RunStats {
        completed: latencies.len(),
        shed,
        wall,
        latencies,
    }
}

pub fn run(scale: Scale) -> String {
    let per_client = scale.pick(8, 32);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "## Server throughput — concurrent wire clients vs admission control\n\n\
         Machine: {cores} core(s). Each client runs {per_client} queries from a\n\
         3-query mix over one shared database; latency is per completed query.\n\
         \"gated\" sizes the admission gate to the machine ({} concurrent, queue 32);\n\
         \"open\" admits everything at once. Shed queries received an explicit\n\
         Overloaded error (never a hang) and are excluded from latency.\n\n",
        cores.max(2)
    );
    let mut rows = Vec::new();
    for gated in [true, false] {
        let admission = if gated {
            AdmissionConfig {
                max_concurrent: cores.max(2),
                queue_depth: 32,
                queue_timeout: Duration::from_secs(30),
            }
        } else {
            AdmissionConfig {
                max_concurrent: 1 << 20,
                queue_depth: 1 << 20,
                queue_timeout: Duration::from_secs(30),
            }
        };
        let cfg = ServerConfig {
            max_connections: 1024,
            admission,
            ..ServerConfig::default()
        };
        for &clients in &CLIENT_COUNTS {
            let mut server =
                Server::bind(bench_db(scale), "127.0.0.1:0", cfg.clone()).expect("bind");
            let addr = server.local_addr().to_string();
            let stats = drive(&addr, clients, per_client);
            server.shutdown();
            let qps = stats.completed as f64 / stats.wall.as_secs_f64().max(1e-9);
            rows.push(vec![
                if gated { "gated" } else { "open" }.to_string(),
                clients.to_string(),
                stats.completed.to_string(),
                stats.shed.to_string(),
                format!("{qps:.0}"),
                fmt_dur(percentile(&stats.latencies, 0.50)),
                fmt_dur(percentile(&stats.latencies, 0.99)),
                fmt_dur(stats.wall),
            ]);
        }
    }
    out.push_str(&markdown_table(
        &[
            "admission",
            "clients",
            "completed",
            "shed",
            "qps",
            "p50",
            "p99",
            "total",
        ],
        &rows,
    ));
    out.push_str(
        "\nReading guide: on a single-core container the two configurations\n\
         converge (there is no parallelism to protect); on multi-core hardware\n\
         the gated server holds p99 roughly flat as clients grow, while the\n\
         open server's tail latency climbs with every additional in-flight\n\
         query competing for the same cores.\n",
    );
    out
}
