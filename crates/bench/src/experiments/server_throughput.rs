//! Server throughput under massed pipelined wire clients.
//!
//! Starts a real `skinner_server` on a loopback port and drives it with
//! hundreds to thousands of *simultaneously connected* simulated clients
//! — far more connections than threads, which is exactly what the
//! event-loop server exists for. A small pool of driver threads each owns
//! a slice of the connections; every connection pipelines a burst of
//! tagged statements (protocol v2), then collects the interleaved
//! replies. Admission control is on and deliberately tight, so overload
//! shows up as explicit `Overloaded` sheds and a bounded p99 instead of
//! collapse.
//!
//! Besides the markdown table, the run writes
//! `bench_reports/BENCH_server_throughput.json` with the per-level
//! completed/shed/latency curve for CI artifacts.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use skinner_client::Client;
use skinner_server::poll::max_open_files;
use skinner_server::{AdmissionConfig, Server, ServerConfig};
use skinnerdb::{DataType, Database, Value};

use crate::harness::{fmt_dur, markdown_table, Scale};

const DRIVER_THREADS: usize = 16;

fn bench_db(scale: Scale) -> Database {
    let n = scale.pick(400u64, 2_000);
    let db = Database::new();
    db.create_table(
        "t",
        &[("id", DataType::Int), ("g", DataType::Int)],
        (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 7) as i64)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "u",
        &[("tid", DataType::Int), ("w", DataType::Int)],
        (0..n * 2)
            .map(|i| vec![Value::Int((i % n) as i64), Value::Int((i % 13) as i64)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "v",
        &[("uid", DataType::Int)],
        (0..n)
            .map(|i| vec![Value::Int(((i * 3) % n) as i64)])
            .collect(),
    )
    .unwrap();
    db
}

const QUERIES: [&str; 3] = [
    "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g",
    "SELECT t.id FROM t, u, v WHERE t.id = u.tid AND u.tid = v.uid AND t.g = 2",
    "SELECT u.w, COUNT(*) c FROM t, u WHERE t.id = u.tid AND t.g = 1 GROUP BY u.w",
];

struct LevelStats {
    clients: usize,
    completed: usize,
    shed: usize,
    io_failed: usize,
    wall: Duration,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Hold `clients` connections open at once, pipeline `depth` tagged
/// statements on every connection, collect everything.
fn drive(addr: &str, clients: usize, depth: usize) -> LevelStats {
    let addr: Arc<str> = addr.into();
    // All drivers finish connecting before anyone sends: the load level
    // means "N clients connected simultaneously", not a ramp.
    let barrier = Arc::new(Barrier::new(DRIVER_THREADS));
    let started = Instant::now();
    let handles: Vec<_> = (0..DRIVER_THREADS)
        .map(|d| {
            let addr = addr.clone();
            let barrier = barrier.clone();
            // Spread the remainder so counts differ by at most one.
            let mine = clients / DRIVER_THREADS + usize::from(d < clients % DRIVER_THREADS);
            std::thread::spawn(move || {
                let mut conns: Vec<Client> = (0..mine)
                    .map(|_| {
                        Client::connect_with_retry(&*addr, Duration::from_secs(30))
                            .expect("connect")
                    })
                    .collect();
                barrier.wait();
                let mut latencies: Vec<Duration> = Vec::with_capacity(mine * depth);
                let mut shed = 0usize;
                let mut io_failed = 0usize;
                // Send phase: every connection fills its pipeline before
                // anyone blocks on a reply.
                let mut inflight: Vec<Vec<(u32, Instant)>> = vec![Vec::new(); mine];
                for (ci, conn) in conns.iter_mut().enumerate() {
                    for k in 0..depth {
                        let sql = QUERIES[(d + ci + k) % QUERIES.len()];
                        match conn.send_query(sql) {
                            Ok(tag) => inflight[ci].push((tag, Instant::now())),
                            Err(_) => io_failed += 1,
                        }
                    }
                }
                // Collect phase: replies demultiplex by tag per conn.
                for (ci, conn) in conns.iter_mut().enumerate() {
                    for (tag, t0) in inflight[ci].drain(..) {
                        match conn.wait(tag) {
                            Ok(_) => latencies.push(t0.elapsed()),
                            Err(e) if e.is_overloaded() => shed += 1,
                            Err(_) => io_failed += 1,
                        }
                    }
                }
                (latencies, shed, io_failed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut shed = 0;
    let mut io_failed = 0;
    for h in handles {
        let (l, s, f) = h.join().expect("driver thread");
        latencies.extend(l);
        shed += s;
        io_failed += f;
    }
    let wall = started.elapsed();
    latencies.sort();
    LevelStats {
        clients,
        completed: latencies.len(),
        shed,
        io_failed,
        wall,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(
    dir: &std::path::Path,
    cores: usize,
    depth: usize,
    fd_cap: usize,
    levels: &[LevelStats],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_server_throughput.json");
    // Headline figures for the CI artifact: the largest level that
    // completed work with zero I/O failures, and its p99 — the "sustains
    // N concurrent clients with bounded tail latency" claim.
    let sustained = levels
        .iter()
        .filter(|l| l.completed > 0 && l.io_failed == 0)
        .map(|l| l.clients)
        .max()
        .unwrap_or(0);
    let p99_at_max = levels
        .iter()
        .filter(|l| l.clients == sustained)
        .map(|l| l.p99)
        .next()
        .unwrap_or(Duration::ZERO);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"pipeline_depth\": {depth},\n"));
    out.push_str(&format!("  \"fd_cap\": {fd_cap},\n"));
    out.push_str(&format!("  \"max_clients_sustained\": {sustained},\n"));
    out.push_str(&format!(
        "  \"p99_us_at_max_level\": {},\n",
        p99_at_max.as_micros()
    ));
    out.push_str(&format!(
        "  \"queries\": [{}],\n",
        QUERIES
            .iter()
            .map(|q| format!("\"{}\"", json_escape(q)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"levels\": [\n");
    for (i, l) in levels.iter().enumerate() {
        let qps = l.completed as f64 / l.wall.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "    {{\"clients\": {}, \"completed\": {}, \"shed\": {}, \"io_failed\": {}, \
             \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"wall_us\": {}}}{}\n",
            l.clients,
            l.completed,
            l.shed,
            l.io_failed,
            qps,
            l.p50.as_micros(),
            l.p99.as_micros(),
            l.wall.as_micros(),
            if i + 1 < levels.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

pub fn run(scale: Scale) -> String {
    let depth = scale.pick(3, 6);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Every simulated client costs two descriptors in this process (the
    // client socket and the server's accepted peer); leave headroom for
    // the poller, listener, data files and the test harness itself.
    let fd_cap = max_open_files()
        .map(|n| ((n.saturating_sub(256)) / 2) as usize)
        .unwrap_or(usize::MAX);
    let mut levels: Vec<usize> = vec![64, 256, 1_000];
    if !scale.is_smoke() {
        levels.push(4_000);
    }
    let mut clamped = Vec::new();
    levels.retain(|&l| {
        let fits = l <= fd_cap;
        if !fits {
            clamped.push(l);
        }
        fits
    });
    if levels.last() != Some(&fd_cap) && !clamped.is_empty() && fd_cap > 64 {
        levels.push(fd_cap); // still probe the largest level that fits
    }

    let mut out = format!(
        "## Server throughput — massed pipelined clients on the event-loop server\n\n\
         Machine: {cores} core(s), fd budget {fd_cap} simultaneous connections.\n\
         {DRIVER_THREADS} driver threads hold every connection of a level open at\n\
         once; each connection pipelines {depth} tagged statements (protocol v2)\n\
         and then collects the interleaved replies. The admission gate is sized\n\
         to the machine ({} concurrent, queue 64, 2s queue timeout), so overload\n\
         sheds explicitly with `Overloaded` instead of hanging; sheds are\n\
         excluded from latency.\n\n",
        cores.max(2)
    );
    if !clamped.is_empty() {
        out.push_str(&format!(
            "Levels {clamped:?} exceed this process's file-descriptor budget and were skipped.\n\n"
        ));
    }

    let mut stats = Vec::new();
    let mut rows = Vec::new();
    for &clients in &levels {
        let cfg = ServerConfig {
            max_connections: clients + 64,
            admission: AdmissionConfig {
                max_concurrent: cores.max(2),
                queue_depth: 64,
                queue_timeout: Duration::from_secs(2),
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        };
        let mut server = Server::bind(bench_db(scale), "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().to_string();
        let s = drive(&addr, clients, depth);
        server.shutdown();
        let qps = s.completed as f64 / s.wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            s.clients.to_string(),
            s.completed.to_string(),
            s.shed.to_string(),
            s.io_failed.to_string(),
            format!("{qps:.0}"),
            fmt_dur(s.p50),
            fmt_dur(s.p99),
            fmt_dur(s.wall),
        ]);
        stats.push(s);
    }
    out.push_str(&markdown_table(
        &[
            "clients",
            "completed",
            "shed",
            "io_failed",
            "qps",
            "p50",
            "p99",
            "total",
        ],
        &rows,
    ));
    match write_json(
        std::path::Path::new("bench_reports"),
        cores,
        depth,
        fd_cap,
        &stats,
    ) {
        Ok(path) => out.push_str(&format!("\nJSON artifact: {}\n", path.display())),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_server_throughput.json: {e})\n"
        )),
    }
    out.push_str(
        "\nReading guide: completed + shed + io_failed always equals clients ×\n\
         pipeline depth — every statement gets an answer. As levels grow, qps\n\
         plateaus at what the admission gate admits, p99 stays near the queue\n\
         timeout bound, and the shed column absorbs the rest; io_failed > 0\n\
         would mean dropped connections, which is the failure mode the\n\
         event-loop rewrite exists to prevent.\n",
    );
    out
}
