//! Tables 1 & 2: performance on the join order benchmark.
//!
//! Paper's Table 1 (single-threaded) compares Skinner-C, Postgres,
//! S-G(PG), S-H(PG), MonetDB, S-G(MDB), S-H(MDB) on total/max time and
//! accumulated intermediate cardinality; Table 2 repeats the subset that
//! supports multi-threading. Our engine mapping: RowDB ↔ Postgres,
//! ColDB ↔ MonetDB.

use crate::harness::{cout_of_order, human, markdown_table, run_bound, Scale, System};
use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale, multi_threaded: bool) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    let systems: Vec<System> = if multi_threaded {
        vec![
            System::SkinnerCPar,
            System::ColDBPar,
            System::SkinnerGCol,
            System::SkinnerHCol,
        ]
    } else {
        vec![
            System::SkinnerC,
            System::RowDB,
            System::SkinnerGRow,
            System::SkinnerHRow,
            System::ColDB,
            System::SkinnerGCol,
            System::SkinnerHCol,
        ]
    };

    let mut rows = Vec::new();
    for sys in &systems {
        let mut total_wall = 0.0f64;
        let mut total_work = 0u64;
        let mut max_wall = 0.0f64;
        let mut max_work = 0u64;
        let mut total_card = 0u64;
        let mut max_card = 0u64;
        let mut card_unknown = 0usize;
        let mut card_any = false;
        let mut timeouts = 0usize;
        for q in &w.queries {
            let query = db.bind(&q.script).unwrap();
            let o = run_bound(&db, &query, *sys, limit);
            total_wall += o.wall.as_secs_f64();
            max_wall = max_wall.max(o.wall.as_secs_f64());
            total_work += o.work;
            max_work = max_work.max(o.work);
            if o.timed_out {
                timeouts += 1;
            }
            // Cardinality of the executed plan: measured for traditional
            // engines; C_out of the final learned order for Skinner-C
            // (the paper's optimizer-quality metric).
            let card = match sys {
                System::SkinnerC | System::SkinnerCPar => {
                    let out = run_skinner_c(
                        &query,
                        &db.exec_context(),
                        &SkinnerCConfig {
                            work_limit: limit,
                            ..Default::default()
                        },
                    );
                    cout_of_order(&query, &out.metrics.order, limit)
                }
                _ => o.card,
            };
            match card {
                Some(c) => {
                    total_card += c;
                    max_card = max_card.max(c);
                    card_any = true;
                }
                None => card_unknown += 1,
            }
        }
        let fmt_card = |v: u64| -> String {
            if !card_any {
                "n/a".into()
            } else if card_unknown > 0 {
                format!("{} (+{card_unknown} sat.)", human(v))
            } else {
                human(v)
            }
        };
        rows.push(vec![
            sys.name().to_string(),
            format!("{total_wall:.2}s"),
            human(total_work),
            fmt_card(total_card),
            format!("{max_wall:.3}s"),
            human(max_work),
            fmt_card(max_card),
            if timeouts > 0 {
                format!("{timeouts}")
            } else {
                "0".into()
            },
        ]);
    }

    let title = if multi_threaded {
        "Table 2 — join order benchmark, multi-threaded"
    } else {
        "Table 1 — join order benchmark, single-threaded"
    };
    format!(
        "## {title}\n\n{} queries, work limit {}/query.\n\n{}",
        w.queries.len(),
        human(limit),
        markdown_table(
            &[
                "Approach",
                "Total Time",
                "Total Work",
                "Total Card.",
                "Max Time",
                "Max Work",
                "Max Card.",
                "Timeouts",
            ],
            &rows,
        )
    ) + &format!(
        "\n(threads for parallel rows: {})\n",
        crate::harness::bench_threads()
    )
}
