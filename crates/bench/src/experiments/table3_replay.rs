//! Tables 3 & 4: replaying join orders across engines.
//!
//! The paper takes (a) Skinner-C's final join orders, (b) each engine's
//! original optimizer orders and (c) the C_out-optimal orders, then executes
//! all of them in every engine: Skinner's orders improve all engines and
//! sit close to the optimum, demonstrating the speedups come from join
//! ordering, not the engine.

use crate::harness::{bench_threads, human, markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, run_skinner_c_fixed, SkinnerCConfig};
use skinnerdb::skinner_exec::oracle::optimal_order;
use skinnerdb::skinner_exec::{
    preprocess, run_traditional, ExecProfile, TraditionalConfig, WorkBudget,
};

use skinnerdb::skinner_optimizer::best_left_deep_estimated;

use super::{job_limit, job_workload};

pub fn run(scale: Scale, multi_threaded: bool) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    let threads = if multi_threaded { bench_threads() } else { 1 };
    // Optimal-order search is exponential in practice; cap query size.
    let max_tables_for_optimal = scale.pick(8, 12);

    // Accumulators: (engine, order-source) → (total work, max work, count).
    let mut totals: std::collections::BTreeMap<(&str, &str), (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut add = |engine: &'static str, order_src: &'static str, work: u64| {
        let e = totals.entry((engine, order_src)).or_insert((0, 0));
        e.0 += work;
        e.1 = e.1.max(work);
    };

    let mut covered = 0usize;
    for q in &w.queries {
        if q.num_tables > max_tables_for_optimal {
            continue;
        }
        covered += 1;
        let query = db.bind(&q.script).unwrap();

        // The three order sources.
        let skinner_order = run_skinner_c(&query, &db.exec_context(), &SkinnerCConfig::default())
            .metrics
            .order;
        let original_order = best_left_deep_estimated(&query, db.stats()).0;
        let budget = WorkBudget::unlimited();
        let pre = preprocess(&query, &budget, 1).unwrap();
        let (opt_order, _) = optimal_order(&query, pre.tables, limit);

        for (src, order) in [
            ("Skinner", &skinner_order),
            ("Original", &original_order),
            ("Optimal", &opt_order),
        ] {
            // Skinner engine (fixed order).
            let cfg = SkinnerCConfig {
                work_limit: limit,
                preprocess_threads: threads,
                ..Default::default()
            };
            let o = run_skinner_c_fixed(&query, &db.exec_context(), order, &cfg);
            add("Skinner", src, o.work_units);
            // Generic engines with forced orders (optimizer hints).
            for (engine, profile) in [
                ("RowDB(PG)", ExecProfile::row_store()),
                (
                    "ColDB(MDB)",
                    if multi_threaded {
                        ExecProfile::column_store_parallel(threads)
                    } else {
                        ExecProfile::column_store()
                    },
                ),
            ] {
                if multi_threaded && engine == "RowDB(PG)" {
                    continue; // the paper's Table 4 drops single-thread PG
                }
                let t = run_traditional(
                    &query,
                    &db.exec_context(),
                    &TraditionalConfig {
                        profile,
                        forced_order: Some(order.to_vec()),
                        work_limit: limit,
                        preprocess_threads: threads,
                        ..Default::default()
                    },
                );
                add(engine, src, t.work_units);
            }
        }
    }

    let mut rows = Vec::new();
    for ((engine, src), (total, max)) in &totals {
        rows.push(vec![
            engine.to_string(),
            src.to_string(),
            human(*total),
            human(*max),
        ]);
    }
    let title = if multi_threaded {
        "Table 4 — join order replay, multi-threaded"
    } else {
        "Table 3 — join order replay, single-threaded"
    };
    format!(
        "## {title}\n\n{covered} queries (≤{max_tables_for_optimal} tables; \
         optimal orders need exact cardinalities).\n\n{}",
        markdown_table(&["Engine", "Order", "Total Work", "Max Work"], &rows)
    )
}
