//! Table 5: replacing reinforcement learning by randomization.
//!
//! The paper swaps UCT for uniform-random join-order selection in Skinner-C
//! and the hybrid variants; learning turns out to be the crucial feature.

use crate::harness::{human, markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig, SkinnerG, SkinnerGConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);

    let mut rows = Vec::new();
    for (engine, learning) in [
        ("Skinner-C", true),
        ("Skinner-C", false),
        ("Skinner-G(Row)", true),
        ("Skinner-G(Row)", false),
    ] {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut timeouts = 0usize;
        for q in &w.queries {
            let query = db.bind(&q.script).unwrap();
            let (work, timed_out) = if engine == "Skinner-C" {
                let o = run_skinner_c(
                    &query,
                    &db.exec_context(),
                    &SkinnerCConfig {
                        learning,
                        work_limit: limit,
                        ..Default::default()
                    },
                );
                (o.work_units, o.timed_out)
            } else {
                let o = SkinnerG::new(
                    &query,
                    &db.exec_context(),
                    SkinnerGConfig {
                        learning,
                        work_limit: limit,
                        ..Default::default()
                    },
                )
                .run_to_completion();
                (o.work_units, o.timed_out)
            };
            total += work;
            max = max.max(work);
            if timed_out {
                timeouts += 1;
            }
        }
        rows.push(vec![
            engine.to_string(),
            if learning { "UCT (original)" } else { "Random" }.to_string(),
            human(total),
            human(max),
            timeouts.to_string(),
        ]);
    }
    format!(
        "## Table 5 — learning vs. randomized join order selection\n\n\
         {} JOB-like queries, work limit {}/query.\n\n{}",
        w.queries.len(),
        human(limit),
        markdown_table(
            &["Engine", "Optimizer", "Total Work", "Max Work", "Timeouts"],
            &rows
        )
    )
}
