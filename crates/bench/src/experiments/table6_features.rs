//! Table 6: impact of SkinnerDB features.
//!
//! The paper peels features off Skinner-C: {indexes, parallelization,
//! learning} → {parallelization, learning} → {learning} → {none}; learning
//! dominates, indexes and parallel pre-processing are incremental.

use crate::harness::{bench_threads, human, markdown_table, Scale};
use skinnerdb::skinner_core::{run_skinner_c, SkinnerCConfig};

use super::{job_limit, job_workload};

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    let threads = bench_threads();

    let configs: [(&str, SkinnerCConfig); 4] = [
        (
            "indexes, parallelization, learning",
            SkinnerCConfig {
                use_jump_indexes: true,
                preprocess_threads: threads,
                learning: true,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "parallelization, learning",
            SkinnerCConfig {
                use_jump_indexes: false,
                preprocess_threads: threads,
                learning: true,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "learning",
            SkinnerCConfig {
                use_jump_indexes: false,
                preprocess_threads: 1,
                learning: true,
                work_limit: limit,
                ..Default::default()
            },
        ),
        (
            "none",
            SkinnerCConfig {
                use_jump_indexes: false,
                preprocess_threads: 1,
                learning: false,
                work_limit: limit,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, cfg) in &configs {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut wall = 0.0f64;
        let mut timeouts = 0usize;
        for q in &w.queries {
            let query = db.bind(&q.script).unwrap();
            let o = run_skinner_c(&query, &db.exec_context(), cfg);
            total += o.work_units;
            max = max.max(o.work_units);
            wall += o.wall.as_secs_f64();
            if o.timed_out {
                timeouts += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{wall:.2}s"),
            human(total),
            human(max),
            timeouts.to_string(),
        ]);
    }
    format!(
        "## Table 6 — impact of SkinnerDB features\n\n\
         {} JOB-like queries, work limit {}/query.\n\n{}",
        w.queries.len(),
        human(limit),
        markdown_table(
            &[
                "Enabled Features",
                "Total Time",
                "Total Work",
                "Max Work",
                "Timeouts"
            ],
            &rows
        )
    )
}
