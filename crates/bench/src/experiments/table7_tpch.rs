//! Figure 13 / Table 7: TPC-H and TPC-H with UDFs.
//!
//! Per-query work for each approach plus the paper's summary metrics: total
//! benchmark cost and the maximum per-query overhead relative to the best
//! approach for that query ("Max. Rel."). The expected shape: the column
//! engine wins standard TPC-H; Skinner-C wins the UDF variant; the hybrid
//! trades a bounded overhead on standard queries for order-of-magnitude
//! gains on UDF queries.

use skinnerdb::skinner_core::{SkinnerCConfig, SkinnerGConfig, SkinnerHConfig};
use skinnerdb::skinner_exec::{ExecProfile, TraditionalConfig};
use skinnerdb::skinner_workloads::tpch::{generate, generate_udf, TpchConfig};
use skinnerdb::skinner_workloads::Workload;
use skinnerdb::{Database, Strategy};

use crate::harness::{human, markdown_table, Scale, System};

const SYSTEMS: [System; 5] = [
    System::SkinnerC,
    System::RowDB,
    System::SkinnerGRow,
    System::SkinnerHRow,
    System::ColDB,
];

pub fn run(scale: Scale) -> String {
    let cfg = TpchConfig {
        scale: scale.pick(0.005, 0.05),
        seed: 0x79C8,
    };
    let limit: u64 = scale.pick(100_000_000, 2_000_000_000);

    let mut out = format!(
        "## Table 7 / Figure 13 — TPC-H variants (scale factor {})\n",
        cfg.scale
    );
    for (label, workload) in [("TPC-H", generate(&cfg)), ("TPC-UDF", generate_udf(&cfg))] {
        out += &format!(
            "\n### {label} (work units; '>' = timeout at {})\n\n",
            human(limit)
        );
        out += &run_variant(workload, limit);
    }
    out
}

fn strategy_of(sys: System, limit: u64) -> Strategy {
    match sys {
        System::SkinnerC => Strategy::SkinnerC(SkinnerCConfig {
            work_limit: limit,
            ..Default::default()
        }),
        System::RowDB => Strategy::Traditional(TraditionalConfig {
            profile: ExecProfile::row_store(),
            work_limit: limit,
            ..Default::default()
        }),
        System::ColDB => Strategy::Traditional(TraditionalConfig {
            profile: ExecProfile::column_store(),
            work_limit: limit,
            ..Default::default()
        }),
        System::SkinnerGRow => Strategy::SkinnerG(SkinnerGConfig {
            work_limit: limit,
            ..Default::default()
        }),
        System::SkinnerHRow => Strategy::SkinnerH(SkinnerHConfig {
            learner: SkinnerGConfig {
                work_limit: limit,
                ..Default::default()
            },
            ..Default::default()
        }),
        _ => unreachable!("not part of the TPC-H roster"),
    }
}

fn run_variant(w: Workload, limit: u64) -> String {
    // TPC-H scripts use temp tables, so everything runs through the facade.
    let db = Database::from_parts(w.catalog.clone(), w.udfs);

    let mut work = vec![vec![0u64; SYSTEMS.len()]; w.queries.len()];
    let mut timeout = vec![vec![false; SYSTEMS.len()]; w.queries.len()];
    for (qi, q) in w.queries.iter().enumerate() {
        for (si, sys) in SYSTEMS.iter().enumerate() {
            let o = db
                .run_script(&q.script, &strategy_of(*sys, limit))
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            work[qi][si] = o.work_units;
            timeout[qi][si] = o.timed_out;
        }
    }

    // Per-query rows.
    let mut rows = Vec::new();
    for (qi, q) in w.queries.iter().enumerate() {
        let mut row = vec![q.name.clone()];
        for si in 0..SYSTEMS.len() {
            row.push(if timeout[qi][si] {
                format!(">{}", human(work[qi][si]))
            } else {
                human(work[qi][si])
            });
        }
        rows.push(row);
    }
    // Summary: totals and max relative overhead vs the per-query best.
    let mut summary = vec!["TOTAL".to_string()];
    let mut max_rel = vec!["Max.Rel.".to_string()];
    for si in 0..SYSTEMS.len() {
        let total: u64 = (0..w.queries.len()).map(|qi| work[qi][si]).sum();
        summary.push(human(total));
        let mut worst = 0.0f64;
        for per_system in work.iter().take(w.queries.len()) {
            let best = per_system.iter().copied().min().unwrap().max(1);
            worst = worst.max(per_system[si] as f64 / best as f64);
        }
        max_rel.push(format!("{worst:.1}"));
    }
    rows.push(summary);
    rows.push(max_rel);

    let mut headers = vec!["Query"];
    headers.extend(SYSTEMS.iter().map(|s| s.name()));
    markdown_table(&headers, &rows)
}
