//! Cost of always-on query tracing: traced vs untraced execution, A/B
//! interleaved on the same database.
//!
//! The telemetry design brief is "always on, no hot-path allocation":
//! every server-side query carries a fixed-capacity span ring whose
//! entries are recorded at stage boundaries (admission, parse/bind,
//! preprocess, per-order episode batches, postprocess, encode) — never
//! per tuple. This experiment quantifies that claim on the
//! repeated-template star join: iterations alternate between a plain
//! [`skinnerdb::Database::exec_context`] and one with a
//! [`skinnerdb::skinner_exec::Trace`] attached, so drift (cache warmup,
//! CPU frequency, allocator state) hits both sides equally. The headline
//! number compares *best-case* wall time per side — noise and the
//! learner's per-run episode variance only ever add time, so the minimum
//! over N tries isolates the deterministic tracing cost. The JSON lands
//! in `bench_reports/BENCH_telemetry_overhead.json`; the `bench-smoke`
//! CI job asserts `overhead_pct < 3`.

use skinnerdb::skinner_core::SkinnerCConfig;
use skinnerdb::skinner_exec::Trace;
use skinnerdb::{DataType, Database, Strategy, Value};

use crate::harness::{markdown_table, Scale};

/// Same shape as the repeat-workload star schema: a selective dimension
/// predicate that gives the learner something to do, sized so one query
/// takes milliseconds (stage boundaries are a measurable fraction of
/// nothing if the query finishes in microseconds).
fn build_db(scale: Scale) -> Database {
    let fact_rows = if scale.is_smoke() {
        2000
    } else {
        scale.pick(6000, 40_000)
    };
    let db = Database::new();
    db.create_table(
        "d1",
        &[("id", DataType::Int), ("a", DataType::Int)],
        (0..24)
            .map(|i| vec![Value::Int(i), Value::Int(i % 12)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "d2",
        &[("id", DataType::Int)],
        (0..240).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "fact",
        &[("k1", DataType::Int), ("k2", DataType::Int)],
        (0..fact_rows)
            .map(|i| vec![Value::Int(i % 24), Value::Int((i * 7) % 240)])
            .collect(),
    )
    .unwrap();
    db
}

const SQL: &str = "SELECT d1.a, COUNT(*) c FROM fact f, d1, d2 \
                   WHERE f.k1 = d1.id AND f.k2 = d2.id AND d1.a < 7 \
                   GROUP BY d1.a ORDER BY d1.a";

/// Span capacity matching what the server attaches per statement.
const TRACE_SPANS: usize = 64;

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct Measurement {
    pairs: usize,
    plain_us: Vec<u64>,
    traced_us: Vec<u64>,
    /// Spans recorded by the last traced run (sanity: tracing was live).
    spans_recorded: usize,
}

impl Measurement {
    fn median_plain(&self) -> u64 {
        median(self.plain_us.clone())
    }

    fn median_traced(&self) -> u64 {
        median(self.traced_us.clone())
    }

    fn min_plain(&self) -> u64 {
        *self.plain_us.iter().min().unwrap()
    }

    fn min_traced(&self) -> u64 {
        *self.traced_us.iter().min().unwrap()
    }

    /// Min-over-min overhead, clamped at zero. The minimum is the robust
    /// statistic here: scheduler noise and the learner's per-run episode
    /// variance only ever *add* wall time, so each side's best case over
    /// N tries isolates the deterministic cost — medians of sub-millisecond
    /// adaptive runs swing several percent run-to-run and would flake the
    /// CI gate. Negative deltas (traced side got luckier) clamp to zero.
    fn overhead_pct(&self) -> f64 {
        let plain = self.min_plain().max(1) as f64;
        let traced = self.min_traced() as f64;
        ((traced - plain) / plain * 100.0).max(0.0)
    }
}

fn measure(scale: Scale) -> Measurement {
    let db = build_db(scale);
    let strategy = Strategy::SkinnerC(SkinnerCConfig::default()).build();
    // Enough pairs that one scheduler stall cannot move the median: at
    // ~700µs per run even the smoke count costs well under a second.
    let pairs = if scale.is_smoke() {
        41
    } else {
        scale.pick(41, 61)
    };
    // Warm both paths before measuring: first executions pay one-time
    // costs (allocator growth, catalog caches) that are not tracing.
    for _ in 0..3 {
        db.run_script_with(SQL, strategy.as_ref(), &db.exec_context())
            .unwrap();
        let ctx = db.exec_context().with_trace(Trace::new(TRACE_SPANS));
        db.run_script_with(SQL, strategy.as_ref(), &ctx).unwrap();
    }
    let mut plain_us = Vec::with_capacity(pairs);
    let mut traced_us = Vec::with_capacity(pairs);
    let mut spans_recorded = 0;
    let run_plain = |plain_us: &mut Vec<u64>| {
        let o = db
            .run_script_with(SQL, strategy.as_ref(), &db.exec_context())
            .unwrap();
        plain_us.push(o.wall.as_micros() as u64);
    };
    let run_traced = |traced_us: &mut Vec<u64>, spans_recorded: &mut usize| {
        let trace = Trace::new(TRACE_SPANS);
        let ctx = db.exec_context().with_trace(trace.clone());
        let o = db.run_script_with(SQL, strategy.as_ref(), &ctx).unwrap();
        traced_us.push(o.wall.as_micros() as u64);
        *spans_recorded = trace.spans().len();
    };
    // Alternate which side goes first within a pair so slow drift (CPU
    // frequency, cache state) cancels instead of biasing one variant.
    for i in 0..pairs {
        if i % 2 == 0 {
            run_plain(&mut plain_us);
            run_traced(&mut traced_us, &mut spans_recorded);
        } else {
            run_traced(&mut traced_us, &mut spans_recorded);
            run_plain(&mut plain_us);
        }
    }
    Measurement {
        pairs,
        plain_us,
        traced_us,
        spans_recorded,
    }
}

fn write_json(dir: &std::path::Path, m: &Measurement) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_telemetry_overhead.json");
    let out = format!(
        "{{\n  \"experiment\": \"telemetry_overhead\",\n  \"pairs\": {},\n  \
         \"min_plain_us\": {},\n  \"min_traced_us\": {},\n  \
         \"median_plain_us\": {},\n  \"median_traced_us\": {},\n  \
         \"overhead_pct\": {:.3},\n  \"spans_recorded\": {}\n}}\n",
        m.pairs,
        m.min_plain(),
        m.min_traced(),
        m.median_plain(),
        m.median_traced(),
        m.overhead_pct(),
        m.spans_recorded,
    );
    std::fs::write(&path, out)?;
    Ok(path)
}

pub fn run(scale: Scale) -> String {
    let m = measure(scale);
    assert!(
        m.spans_recorded >= 3,
        "tracing was not live: only {} spans recorded",
        m.spans_recorded
    );
    let mut out = String::from(
        "## Telemetry overhead — traced vs untraced execution\n\n\
         Interleaved A/B on the repeated-template star join: each iteration\n\
         runs the query once with a plain context and once with a span trace\n\
         attached (the server attaches one to every statement). Spans are\n\
         recorded at stage boundaries only, so the cost should vanish into\n\
         measurement noise.\n\n",
    );
    out.push_str(&markdown_table(
        &["variant", "best wall", "median wall", "iterations"],
        &[
            vec![
                "untraced".into(),
                format!("{}µs", m.min_plain()),
                format!("{}µs", m.median_plain()),
                m.pairs.to_string(),
            ],
            vec![
                "traced".into(),
                format!("{}µs", m.min_traced()),
                format!("{}µs", m.median_traced()),
                m.pairs.to_string(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\nOverhead (best-case vs best-case): **{:.2}%** (clamped at 0; spans \
         recorded per run: {}).\n",
        m.overhead_pct(),
        m.spans_recorded
    ));
    match write_json(std::path::Path::new("bench_reports"), &m) {
        Ok(path) => out.push_str(&format!("\nRaw numbers written to `{}`.\n", path.display())),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_telemetry_overhead.json: {e})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_runs_record_stage_spans() {
        let db = build_db(Scale::Smoke);
        let strategy = Strategy::SkinnerC(SkinnerCConfig::default()).build();
        let trace = Trace::new(TRACE_SPANS);
        let ctx = db.exec_context().with_trace(trace.clone());
        db.run_script_with(SQL, strategy.as_ref(), &ctx).unwrap();
        let spans = trace.spans();
        let stages: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.stage).collect();
        for want in ["parse_bind", "preprocess", "episodes", "postprocess"] {
            assert!(stages.contains(want), "missing {want}: {stages:?}");
        }
        assert!(spans.iter().all(|s| s.dur_ns > 0), "{spans:?}");
    }

    #[test]
    fn json_shape_is_valid() {
        let m = Measurement {
            pairs: 3,
            plain_us: vec![100, 110, 120],
            traced_us: vec![105, 115, 125],
            spans_recorded: 7,
        };
        assert_eq!(m.median_plain(), 110);
        assert_eq!(m.median_traced(), 115);
        assert_eq!(m.min_plain(), 100);
        assert_eq!(m.min_traced(), 105);
        assert!((m.overhead_pct() - 5.0).abs() < 0.01);
        let tmp =
            std::env::temp_dir().join(format!("skinner_telemetry_json_{}", std::process::id()));
        let path = write_json(&tmp, &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"overhead_pct\": 5.000"), "{text}");
        assert!(text.contains("\"min_plain_us\": 100"));
        assert!(text.contains("\"median_plain_us\": 110"));
    }

    #[test]
    fn zero_clamp_on_negative_overhead() {
        let m = Measurement {
            pairs: 1,
            plain_us: vec![200],
            traced_us: vec![150],
            spans_recorded: 5,
        };
        assert_eq!(m.overhead_pct(), 0.0);
    }
}
