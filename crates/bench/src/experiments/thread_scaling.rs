//! Thread scaling of `parallel_skinner`.
//!
//! Runs a JOB-like subset (the workload's larger joins) under the parallel
//! learned strategy at 1, 2, 4 and 8 worker threads and reports, per
//! configuration:
//!
//! * wall-clock time and the speedup over the 1-thread configuration;
//! * total work units;
//! * **post-processing time** on its own (grouping/ordering now runs
//!   through the partitioned `postprocess_parallel`, so its share of the
//!   wall clock is worth watching separately);
//! * **UCT-root contention**: the shards the learner spread root updates
//!   over (`1` = single-root tree, `>1` = sharded) and the CAS retries
//!   observed on the hot reward counters — measurable evidence of
//!   contention (or its absence) even when a single-core host makes
//!   wall-clock speedup unobservable.
//!
//! Besides the markdown report, the run writes the raw numbers to
//! `bench_reports/BENCH_thread_scaling.json` so contention counters are
//! machine-readable across runs.
//!
//! Two caveats the report states explicitly:
//!
//! * speedup is bounded by the machine — on a single-core container all
//!   configurations time-slice one CPU and the wall-clock ratio hovers
//!   around 1.0; the report prints the detected core count and, on one
//!   core, an explicit "speedup not measurable" marker rather than
//!   letting a silent ~1.0x read as a negative result;
//! * work units are *total* work: they grow slightly with thread count
//!   (per-chunk join restarts), so `work / wall` is the fairer throughput
//!   lens on multi-core hardware.

use std::time::Duration;

use skinnerdb::skinner_core::ParallelSkinnerConfig;
use skinnerdb::{Database, Strategy};

use crate::harness::{fmt_dur, human, markdown_table, Scale};

use super::{job_limit, job_workload};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn strategy(threads: usize, limit: u64, scale: Scale) -> Strategy {
    Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads,
        batch_tuples: scale.pick(512, 4096),
        work_limit: limit,
        ..Default::default()
    })
}

/// One configuration's measurement: best-of-`reps` wall time plus the
/// instrumentation of the representative (fastest) run.
struct Sample {
    wall: Duration,
    work: u64,
    timed_out: bool,
    /// Shards the learner spread root updates over (1 = single-root tree).
    shards: u64,
    /// CAS retries on the hot reward counters of the representative run.
    contention: u64,
    /// Post-processing wall time of the representative run.
    postprocess: Duration,
    /// Per-shard `(first_table, visits, cas_retries)` of the
    /// representative run — the full breakdown behind `contention`.
    shard_stats: Vec<(usize, u64, u64)>,
}

fn measure(db: &Database, script: &str, s: &Strategy, reps: usize) -> Sample {
    let mut best: Option<Sample> = None;
    let mut timed_out = false;
    for _ in 0..reps {
        let o = db.run_script(script, s).expect("bench query must run");
        timed_out |= o.timed_out;
        let counter = |name| o.metrics.counter(name).unwrap_or(0);
        if best.as_ref().is_none_or(|b| o.wall < b.wall) {
            best = Some(Sample {
                wall: o.wall,
                work: o.work_units,
                timed_out: false,
                shards: counter("uct_shards"),
                contention: counter("root_cas_contention"),
                postprocess: Duration::from_micros(counter("postprocess_us")),
                shard_stats: o.metrics.shard_stats.clone(),
            });
        }
    }
    let mut sample = best.expect("at least one rep");
    sample.timed_out = timed_out;
    sample
}

/// Raw per-cell record for the JSON artifact.
struct JsonCell {
    query: String,
    threads: usize,
    sample: Sample,
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(
    dir: &std::path::Path,
    cores: usize,
    reps: usize,
    cells: &[JsonCell],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_thread_scaling.json");
    // Headline numbers for the CI artifact: the best wall-clock speedup
    // over the matching 1-thread cell, and the total root-CAS contention
    // observed — the two figures the ROADMAP's multi-core measurement gap
    // asks for, machine-readable without parsing the per-cell runs.
    let mut max_speedup = 0f64;
    let mut speedup_at_4 = 0f64;
    for c in cells.iter().filter(|c| c.threads > 1) {
        let Some(base) = cells.iter().find(|b| b.threads == 1 && b.query == c.query) else {
            continue;
        };
        let s = base.sample.wall.as_secs_f64() / c.sample.wall.as_secs_f64().max(1e-9);
        max_speedup = max_speedup.max(s);
        if c.threads == 4 {
            speedup_at_4 = speedup_at_4.max(s);
        }
    }
    let contention: u64 = cells.iter().map(|c| c.sample.contention).sum();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"speedup_measurable\": {},\n", cores > 1));
    out.push_str(&format!("  \"max_speedup\": {max_speedup:.3},\n"));
    out.push_str(&format!("  \"speedup_at_4_threads\": {speedup_at_4:.3},\n"));
    out.push_str(&format!("  \"total_root_cas_contention\": {contention},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let shards: Vec<String> = c
            .sample
            .shard_stats
            .iter()
            .map(|&(t, v, cas)| {
                format!("{{\"first_table\": {t}, \"visits\": {v}, \"cas_retries\": {cas}}}")
            })
            .collect();
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"threads\": {}, \"wall_us\": {}, \"work_units\": {}, \
             \"timed_out\": {}, \"uct_shards\": {}, \"root_cas_contention\": {}, \
             \"postprocess_us\": {}, \"shards\": [{}]}}{}\n",
            json_escape(&c.query),
            c.threads,
            c.sample.wall.as_micros(),
            c.sample.work,
            c.sample.timed_out,
            c.sample.shards,
            c.sample.contention,
            c.sample.postprocess.as_micros(),
            shards.join(", "),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    let reps = if scale.is_smoke() {
        1
    } else {
        scale.pick(2, 3)
    };

    // The top joins by table count: enough per-episode work for the
    // partitioning to matter. Smoke keeps a single query — the CI job
    // wants one real multi-core measurement, not a survey.
    let take = if scale.is_smoke() {
        1
    } else {
        scale.pick(3, 6)
    };
    let mut queries = w.queries.clone();
    queries.sort_by_key(|q| std::cmp::Reverse(q.num_tables));
    let queries: Vec<_> = queries.into_iter().take(take).collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "## Thread scaling — parallel_skinner on a JOB-like subset\n\n\
         Machine: {cores} core(s) available.\n"
    );
    if cores == 1 {
        out.push_str(
            "\n**single-core host — speedup not measurable**: all thread\n\
             counts time-slice one CPU, so wall-clock ratios hover around\n\
             1.0 by construction. The contention and post-processing\n\
             columns below are still meaningful (they count events, not\n\
             time); re-run on a ≥4-core machine for wall-clock scaling.\n\n",
        );
    } else {
        out.push_str("Speedups are wall-clock vs the 1-thread configuration.\n\n");
    }

    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    for q in &queries {
        let mut cells = vec![format!("{} ({}T)", q.name, q.num_tables)];
        let mut base = None;
        for &t in &THREADS {
            let sample = measure(&db, &q.script, &strategy(t, limit, scale), reps);
            let base_wall = *base.get_or_insert(sample.wall);
            let speedup = base_wall.as_secs_f64() / sample.wall.as_secs_f64().max(1e-9);
            let flag = if sample.timed_out { "*" } else { "" };
            cells.push(format!(
                "{}{} ({:.2}x, {}u)",
                fmt_dur(sample.wall),
                flag,
                speedup,
                human(sample.work)
            ));
            cells.push(format!(
                "{} / {}sh/{}cas",
                fmt_dur(sample.postprocess),
                sample.shards,
                sample.contention
            ));
            json_cells.push(JsonCell {
                query: q.name.clone(),
                threads: t,
                sample,
            });
        }
        rows.push(cells);
    }
    out.push_str(&markdown_table(
        &[
            "query", "t=1", "pp/uct", "t=2", "pp/uct", "t=4", "pp/uct", "t=8", "pp/uct",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\n`*` = timed out at the work limit. Each `t=N` cell: best-of-{reps}\n\
         wall time (speedup vs t=1, total work units). Each `pp/uct` cell:\n\
         post-processing wall time of that run / UCT shards and root-CAS\n\
         retries (`1sh` = single-root tree at one thread, `Nsh` = sharded\n\
         tree; retries count contended reward updates).\n"
    ));
    match write_json(
        std::path::Path::new("bench_reports"),
        cores,
        reps,
        &json_cells,
    ) {
        Ok(path) => out.push_str(&format!(
            "\nRaw counters written to `{}`.\n",
            path.display()
        )),
        Err(e) => out.push_str(&format!(
            "\n(could not write BENCH_thread_scaling.json: {e})\n"
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_thread_counts() {
        // Smallest possible sanity run: one tiny query, one rep.
        let (w, db) = job_workload(Scale::Quick);
        let q = w
            .queries
            .iter()
            .min_by_key(|q| q.num_tables)
            .expect("non-empty workload");
        for &t in &THREADS {
            let sample = measure(
                &db,
                &q.script,
                &strategy(t, job_limit(Scale::Quick), Scale::Quick),
                1,
            );
            assert!(sample.wall > Duration::ZERO);
            assert!(sample.work > 0);
            let expected_shards = if t == 1 { 1 } else { q.num_tables as u64 };
            assert_eq!(sample.shards, expected_shards, "threads={t}");
        }
    }

    #[test]
    fn json_artifact_is_written() {
        let tmp = std::env::temp_dir().join(format!("skinner_bench_json_{}", std::process::id()));
        let cells = vec![JsonCell {
            query: "q1\"tricky\\name".into(),
            threads: 4,
            sample: Sample {
                wall: Duration::from_micros(1234),
                work: 99,
                timed_out: false,
                shards: 5,
                contention: 7,
                postprocess: Duration::from_micros(55),
                shard_stats: vec![(0, 10, 4), (2, 20, 3)],
            },
        }];
        let path = write_json(&tmp, 1, 2, &cells).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert!(text.contains("\"speedup_measurable\": false"));
        assert!(text.contains("\"root_cas_contention\": 7"));
        assert!(text.contains("\"uct_shards\": 5"));
        assert!(text.contains("\"postprocess_us\": 55"));
        assert!(text.contains("{\"first_table\": 2, \"visits\": 20, \"cas_retries\": 3}"));
        // Query names are escaped, keeping the artifact valid JSON.
        assert!(text.contains("q1\\\"tricky\\\\name"));
    }
}
