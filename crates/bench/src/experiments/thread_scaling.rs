//! Thread scaling of `parallel_skinner`.
//!
//! Runs a JOB-like subset (the workload's larger joins) under the parallel
//! learned strategy at 1, 2, 4 and 8 worker threads and reports wall-clock
//! time, work units and the speedup over the 1-thread configuration.
//!
//! Two caveats the table states explicitly:
//!
//! * speedup is bounded by the machine — on a single-core container all
//!   configurations time-slice one CPU and the wall-clock ratio hovers
//!   around 1.0 (the report prints the detected core count so readers can
//!   interpret the numbers);
//! * work units are *total* work: they grow slightly with thread count
//!   (per-chunk join restarts), so `work / wall` is the fairer throughput
//!   lens on multi-core hardware.

use std::time::Duration;

use skinnerdb::skinner_core::ParallelSkinnerConfig;
use skinnerdb::{Database, Strategy};

use crate::harness::{fmt_dur, markdown_table, Scale};

use super::{job_limit, job_workload};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn strategy(threads: usize, limit: u64, scale: Scale) -> Strategy {
    Strategy::ParallelSkinner(ParallelSkinnerConfig {
        threads,
        batch_tuples: scale.pick(512, 4096),
        work_limit: limit,
        ..Default::default()
    })
}

/// Best-of-`reps` wall time plus the work units of one representative run.
fn measure(db: &Database, script: &str, s: &Strategy, reps: usize) -> (Duration, u64, bool) {
    let mut best = Duration::MAX;
    let mut work = 0;
    let mut timed_out = false;
    for _ in 0..reps {
        let o = db.run_script(script, s).expect("bench query must run");
        if o.wall < best {
            best = o.wall;
            work = o.work_units;
        }
        timed_out |= o.timed_out;
    }
    (best, work, timed_out)
}

pub fn run(scale: Scale) -> String {
    let (w, db) = job_workload(scale);
    let limit = job_limit(scale);
    let reps = scale.pick(2, 3);

    // The top joins by table count: enough per-episode work for the
    // partitioning to matter.
    let mut queries = w.queries.clone();
    queries.sort_by_key(|q| std::cmp::Reverse(q.num_tables));
    let queries: Vec<_> = queries.into_iter().take(scale.pick(3, 6)).collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "## Thread scaling — parallel_skinner on a JOB-like subset\n\n\
         Machine: {cores} core(s) available. Speedups are wall-clock vs the\n\
         1-thread configuration; on a single core they cannot exceed ~1.0.\n\n"
    );

    let mut rows = Vec::new();
    for q in &queries {
        let mut cells = vec![format!("{} ({}T)", q.name, q.num_tables)];
        let mut base = None;
        for &t in &THREADS {
            let (wall, work, timed_out) = measure(&db, &q.script, &strategy(t, limit, scale), reps);
            let base_wall = *base.get_or_insert(wall);
            let speedup = base_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
            let flag = if timed_out { "*" } else { "" };
            cells.push(format!(
                "{}{} ({:.2}x, {}u)",
                fmt_dur(wall),
                flag,
                speedup,
                crate::harness::human(work)
            ));
        }
        rows.push(cells);
    }
    out.push_str(&markdown_table(
        &["query", "t=1", "t=2", "t=4", "t=8"],
        &rows,
    ));
    out.push_str("\n`*` = timed out at the work limit. Each cell: best-of-");
    out.push_str(&format!(
        "{reps} wall time (speedup vs t=1, total work units).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_thread_counts() {
        // Smallest possible sanity run: one tiny query, one rep.
        let (w, db) = job_workload(Scale::Quick);
        let q = w
            .queries
            .iter()
            .min_by_key(|q| q.num_tables)
            .expect("non-empty workload");
        for &t in &THREADS {
            let (wall, work, _) = measure(
                &db,
                &q.script,
                &strategy(t, job_limit(Scale::Quick), Scale::Quick),
                1,
            );
            assert!(wall > Duration::ZERO);
            assert!(work > 0);
        }
    }
}
