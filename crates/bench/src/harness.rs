//! Shared infrastructure: the system roster, runners and report formatting.

use std::time::Duration;

use skinnerdb::skinner_adaptive::{EddyConfig, ReoptimizerConfig};
use skinnerdb::skinner_core::{SkinnerCConfig, SkinnerGConfig, SkinnerHConfig};
use skinnerdb::skinner_exec::oracle::CardOracle;
use skinnerdb::skinner_exec::{preprocess, ExecProfile, TraditionalConfig, WorkBudget};
use skinnerdb::skinner_query::{JoinQuery, TableSet};
use skinnerdb::{Database, Strategy};

/// Benchmark scale, from the `BENCH_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-level CI guard runs: quick-scale data, minimum iterations
    /// (`BENCH_SCALE=smoke`; the `bench-smoke` CI job uses this).
    Smoke,
    /// Minutes-level runs on scaled-down data (default).
    Quick,
    /// Closer to the paper's data sizes and timeouts.
    Paper,
}

impl Scale {
    pub fn from_env() -> Self {
        match std::env::var("BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    pub fn pick<T>(&self, quick: T, paper: T) -> T {
        match self {
            Scale::Smoke | Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }

    /// True for the reduced-iteration CI guard scale: experiments shrink
    /// repetition counts and query subsets further than `Quick`.
    pub fn is_smoke(&self) -> bool {
        matches!(self, Scale::Smoke)
    }
}

/// The compared systems. The paper's engine mapping (DESIGN.md §2):
/// `RowDB` plays Postgres (row-at-a-time profile), `ColDB` plays MonetDB
/// (vectorized column profile), `Optimizer`/`Reoptimizer`/`Eddy` are the
/// re-implemented research baselines sharing our engine substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    SkinnerC,
    /// Skinner-C with parallel pre-processing (the paper's multi-threaded
    /// configuration — join execution itself stays single-threaded).
    SkinnerCPar,
    RowDB,
    ColDB,
    /// MonetDB-profile engine with parallel probes.
    ColDBPar,
    SkinnerGRow,
    SkinnerHRow,
    SkinnerGCol,
    SkinnerHCol,
    Eddy,
    Reoptimizer,
}

impl System {
    pub fn name(&self) -> &'static str {
        match self {
            System::SkinnerC => "Skinner-C",
            System::SkinnerCPar => "Skinner-C(par)",
            System::RowDB => "RowDB(PG)",
            System::ColDB => "ColDB(MDB)",
            System::ColDBPar => "ColDB(MDB,par)",
            System::SkinnerGRow => "S-G(Row)",
            System::SkinnerHRow => "S-H(Row)",
            System::SkinnerGCol => "S-G(Col)",
            System::SkinnerHCol => "S-H(Col)",
            System::Eddy => "Eddy",
            System::Reoptimizer => "Re-optimizer",
        }
    }
}

/// Normalized per-query measurement.
#[derive(Debug, Clone)]
pub struct SysOutcome {
    pub wall: Duration,
    pub work: u64,
    /// Accumulated intermediate-result cardinality where measurable
    /// (traditional engines count produced tuples; Skinner-C reports the
    /// C_out of its final join order via the exact oracle).
    pub card: Option<u64>,
    pub rows: usize,
    pub timed_out: bool,
}

/// Threads used for "multi-threaded" configurations.
pub fn bench_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// Run one single-statement query under `system` with a work-unit limit.
pub fn run_single(db: &Database, sql: &str, system: System, limit: u64) -> SysOutcome {
    let query = db.bind(sql).expect("bench query must bind");
    run_bound(db, &query, system, limit)
}

/// The [`Strategy`] a `System` maps to at a given work limit.
pub fn system_strategy(system: System, limit: u64) -> Strategy {
    let threads = bench_threads();
    match system {
        System::SkinnerC | System::SkinnerCPar => Strategy::SkinnerC(SkinnerCConfig {
            work_limit: limit,
            preprocess_threads: if system == System::SkinnerCPar {
                threads
            } else {
                1
            },
            ..Default::default()
        }),
        System::RowDB | System::ColDB | System::ColDBPar => {
            Strategy::Traditional(TraditionalConfig {
                profile: match system {
                    System::RowDB => ExecProfile::row_store(),
                    System::ColDB => ExecProfile::column_store(),
                    _ => ExecProfile::column_store_parallel(threads),
                },
                forced_order: None,
                work_limit: limit,
                preprocess_threads: if system == System::ColDBPar {
                    threads
                } else {
                    1
                },
                ..Default::default()
            })
        }
        System::SkinnerGRow | System::SkinnerGCol => Strategy::SkinnerG(SkinnerGConfig {
            engine_profile: if system == System::SkinnerGRow {
                ExecProfile::row_store()
            } else {
                ExecProfile::column_store()
            },
            work_limit: limit,
            ..Default::default()
        }),
        System::SkinnerHRow | System::SkinnerHCol => Strategy::SkinnerH(SkinnerHConfig {
            learner: SkinnerGConfig {
                engine_profile: if system == System::SkinnerHRow {
                    ExecProfile::row_store()
                } else {
                    ExecProfile::column_store()
                },
                work_limit: limit,
                ..Default::default()
            },
            ..Default::default()
        }),
        System::Eddy => Strategy::Eddy(EddyConfig {
            work_limit: limit,
            ..Default::default()
        }),
        System::Reoptimizer => Strategy::Reoptimizer(ReoptimizerConfig {
            work_limit: limit,
            ..Default::default()
        }),
    }
}

/// Run an already bound query under `system`. Every system goes through the
/// same `ExecutionStrategy` door; only the harness-level interpretation of
/// the metrics (`card` is meaningful for traditional engines) differs.
pub fn run_bound(db: &Database, query: &JoinQuery, system: System, limit: u64) -> SysOutcome {
    let strategy = system_strategy(system, limit).build();
    let o = strategy.execute(query, &db.exec_context());
    let card = match system {
        System::RowDB | System::ColDB | System::ColDBPar => Some(o.metrics.intermediate_tuples),
        _ => None,
    };
    SysOutcome {
        wall: o.wall,
        work: o.work_units,
        card,
        rows: o.result.num_rows(),
        timed_out: o.timed_out,
    }
}

/// Exact `C_out` of one join order over the query's filtered tables (used
/// to report "cardinality of executed plans" for Skinner-C, Tables 1–4).
pub fn cout_of_order(query: &JoinQuery, order: &[usize], cap: u64) -> Option<u64> {
    let budget = WorkBudget::unlimited();
    let pre = preprocess(query, &budget, 1).ok()?;
    let mut oracle = CardOracle::new(query, pre.tables, cap);
    let mut set = TableSet::EMPTY;
    let mut total = 0f64;
    for (k, &t) in order.iter().enumerate() {
        set.insert(t);
        if k >= 1 {
            let c = oracle.card(set);
            if c >= skinnerdb::skinner_exec::oracle::SATURATED_CARD {
                return None; // counting exceeded the cap
            }
            total += c;
        }
    }
    Some(total as u64)
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// `123456` → `"123.5k"` etc. (keeps tables readable).
pub fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Format a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Format an outcome's work figure, marking timeouts.
pub fn fmt_work(o: &SysOutcome) -> String {
    if o.timed_out {
        format!(">{}", human(o.work))
    } else {
        human(o.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinnerdb::{DataType, Value};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "x",
            &[("a", DataType::Int)],
            (0..20).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        db.create_table(
            "y",
            &[("a", DataType::Int)],
            (0..20).map(|i| vec![Value::Int(i % 10)]).collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn every_system_runs_and_agrees() {
        let db = db();
        let sql = "SELECT x.a FROM x, y WHERE x.a = y.a";
        let mut row_counts = std::collections::HashSet::new();
        for sys in [
            System::SkinnerC,
            System::SkinnerCPar,
            System::RowDB,
            System::ColDB,
            System::ColDBPar,
            System::SkinnerGRow,
            System::SkinnerHRow,
            System::SkinnerGCol,
            System::SkinnerHCol,
            System::Eddy,
            System::Reoptimizer,
        ] {
            let o = run_single(&db, sql, sys, u64::MAX);
            assert!(!o.timed_out, "{}", sys.name());
            row_counts.insert(o.rows);
        }
        assert_eq!(row_counts.len(), 1, "row counts diverge: {row_counts:?}");
    }

    #[test]
    fn cout_of_order_counts_prefixes() {
        let db = db();
        let q = db.bind("SELECT x.a FROM x, y WHERE x.a = y.a").unwrap();
        // Join result has 20 tuples (each y row matches one x row).
        assert_eq!(cout_of_order(&q, &[0, 1], u64::MAX), Some(20));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human(999), "999");
        assert_eq!(human(1_500), "1.5k");
        assert_eq!(human(2_500_000), "2.5M");
        assert!(markdown_table(&["a"], &[vec!["1".into()]]).contains("| 1 |"));
    }
}
