//! Benchmark harness reproducing **every table and figure** of the
//! SkinnerDB paper's evaluation (Section 6 + appendix).
//!
//! Each experiment lives in [`experiments`] with a matching `src/bin/`
//! wrapper; `cargo run --release -p skinner_bench --bin <name>` regenerates
//! one table/figure, `--bin run_all` regenerates everything into
//! `bench_reports/`.
//!
//! Two measurement axes are reported throughout:
//! * **wall-clock time** — honest end-to-end timing of this implementation;
//! * **work units** — deterministic counts of elementary operations (tuples
//!   scanned/produced, probes, predicate evaluations), identical accounting
//!   across engines. Work units are the hardware-independent counterpart of
//!   the paper's measurements (its cardinality columns and "#evaluations").
//!
//! `BENCH_SCALE=paper` switches from the quick default to larger data and
//! higher work limits (closer to the paper's scale; minutes → hours).

pub mod experiments;
pub mod harness;

pub use harness::{Scale, SysOutcome, System};
