//! skinner-sql — run SQL statements against a running skinner-server.
//!
//! ```text
//! skinner-sql --addr 127.0.0.1:7878 "SELECT COUNT(*) c FROM orders" ...
//! ```
//!
//! Each positional argument is executed in order over one connection (so
//! `SET` statements affect the statements after them). Results print in
//! the server's text rendering; `--quiet` suppresses rows and prints only
//! the per-statement summary line, which is what scripted callers (CI
//! warm-up loops, smoke checks) usually want. Exits non-zero on the first
//! connection or query error.

use std::time::Duration;

use skinner_client::Client;

fn usage() -> ! {
    eprintln!(
        "usage: skinner-sql [--addr HOST:PORT] [--repeat N] [--quiet] SQL [SQL...]\n\
         \x20   --addr HOST:PORT  server address (default 127.0.0.1:7878)\n\
         \x20   --repeat N        run the whole statement list N times (default 1)\n\
         \x20   --quiet           print summaries only, not result rows"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut repeat = 1usize;
    let mut quiet = false;
    let mut stmts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ => stmts.push(arg),
        }
    }
    if stmts.is_empty() {
        usage();
    }

    let mut client = match Client::connect_with_retry(&addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Text mode: the server renders result tables, so this binary needs no
    // formatting logic of its own.
    if let Err(e) = client.set("output", "text") {
        eprintln!("SET output = text failed: {e}");
        std::process::exit(1);
    }

    for round in 0..repeat {
        for sql in &stmts {
            match client.query(sql) {
                Ok(res) => {
                    if !quiet {
                        if let Some(text) = &res.text {
                            print!("{text}");
                        }
                    }
                    let s = &res.summary;
                    let rows: u64 = s.statements.iter().map(|st| st.rows).sum();
                    eprintln!(
                        "round {}: {} rows, {} work units, {} us [{}]",
                        round + 1,
                        rows,
                        s.work_units,
                        s.wall_micros,
                        sql
                    );
                }
                Err(e) => {
                    eprintln!("query failed [{sql}]: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
