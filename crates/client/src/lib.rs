//! # skinner_client — the in-repo client for `skinner_server`
//!
//! A small blocking client speaking the native length-prefixed protocol
//! (see `skinner_server`'s crate docs for the wire format). Used by the
//! integration tests, the throughput benchmark and `examples/`.
//!
//! The client negotiates protocol v2 and tags every request, which makes
//! pipelining a first-class operation: [`Client::send_query`] puts a
//! statement in flight and returns its tag immediately, [`Client::wait`]
//! collects a specific tag's result, and interleaved response streams
//! demultiplex by tag. The plain [`Client::query`] is just send + wait.
//!
//! ```no_run
//! use skinner_client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! client.set("strategy", "parallel_skinner").unwrap();
//! let result = client.query("SELECT n.x FROM nums n WHERE n.x < 3").unwrap();
//! assert_eq!(result.rows.len(), 3);
//!
//! // Pipelining: several statements in flight on one connection.
//! let a = client.send_query("SELECT n.x FROM nums n").unwrap();
//! let b = client.send_query("SELECT n.x FROM nums n WHERE n.x = 1").unwrap();
//! let rb = client.wait(b).unwrap(); // completion order is the client's choice
//! let ra = client.wait(a).unwrap();
//! assert!(ra.rows.len() >= rb.rows.len());
//!
//! // Out-of-band cancel: grab a handle, run the query elsewhere, cancel.
//! let handle = client.cancel_handle();
//! handle.cancel().unwrap();
//! ```

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use skinner_server::protocol::{
    ErrorCode, QuerySummary, Request, Response, WireError, PROTOCOL_VERSION,
};
pub use skinner_server::{ProfileSpan, QueryProfile, QueryResult, Value};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered with an error frame.
    Server {
        code: ErrorCode,
        message: String,
    },
    /// The server broke protocol (unexpected frame for the state).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Malformed(m) => ClientError::Protocol(m),
            WireError::Oversize(m) => ClientError::Protocol(m),
        }
    }
}

impl ClientError {
    /// The server-side error code, if this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// True for load-shed responses (admission control said no).
    pub fn is_overloaded(&self) -> bool {
        self.code() == Some(ErrorCode::Overloaded)
    }

    /// True when the query was cancelled via the out-of-band cancel path.
    pub fn is_cancelled(&self) -> bool {
        self.code() == Some(ErrorCode::Cancelled)
    }
}

/// A query's result as received over the wire.
#[derive(Debug)]
pub struct RemoteResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Set instead of columns/rows when the session is in text mode.
    pub text: Option<String>,
    /// Script totals + per-statement detail from the server.
    pub summary: QuerySummary,
}

impl RemoteResult {
    /// View as the library's [`QueryResult`] (e.g. for `canonical_rows`
    /// comparisons against in-process execution).
    pub fn into_query_result(self) -> QueryResult {
        QueryResult {
            columns: self.columns,
            rows: self.rows,
        }
    }
}

/// Credential for cancelling the associated connection's running queries
/// from another thread/connection. Cloneable and independent of the
/// [`Client`]'s borrow state by design: cancel happens *while* the client
/// is blocked in [`Client::query`] / [`Client::wait`].
#[derive(Debug, Clone)]
pub struct CancelHandle {
    addr: SocketAddr,
    conn_id: u64,
    cancel_key: u64,
}

impl CancelHandle {
    /// Open a one-shot connection and cancel the target's in-flight
    /// queries.
    pub fn cancel(&self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        Request::Cancel {
            conn_id: self.conn_id,
            key: self.cancel_key,
        }
        .write(&mut writer)?;
        let mut reader = stream;
        match Response::read(&mut reader)? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected cancel response {other:?}"
            ))),
        }
    }
}

/// Accumulator for one in-flight tag's response stream.
#[derive(Default)]
struct Partial {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    text: Option<String>,
}

/// A finished tag's reply, parked until the caller waits for it.
enum Reply {
    Result(RemoteResult),
    Prepared { id: u32, columns: Vec<String> },
    Profile(QueryProfile),
}

/// A connection to a `skinner-server`.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    conn_id: u64,
    cancel_key: u64,
    version: u32,
    max_inflight: u32,
    next_tag: u32,
    pending: HashMap<u32, Partial>,
    done: HashMap<u32, Result<Reply, ClientError>>,
}

impl Client {
    /// Connect and handshake under the default tenant.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_as(addr, "")
    }

    /// Connect and handshake, identifying as `tenant` for fair-share
    /// admission (empty = the default tenant class).
    pub fn connect_as(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            addr,
            conn_id: 0,
            cancel_key: 0,
            version: 0,
            max_inflight: 1,
            next_tag: 1,
            pending: HashMap::new(),
            done: HashMap::new(),
        };
        Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        }
        .write(&mut client.writer)?;
        match Response::read(&mut client.reader)? {
            Response::HelloOk {
                version,
                conn_id,
                cancel_key,
                max_inflight,
            } => {
                client.version = version;
                client.conn_id = conn_id;
                client.cancel_key = cancel_key;
                client.max_inflight = max_inflight.max(1);
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// Retry [`Client::connect`] until the server comes up or `patience`
    /// runs out — for tests and scripts racing a server start.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// The server-assigned connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// The negotiated protocol version.
    pub fn protocol_version(&self) -> u32 {
        self.version
    }

    /// The server's per-connection pipelining cap. Sending more than this
    /// many statements is safe — the server just stops reading until
    /// completions drain — but a self-limiting client keeps latency flat.
    pub fn max_inflight(&self) -> u32 {
        self.max_inflight
    }

    /// Statements sent but not yet collected with [`Client::wait`].
    pub fn inflight(&self) -> usize {
        self.pending.len() + self.done.len()
    }

    /// A credential for out-of-band cancellation of this connection.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            addr: self.addr,
            conn_id: self.conn_id,
            cancel_key: self.cancel_key,
        }
    }

    fn alloc_tag(&mut self) -> u32 {
        loop {
            let tag = self.next_tag;
            self.next_tag = self.next_tag.wrapping_add(1).max(1);
            if !self.pending.contains_key(&tag) && !self.done.contains_key(&tag) {
                return tag;
            }
        }
    }

    fn send_tagged(&mut self, req: Request) -> Result<u32, ClientError> {
        let tag = self.alloc_tag();
        Request::Tagged {
            tag,
            req: Box::new(req),
        }
        .write(&mut self.writer)?;
        self.pending.insert(tag, Partial::default());
        Ok(tag)
    }

    /// Pipeline a SQL script: send it and return its tag without waiting.
    pub fn send_query(&mut self, sql: &str) -> Result<u32, ClientError> {
        self.send_tagged(Request::Query {
            sql: sql.to_string(),
        })
    }

    /// Pipeline a prepared-statement execution.
    pub fn send_execute(&mut self, id: u32) -> Result<u32, ClientError> {
        self.send_tagged(Request::Execute { id })
    }

    /// Block until `tag`'s reply is complete and return it. Replies for
    /// other tags arriving meanwhile are parked, not lost.
    pub fn wait(&mut self, tag: u32) -> Result<RemoteResult, ClientError> {
        match self.wait_reply(tag)? {
            Reply::Result(r) => Ok(r),
            Reply::Prepared { .. } => Err(ClientError::Protocol(format!(
                "tag {tag}: expected a result stream, got PrepareOk"
            ))),
            Reply::Profile(_) => Err(ClientError::Protocol(format!(
                "tag {tag}: expected a result stream, got Profile"
            ))),
        }
    }

    fn wait_reply(&mut self, tag: u32) -> Result<Reply, ClientError> {
        loop {
            if let Some(reply) = self.done.remove(&tag) {
                return reply;
            }
            if !self.pending.contains_key(&tag) {
                return Err(ClientError::Protocol(format!("tag {tag} was never sent")));
            }
            let resp = Response::read(&mut self.reader)?;
            self.route(resp)?;
        }
    }

    /// File one incoming frame under its tag.
    fn route(&mut self, resp: Response) -> Result<(), ClientError> {
        let (tag, resp) = match resp {
            Response::Tagged { tag, resp } => (tag, *resp),
            other => {
                return Err(ClientError::Protocol(format!(
                    "untagged frame {other:?} outside handshake"
                )))
            }
        };
        let Some(partial) = self.pending.get_mut(&tag) else {
            return Err(ClientError::Protocol(format!(
                "frame for unknown tag {tag}"
            )));
        };
        let finished: Option<Result<Reply, ClientError>> = match resp {
            // SET and friends answered through Query: an empty result.
            Response::Ok => Some(Ok(Reply::Result(RemoteResult {
                columns: std::mem::take(&mut partial.columns),
                rows: std::mem::take(&mut partial.rows),
                text: partial.text.take(),
                summary: QuerySummary::default(),
            }))),
            Response::RowHeader { columns } => {
                partial.columns = columns;
                None
            }
            Response::RowBatch { mut rows } => {
                partial.rows.append(&mut rows);
                None
            }
            Response::Text { text } => {
                partial.text = Some(text);
                None
            }
            Response::Done { summary } => Some(Ok(Reply::Result(RemoteResult {
                columns: std::mem::take(&mut partial.columns),
                rows: std::mem::take(&mut partial.rows),
                text: partial.text.take(),
                summary,
            }))),
            Response::PrepareOk { id, columns } => Some(Ok(Reply::Prepared { id, columns })),
            Response::Profile(profile) => Some(Ok(Reply::Profile(profile))),
            Response::Error { code, message } => Some(Err(ClientError::Server { code, message })),
            other => Some(Err(ClientError::Protocol(format!(
                "unexpected result frame {other:?}"
            )))),
        };
        if let Some(reply) = finished {
            self.pending.remove(&tag);
            self.done.insert(tag, reply);
        }
        Ok(())
    }

    /// Run a SQL script (or a `SET`/`SHOW` command) and collect the reply.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult, ClientError> {
        let tag = self.send_query(sql)?;
        self.wait(tag)
    }

    /// Set a session option (`strategy`, `threads`, `work_limit`,
    /// `deadline_ms`, `output`).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ClientError> {
        let tag = self.send_tagged(Request::Set {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        self.wait(tag).map(|_| ())
    }

    /// Prepare a SELECT; returns the statement id and output columns.
    pub fn prepare(&mut self, sql: &str) -> Result<(u32, Vec<String>), ClientError> {
        let tag = self.send_tagged(Request::Prepare {
            sql: sql.to_string(),
        })?;
        match self.wait_reply(tag)? {
            Reply::Prepared { id, columns } => Ok((id, columns)),
            _ => Err(ClientError::Protocol(
                "expected PrepareOk, got a different reply".into(),
            )),
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, id: u32) -> Result<RemoteResult, ClientError> {
        let tag = self.send_execute(id)?;
        self.wait(tag)
    }

    /// Drop a prepared statement.
    pub fn close(&mut self, id: u32) -> Result<(), ClientError> {
        let tag = self.send_tagged(Request::Close { id })?;
        self.wait(tag).map(|_| ())
    }

    fn fetch_profile(&mut self, key: u64) -> Result<QueryProfile, ClientError> {
        let tag = self.send_tagged(Request::Profile { key })?;
        match self.wait_reply(tag)? {
            Reply::Profile(p) => Ok(p),
            _ => Err(ClientError::Protocol(
                "expected Profile, got a different reply".into(),
            )),
        }
    }

    /// Span-level execution profile of the statement that ran under
    /// `tag` (a tag previously returned by [`Client::send_query`] and
    /// already collected with [`Client::wait`]). The server keeps a
    /// bounded backlog of recent profiles per connection; asking for a
    /// tag that has aged out yields `ErrorCode::UnknownStatement`.
    pub fn profile_of(&mut self, tag: u32) -> Result<QueryProfile, ClientError> {
        self.fetch_profile(tag as u64)
    }

    /// Span-level execution profile of this connection's most recently
    /// completed statement — EXPLAIN ANALYZE after the fact.
    pub fn profile_last(&mut self) -> Result<QueryProfile, ClientError> {
        self.fetch_profile(u64::MAX)
    }

    /// Ask the server to shut down gracefully (drain + join + exit).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let tag = self.send_tagged(Request::Shutdown)?;
        self.wait(tag).map(|_| ())
    }
}
