//! # skinner_client — the in-repo client for `skinner_server`
//!
//! A small blocking client speaking the native length-prefixed protocol
//! (see `skinner_server`'s crate docs for the wire format). Used by the
//! integration tests, the throughput benchmark and `examples/`.
//!
//! ```no_run
//! use skinner_client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! client.set("strategy", "parallel_skinner").unwrap();
//! let result = client.query("SELECT n.x FROM nums n WHERE n.x < 3").unwrap();
//! assert_eq!(result.rows.len(), 3);
//!
//! // Out-of-band cancel: grab a handle, run the query elsewhere, cancel.
//! let handle = client.cancel_handle();
//! handle.cancel().unwrap();
//! ```

use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use skinner_server::protocol::{
    ErrorCode, QuerySummary, Request, Response, WireError, PROTOCOL_VERSION,
};
pub use skinner_server::{QueryResult, Value};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server answered with an error frame.
    Server {
        code: ErrorCode,
        message: String,
    },
    /// The server broke protocol (unexpected frame for the state).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Malformed(m) => ClientError::Protocol(m),
        }
    }
}

impl ClientError {
    /// The server-side error code, if this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// True for load-shed responses (admission control said no).
    pub fn is_overloaded(&self) -> bool {
        self.code() == Some(ErrorCode::Overloaded)
    }

    /// True when the query was cancelled via the out-of-band cancel path.
    pub fn is_cancelled(&self) -> bool {
        self.code() == Some(ErrorCode::Cancelled)
    }
}

/// A query's result as received over the wire.
#[derive(Debug)]
pub struct RemoteResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Set instead of columns/rows when the session is in text mode.
    pub text: Option<String>,
    /// Script totals + per-statement detail from the server.
    pub summary: QuerySummary,
}

impl RemoteResult {
    /// View as the library's [`QueryResult`] (e.g. for `canonical_rows`
    /// comparisons against in-process execution).
    pub fn into_query_result(self) -> QueryResult {
        QueryResult {
            columns: self.columns,
            rows: self.rows,
        }
    }
}

/// Credential for cancelling the associated connection's running query
/// from another thread/connection. Cloneable and independent of the
/// [`Client`]'s borrow state by design: cancel happens *while* the client
/// is blocked in [`Client::query`].
#[derive(Debug, Clone)]
pub struct CancelHandle {
    addr: SocketAddr,
    conn_id: u64,
    cancel_key: u64,
}

impl CancelHandle {
    /// Open a one-shot connection and cancel the target's running query.
    pub fn cancel(&self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        Request::Cancel {
            conn_id: self.conn_id,
            key: self.cancel_key,
        }
        .write(&mut writer)?;
        let mut reader = stream;
        match Response::read(&mut reader)? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected cancel response {other:?}"
            ))),
        }
    }
}

/// A connection to a `skinner-server`.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    conn_id: u64,
    cancel_key: u64,
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            addr,
            conn_id: 0,
            cancel_key: 0,
        };
        Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .write(&mut client.writer)?;
        match Response::read(&mut client.reader)? {
            Response::HelloOk {
                version: _,
                conn_id,
                cancel_key,
            } => {
                client.conn_id = conn_id;
                client.cancel_key = cancel_key;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// Retry [`Client::connect`] until the server comes up or `patience`
    /// runs out — for tests and scripts racing a server start.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// The server-assigned connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// A credential for out-of-band cancellation of this connection.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            addr: self.addr,
            conn_id: self.conn_id,
            cancel_key: self.cancel_key,
        }
    }

    /// Run a SQL script (or a `SET`/`SHOW` command) and collect the reply.
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult, ClientError> {
        Request::Query {
            sql: sql.to_string(),
        }
        .write(&mut self.writer)?;
        self.read_result()
    }

    /// Set a session option (`strategy`, `threads`, `work_limit`,
    /// `deadline_ms`, `output`).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ClientError> {
        Request::Set {
            key: key.to_string(),
            value: value.to_string(),
        }
        .write(&mut self.writer)?;
        self.expect_ok("set")
    }

    /// Prepare a SELECT; returns the statement id and output columns.
    pub fn prepare(&mut self, sql: &str) -> Result<(u32, Vec<String>), ClientError> {
        Request::Prepare {
            sql: sql.to_string(),
        }
        .write(&mut self.writer)?;
        match Response::read(&mut self.reader)? {
            Response::PrepareOk { id, columns } => Ok((id, columns)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected prepare response {other:?}"
            ))),
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, id: u32) -> Result<RemoteResult, ClientError> {
        Request::Execute { id }.write(&mut self.writer)?;
        self.read_result()
    }

    /// Drop a prepared statement.
    pub fn close(&mut self, id: u32) -> Result<(), ClientError> {
        Request::Close { id }.write(&mut self.writer)?;
        self.expect_ok("close")
    }

    /// Ask the server to shut down gracefully (drain + join + exit).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        Request::Shutdown.write(&mut self.writer)?;
        self.expect_ok("shutdown")
    }

    fn expect_ok(&mut self, what: &str) -> Result<(), ClientError> {
        match Response::read(&mut self.reader)? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected {what} response {other:?}"
            ))),
        }
    }

    fn read_result(&mut self) -> Result<RemoteResult, ClientError> {
        let mut columns: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut text: Option<String> = None;
        loop {
            match Response::read(&mut self.reader)? {
                // SET and friends answered through Query: an empty result.
                Response::Ok => {
                    return Ok(RemoteResult {
                        columns,
                        rows,
                        text,
                        summary: QuerySummary::default(),
                    })
                }
                Response::RowHeader { columns: c } => columns = c,
                Response::RowBatch { rows: mut batch } => rows.append(&mut batch),
                Response::Text { text: t } => text = Some(t),
                Response::Done { summary } => {
                    return Ok(RemoteResult {
                        columns,
                        rows,
                        text,
                        summary,
                    })
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected result frame {other:?}"
                    )))
                }
            }
        }
    }
}
