//! End-to-end loopback tests: a real `Server` on an ephemeral port, real
//! TCP clients, concurrency, admission control, cancellation, shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use skinner_client::Client;
use skinner_server::protocol::{ErrorCode, Request, Response, PROTOCOL_VERSION};
use skinner_server::{AdmissionConfig, Server, ServerConfig, TenantClass};
use skinnerdb::{DataType, Database, Value};

/// Shared fixture schema: a join pair (t, u), a mid-size table for slow
/// queries and a big one for torture queries.
fn fixture_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        &[("id", DataType::Int), ("g", DataType::Int)],
        (0..60)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "u",
        &[("tid", DataType::Int), ("w", DataType::Float)],
        (0..90)
            .map(|i| vec![Value::Int(i % 60), Value::Float(i as f64 / 2.0)])
            .collect(),
    )
    .unwrap();
    db.create_table(
        "mid",
        &[("x", DataType::Int)],
        (0..220).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db.create_table(
        "big",
        &[("x", DataType::Int)],
        (0..1500).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    db
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = Server::bind(fixture_db(), "127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn default_server() -> (Server, String) {
    start(ServerConfig::default())
}

/// Cross join big³ with non-equi predicates: ~3×10⁹ tuple combinations.
/// Minutes of work — only ever run to be cancelled or deadlined.
const TORTURE: &str = "SELECT COUNT(*) c FROM big a, big b, big c \
                       WHERE a.x <= b.x AND b.x <= c.x";

/// A query slow enough (~hundreds of ms) to hold an admission slot.
const SLOW: &str = "SELECT COUNT(*) c FROM mid a, mid b, mid c \
                    WHERE a.x <= b.x AND b.x <= c.x";

const QUERIES: [&str; 3] = [
    "SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g ORDER BY t.g",
    "SELECT t.id FROM t, u WHERE t.id = u.tid AND t.g = 1",
    "SELECT u.w FROM t, u WHERE t.id = u.tid AND t.g = 2 ORDER BY u.w",
];

#[test]
fn sixteen_concurrent_clients_match_in_process_execution() {
    let (mut server, addr) = default_server();
    let db = server.database().clone();
    // Ground truth computed in-process, per query.
    let expected: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| db.query_with(q, "reference").unwrap().canonical_rows())
        .collect();
    let expected = Arc::new(expected);
    let strategies = ["skinner-c", "traditional", "parallel_skinner", "skinner-g"];
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let addr = addr.clone();
            let expected = expected.clone();
            let strategy = strategies[i % strategies.len()];
            std::thread::spawn(move || {
                let mut client = Client::connect(&*addr).expect("connect");
                client.set("strategy", strategy).unwrap();
                for (q, want) in QUERIES.iter().zip(expected.iter()) {
                    let got = client.query(q).expect("query over the wire");
                    assert!(got.summary.wall_micros > 0);
                    assert_eq!(
                        &got.into_query_result().canonical_rows(),
                        want,
                        "client {i} ({strategy}) diverged on {q}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn per_statement_summaries_cross_the_wire() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    let script = "CREATE TEMP TABLE e2e_sums AS \
                  SELECT t.g grp, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g; \
                  SELECT s.grp, s.c FROM e2e_sums s ORDER BY s.grp; \
                  DROP TABLE e2e_sums;";
    let r = client.query(script).unwrap();
    assert_eq!(r.rows.len(), 5);
    assert_eq!(r.summary.statements.len(), 3, "one summary per statement");
    let stmts = &r.summary.statements;
    assert!(stmts[0].work_units > 0 && stmts[1].work_units > 0);
    assert_eq!(stmts[0].order.len(), 2, "learned join order reported");
    assert_eq!(stmts[2].work_units, 0, "DROP does no work");
    assert_eq!(
        r.summary.work_units,
        stmts.iter().map(|s| s.work_units).sum::<u64>()
    );
    server.shutdown();
}

#[test]
fn prepared_statements_roundtrip_over_the_wire() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    let (id, columns) = client
        .prepare("SELECT t.g, COUNT(*) c FROM t, u WHERE t.id = u.tid GROUP BY t.g")
        .unwrap();
    assert_eq!(columns, vec!["t.g".to_string(), "c".to_string()]);
    let first = client.execute(id).unwrap().into_query_result();
    let second = client.execute(id).unwrap().into_query_result();
    assert_eq!(first.canonical_rows(), second.canonical_rows());
    assert_eq!(first.num_rows(), 5);
    client.close(id).unwrap();
    let gone = client.execute(id);
    assert!(matches!(
        gone.unwrap_err().code(),
        Some(ErrorCode::UnknownStatement)
    ));
    // Bad SQL at prepare time is a clean error, not a dropped connection.
    assert!(client.prepare("SELECT nope.x FROM t").is_err());
    assert_eq!(
        client.query(QUERIES[1]).unwrap().summary.statements.len(),
        1
    );
    server.shutdown();
}

#[test]
fn set_show_and_text_mode() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    // SQL-style SET through Query, wire-style through Set.
    client.query("SET strategy = 'traditional'").unwrap();
    client.set("deadline_ms", "30000").unwrap();
    assert!(client.set("strategy", "bogus").is_err());
    assert!(client.query("SET bogus = 1").is_err());
    // SHOW STRATEGIES lists the registry.
    let strategies = client.query("SHOW STRATEGIES").unwrap();
    let names: Vec<String> = strategies
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    assert!(names.iter().any(|n| n == "parallel_skinner"));
    assert!(names.iter().any(|n| n == "Skinner-C"));
    // Text mode: one rendered table instead of row batches.
    client.set("output", "text").unwrap();
    let r = client.query(QUERIES[0]).unwrap();
    let text = r.text.expect("text-mode response");
    assert!(text.contains("t.g"), "header rendered: {text}");
    assert!(text.contains("(5 row(s))"), "footer rendered: {text}");
    assert!(r.rows.is_empty());
    client.set("output", "binary").unwrap();
    // Back in binary mode, rows flow again.
    assert_eq!(client.query(QUERIES[1]).unwrap().rows.len(), 18);
    // SHOW SERVER STATS: counters and per-strategy aggregates.
    let stats = client
        .query("SHOW SERVER STATS")
        .unwrap()
        .into_query_result();
    let metric = |name: &str| -> i64 {
        stats
            .rows
            .iter()
            .find(|r| r[0].as_str() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing"))[1]
            .as_i64()
            .unwrap()
    };
    assert!(metric("queries_total") >= 2);
    assert_eq!(metric("active_connections"), 1);
    assert!(metric("strategy.Traditional.queries") >= 1);
    server.shutdown();
}

#[test]
fn learning_cache_over_the_wire() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    let metric = |client: &mut Client, name: &str| -> i64 {
        let stats = client
            .query("SHOW SERVER STATS")
            .unwrap()
            .into_query_result();
        stats
            .rows
            .iter()
            .find(|r| r[0].as_str() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing"))[1]
            .as_i64()
            .unwrap()
    };
    assert_eq!(metric(&mut client, "learning_cache.enabled_default"), 0);
    // Off by default: repeated queries never touch the cache.
    let cold = client.query(QUERIES[0]).unwrap().into_query_result();
    assert_eq!(metric(&mut client, "learning_cache.published"), 0);
    // Opt in per connection; the same template then publishes and hits.
    client.set("learning_cache", "on").unwrap();
    let first = client.query(QUERIES[0]).unwrap().into_query_result();
    let second = client.query(QUERIES[0]).unwrap().into_query_result();
    assert_eq!(first.canonical_rows(), cold.canonical_rows());
    assert_eq!(second.canonical_rows(), cold.canonical_rows());
    assert!(metric(&mut client, "learning_cache.published") >= 2);
    assert!(metric(&mut client, "learning_cache.hits") >= 1);
    assert!(metric(&mut client, "learning_cache.entries") >= 1);
    // A second connection shares the warmed templates.
    let mut other = Client::connect(&addr).unwrap();
    other.set("learning_cache", "on").unwrap();
    let shared = other.query(QUERIES[0]).unwrap().into_query_result();
    assert_eq!(shared.canonical_rows(), cold.canonical_rows());
    assert!(metric(&mut client, "learning_cache.hits") >= 2);
    assert!(client.set("learning_cache", "sideways").is_err());
    server.shutdown();
}

#[test]
fn wire_cancel_aborts_a_torture_query_promptly() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    let handle = client.cancel_handle();
    // Cancelling an idle connection is harmless …
    handle.cancel().unwrap();
    // … and must not taint the next query.
    assert_eq!(client.query(QUERIES[1]).unwrap().rows.len(), 18);

    let started = Instant::now();
    let runner = std::thread::spawn(move || {
        let err = client.query(TORTURE).expect_err("torture must not finish");
        (err, client)
    });
    // Let the query get going, then cancel from outside.
    std::thread::sleep(Duration::from_millis(300));
    let cancelled_at = Instant::now();
    handle.cancel().expect("cancel is acknowledged");
    let (err, mut client) = runner.join().unwrap();
    let latency = cancelled_at.elapsed();
    assert!(
        err.is_cancelled(),
        "expected Cancelled, got {err} after {:?}",
        started.elapsed()
    );
    assert!(
        latency < Duration::from_secs(1),
        "cancel took {latency:?}, want < 1s"
    );
    // The connection survives and serves the next query.
    assert_eq!(client.query(QUERIES[1]).unwrap().rows.len(), 18);
    server.shutdown();
}

#[test]
fn cancel_while_queued_at_the_admission_gate_is_not_lost() {
    let (mut server, addr) = start(ServerConfig {
        admission: AdmissionConfig {
            max_concurrent: 1,
            queue_depth: 4,
            queue_timeout: Duration::from_secs(60),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    // Occupy the only slot with a torture query.
    let mut holder = Client::connect(&addr).unwrap();
    let holder_handle = holder.cancel_handle();
    let holder_thread = std::thread::spawn(move || {
        let _ = holder.query(TORTURE);
    });
    std::thread::sleep(Duration::from_millis(200));
    // A second query queues behind it; cancel it while it waits.
    let mut queued = Client::connect(&addr).unwrap();
    let queued_handle = queued.cancel_handle();
    let queued_thread = std::thread::spawn(move || queued.query(QUERIES[0]));
    std::thread::sleep(Duration::from_millis(200));
    queued_handle.cancel().expect("cancel acknowledged");
    // Free the slot so the queued query gets admitted — it must then
    // abort as cancelled instead of silently executing.
    holder_handle.cancel().unwrap();
    holder_thread.join().unwrap();
    let err = queued_thread
        .join()
        .unwrap()
        .expect_err("a cancelled queued query must not run");
    assert!(err.is_cancelled(), "got {err}");
    server.shutdown();
}

#[test]
fn deadline_timeouts_are_reported_as_timeout_not_cancel() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    client.set("deadline_ms", "100").unwrap();
    let err = client.query(TORTURE).expect_err("deadline must trip");
    assert_eq!(err.code(), Some(ErrorCode::Timeout), "got {err}");
    client.set("deadline_ms", "none").unwrap();
    client.set("work_limit", "50").unwrap();
    let err = client.query(QUERIES[0]).expect_err("work limit must trip");
    assert_eq!(err.code(), Some(ErrorCode::Timeout));
    server.shutdown();
}

#[test]
fn bad_cancel_credentials_are_rejected() {
    let (mut server, addr) = default_server();
    let client = Client::connect(&addr).unwrap();
    // Speak the protocol manually with a wrong key.
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    Request::Cancel {
        conn_id: client.conn_id(),
        key: 0xbad,
    }
    .write(&mut &stream)
    .unwrap();
    match Response::read(&mut &stream).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversubscribed_burst_sheds_explicitly_and_never_hangs() {
    let (mut server, addr) = start(ServerConfig {
        admission: AdmissionConfig {
            max_concurrent: 1,
            queue_depth: 1,
            queue_timeout: Duration::from_millis(200),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let clients = 6;
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&*addr).unwrap();
                match client.query(SLOW) {
                    Ok(r) => {
                        assert_eq!(r.rows.len(), 1, "a completed SLOW returns one row");
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            })
        })
        .collect();
    let mut completed = 0;
    let mut shed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(()) => completed += 1,
            Err(e) => {
                assert!(
                    e.is_overloaded(),
                    "overload must shed with Overloaded, got {e}"
                );
                shed += 1;
            }
        }
    }
    assert_eq!(completed + shed, clients);
    assert!(completed >= 1, "the slot holder must finish");
    assert!(shed >= 1, "an oversubscribed burst must shed");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "overload must resolve promptly, not hang"
    );
    // The shed counter is visible in SHOW SERVER STATS.
    let mut probe = Client::connect(&addr).unwrap();
    let stats = probe
        .query("SHOW SERVER STATS")
        .unwrap()
        .into_query_result();
    let shed_row = stats
        .rows
        .iter()
        .find(|r| r[0].as_str() == Some("shed_total"))
        .unwrap();
    assert!(shed_row[1].as_i64().unwrap() >= shed as i64);
    server.shutdown();
}

#[test]
fn connection_limit_is_enforced_with_an_explicit_error() {
    let (mut server, addr) = start(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let _a = Client::connect(&addr).unwrap();
    let _b = Client::connect(&addr).unwrap();
    // Give the acceptor a moment to account for both.
    std::thread::sleep(Duration::from_millis(100));
    let c = Client::connect(&addr);
    match c {
        Err(e) => assert_eq!(e.code(), Some(ErrorCode::TooManyConnections), "got {e}"),
        Ok(_) => panic!("third connection must be refused"),
    }
    server.shutdown();
}

#[test]
fn shutdown_joins_all_threads_and_refuses_new_work() {
    let (mut server, addr) = default_server();
    // One idle client and one mid-handshake client exist while we stop.
    let _idle = Client::connect(&addr).unwrap();
    let _idle2 = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    server.shutdown(); // must join acceptor + connection threads
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown must not hang on idle connections"
    );
    // Fresh connections are refused once the server is gone.
    assert!(Client::connect(&addr).is_err());
    // Idempotent.
    server.shutdown();
}

#[test]
fn wire_level_shutdown_drains_the_server() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.query(QUERIES[1]).unwrap().rows.len(), 18);
    client.shutdown_server().expect("shutdown acknowledged");
    let t0 = Instant::now();
    server.wait(); // returns once the wire request lands and all threads join
    assert!(t0.elapsed() < Duration::from_secs(10));
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn shutdown_cancels_running_queries_promptly() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    let runner = std::thread::spawn(move || {
        // Either a Cancelled/ShuttingDown error or a broken connection is
        // acceptable — what matters is that it returns promptly.
        let _ = client.query(TORTURE);
    });
    std::thread::sleep(Duration::from_millis(300));
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown must interrupt a torture query, took {:?}",
        t0.elapsed()
    );
    runner.join().unwrap();
}

#[test]
fn protocol_version_mismatch_is_refused() {
    let (mut server, addr) = default_server();
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    Request::Hello {
        version: PROTOCOL_VERSION + 999,
        tenant: String::new(),
    }
    .write(&mut &stream)
    .unwrap();
    match Response::read(&mut &stream).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected version refusal, got {other:?}"),
    }
    server.shutdown();
}

/// Pull one metric out of a `SHOW SERVER STATS` result.
fn stat(r: &skinner_client::RemoteResult, key: &str) -> i64 {
    r.rows
        .iter()
        .find(|row| row[0].as_str() == Some(key))
        .unwrap_or_else(|| panic!("metric {key} missing"))[1]
        .as_i64()
        .unwrap()
}

#[test]
fn pipelined_statements_interleave_and_complete_out_of_order() {
    let (mut server, addr) = default_server();
    let db = server.database().clone();
    let expected: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| db.query_with(q, "reference").unwrap().canonical_rows())
        .collect();
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
    assert!(client.max_inflight() > 1, "v2 must allow pipelining");
    // Put nine statements in flight at once, then collect them newest
    // first: responses for other tags must be parked, not lost, and each
    // tag's stream must demultiplex to the right query.
    let tags: Vec<(u32, usize)> = (0..9)
        .map(|i| (client.send_query(QUERIES[i % 3]).unwrap(), i % 3))
        .collect();
    assert_eq!(client.inflight(), 9);
    for (tag, qi) in tags.into_iter().rev() {
        let got = client.wait(tag).unwrap();
        assert_eq!(
            got.into_query_result().canonical_rows(),
            expected[qi],
            "tag {tag} returned the wrong query's rows"
        );
    }
    assert_eq!(client.inflight(), 0);
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_their_slots_released() {
    let (mut server, addr) = start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        max_connections: 1,
        ..ServerConfig::default()
    });
    let mut idle = Client::connect(&addr).unwrap();
    assert_eq!(idle.query(QUERIES[1]).unwrap().rows.len(), 18);
    // The sweep runs about once a second; wait past idle deadline + sweep.
    std::thread::sleep(Duration::from_millis(2500));
    // The only connection slot was held by the idle client; a newcomer
    // fitting means the reap released it.
    let mut second = Client::connect(&addr).expect("reaped slot must be reusable");
    let stats = second.query("SHOW SERVER STATS").unwrap();
    assert!(stat(&stats, "connections_reaped_idle") >= 1);
    assert!(
        idle.query(QUERIES[0]).is_err(),
        "reaped connection must be closed"
    );
    server.shutdown();
}

#[test]
fn tenant_classes_are_tracked_through_admission() {
    let (mut server, addr) = start(ServerConfig {
        admission: AdmissionConfig {
            tenants: vec![
                TenantClass {
                    name: "gold".into(),
                    weight: 3,
                },
                TenantClass {
                    name: "bronze".into(),
                    weight: 1,
                },
            ],
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut gold = Client::connect_as(&addr, "gold").unwrap();
    let mut bronze = Client::connect_as(&addr, "bronze").unwrap();
    assert_eq!(gold.query(QUERIES[1]).unwrap().rows.len(), 18);
    assert_eq!(bronze.query(QUERIES[1]).unwrap().rows.len(), 18);
    let stats = gold.query("SHOW SERVER STATS").unwrap();
    assert_eq!(stat(&stats, "tenant.gold.weight"), 3);
    assert_eq!(stat(&stats, "tenant.bronze.weight"), 1);
    assert!(stat(&stats, "tenant.gold.admitted") >= 1);
    assert!(stat(&stats, "tenant.bronze.admitted") >= 1);
    server.shutdown();
}

#[test]
fn clean_shutdown_wakes_the_waiter_within_10ms() {
    let (server, addr) = default_server();
    let waiter = std::thread::spawn(move || {
        let mut server = server;
        server.wait();
        let latency = server.shutdown_wake_latency().expect("latency recorded");
        server.shutdown();
        latency
    });
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
    // Let the waiter actually park on the condvar before firing.
    std::thread::sleep(Duration::from_millis(100));
    client.shutdown_server().unwrap();
    let latency = waiter.join().unwrap();
    assert!(
        latency < Duration::from_millis(10),
        "shutdown wake took {latency:?}, want < 10ms (condvar, not a poll loop)"
    );
}

#[test]
fn slow_query_threshold_counts_offenders() {
    // Threshold 0: every statement qualifies, so the structured log line
    // fires (to stderr) and the counter reflects it.
    let (mut server, addr) = start(ServerConfig {
        slow_query_ms: Some(0),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    client.query(QUERIES[0]).unwrap();
    client.query(QUERIES[1]).unwrap();
    let stats = client.query("SHOW SERVER STATS").unwrap();
    assert!(stat(&stats, "slow_queries_total") >= 2);
    server.shutdown();

    // A generous threshold stays quiet for fast queries.
    let (mut server, addr) = start(ServerConfig {
        slow_query_ms: Some(60_000),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    client.query(QUERIES[0]).unwrap();
    let stats = client.query("SHOW SERVER STATS").unwrap();
    assert_eq!(stat(&stats, "slow_queries_total"), 0);
    server.shutdown();
}

#[test]
fn query_profiles_expose_every_pipeline_stage() {
    let (mut server, addr) = default_server();
    let mut client = Client::connect(&addr).unwrap();
    client.set("strategy", "skinner-c").unwrap();
    // Asking before anything ran is a clean error, not a hang.
    let early = client.profile_last().expect_err("no profile yet");
    assert_eq!(early.code(), Some(ErrorCode::UnknownStatement));
    // A join heavy enough that every stage takes measurable time.
    let tag = client.send_query(SLOW).unwrap();
    let r = client.wait(tag).unwrap();
    assert_eq!(r.rows.len(), 1);
    let profile = client.profile_of(tag).expect("profile for the tag");
    assert!(profile.total_ns > 0);
    let stages = profile.stages();
    for want in [
        "admission_wait",
        "parse_bind",
        "preprocess",
        "episodes",
        "postprocess",
        "encode_flush",
    ] {
        assert!(stages.contains(&want), "stage {want} missing: {stages:?}");
        assert!(
            profile.stage_ns(want) > 0,
            "stage {want} has zero duration: {:?}",
            profile.spans
        );
    }
    assert!(stages.len() >= 5, "want >= 5 distinct stages: {stages:?}");
    // Episode spans carry the join order they explored.
    assert!(
        profile
            .spans
            .iter()
            .any(|s| s.stage == "episodes" && s.label.starts_with("order=")),
        "episode spans must attribute their join order: {:?}",
        profile.spans
    );
    // u64::MAX means "most recent" — same statement here.
    let last = client.profile_last().unwrap();
    assert_eq!(last.total_ns, profile.total_ns);
    // A second statement replaces "most recent" but the old tag still
    // resolves from the per-connection backlog.
    let tag2 = client.send_query(QUERIES[1]).unwrap();
    client.wait(tag2).unwrap();
    assert!(client.profile_of(tag).is_ok());
    let newest = client.profile_last().unwrap();
    assert!(newest.stage_ns("parse_bind") > 0);
    // Unknown tags are refused explicitly.
    let missing = client.profile_of(9999).expect_err("unknown tag");
    assert_eq!(missing.code(), Some(ErrorCode::UnknownStatement));
    server.shutdown();
}

#[test]
fn protocol_fuzz_under_pipelining_never_wedges_the_server() {
    let (mut server, addr) = default_server();
    // Hostile byte streams, each on its own connection: truncated length
    // prefix, truncated payload, absurd length, garbage message tag.
    let hostile: Vec<Vec<u8>> = vec![
        vec![0x03],
        vec![0x10, 0x00, 0x00, 0x00],
        {
            let mut b = vec![0xff, 0xff, 0xff, 0x7f];
            b.extend_from_slice(&[0u8; 64]);
            b
        },
        vec![0x08, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4],
        // A valid Hello followed by a frame that lies about its length.
        {
            let mut b = Vec::new();
            Request::Hello {
                version: PROTOCOL_VERSION,
                tenant: String::new(),
            }
            .write(&mut b)
            .unwrap();
            b.extend_from_slice(&[0xAA, 0x00, 0x00, 0x00, 0x05]);
            b
        },
    ];
    for bytes in hostile {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(&bytes).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // server must close, not hang
    }
    // Cancel racing an in-flight pipeline: a torture query and a quick
    // one share the connection; the out-of-band cancel kills whatever is
    // still running without corrupting tag demultiplexing.
    let mut c = Client::connect(&addr).unwrap();
    let handle = c.cancel_handle();
    let slow = c.send_query(TORTURE).unwrap();
    let quick = c.send_query(QUERIES[0]).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    handle.cancel().unwrap();
    let err = c.wait(slow).expect_err("torture query must be cancelled");
    assert!(err.is_cancelled(), "got {err}");
    match c.wait(quick) {
        Ok(r) => assert_eq!(r.rows.len(), 5),
        Err(e) => assert!(e.is_cancelled(), "got {e}"),
    }
    // The connection and the server both survive.
    assert_eq!(c.query(QUERIES[1]).unwrap().rows.len(), 18);
    let mut fresh = Client::connect(&addr).unwrap();
    assert_eq!(fresh.query(QUERIES[1]).unwrap().rows.len(), 18);
    server.shutdown();
}
