//! Integration suite against an *externally started* `skinner-server`
//! binary (CI's clean-shutdown job). Skipped unless `SKINNER_SERVER_ADDR`
//! is set; the server must have been started with `--demo`.
//!
//! ```sh
//! cargo run --release -p skinner_server --bin skinner-server -- \
//!     --addr 127.0.0.1:7979 --demo &
//! SKINNER_SERVER_ADDR=127.0.0.1:7979 cargo test -p skinner_client --test live_server
//! wait $!   # exits 0 only if the server joined all threads
//! ```

use std::time::{Duration, Instant};

use skinner_client::Client;

/// One test driving the whole session so ordering is deterministic: query
/// → SET strategy → prepared → cancel → stats → shutdown.
#[test]
fn live_server_suite() {
    let Ok(addr) = std::env::var("SKINNER_SERVER_ADDR") else {
        eprintln!("SKINNER_SERVER_ADDR not set; skipping live-server suite");
        return;
    };
    let mut client = Client::connect_with_retry(addr.as_str(), Duration::from_secs(15))
        .expect("server must come up within 15s");

    // Demo-schema query under two strategies; results must agree.
    let sql = "SELECT c.country, COUNT(*) n FROM customers c, orders o \
               WHERE c.id = o.customer_id GROUP BY c.country ORDER BY c.country";
    let learned = client.query(sql).expect("query").into_query_result();
    client.set("strategy", "traditional").unwrap();
    let traditional = client.query(sql).unwrap().into_query_result();
    assert_eq!(learned.canonical_rows(), traditional.canonical_rows());
    assert_eq!(learned.num_rows(), 3);
    client.set("strategy", "skinner-c").unwrap();

    // Prepared statements.
    let (id, _) = client
        .prepare("SELECT o.quantity FROM orders o, products p WHERE p.id = o.product_id")
        .unwrap();
    let a = client.execute(id).unwrap().into_query_result();
    let b = client.execute(id).unwrap().into_query_result();
    assert_eq!(a.canonical_rows(), b.canonical_rows());
    client.close(id).unwrap();

    // Wire-level cancel of a torture query on a second connection.
    let mut victim = Client::connect(addr.as_str()).unwrap();
    let handle = victim.cancel_handle();
    let torture = "SELECT COUNT(*) c FROM nums a, nums b, nums c \
                   WHERE a.x <= b.x AND b.x <= c.x";
    let runner = std::thread::spawn(move || victim.query(torture));
    std::thread::sleep(Duration::from_millis(400));
    let t0 = Instant::now();
    handle.cancel().expect("cancel acknowledged");
    let err = runner
        .join()
        .unwrap()
        .expect_err("torture must be cancelled");
    assert!(err.is_cancelled(), "got {err}");
    assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());

    // Pipelining: several tagged statements in flight on one connection,
    // collected out of order.
    let t1 = client.send_query(sql).unwrap();
    let t2 = client
        .send_query("SELECT p.label FROM products p ORDER BY p.label")
        .unwrap();
    let r2 = client.wait(t2).unwrap();
    let r1 = client.wait(t1).unwrap();
    assert_eq!(r2.rows.len(), 3);
    assert_eq!(
        r1.into_query_result().canonical_rows(),
        learned.canonical_rows()
    );

    // Connection-scale soak (CI sets SKINNER_LIVE_CONNS=1000 under a
    // raised ulimit): hold N idle connections open simultaneously, then
    // prove the server still answers queries through the crowd.
    if let Ok(n) = std::env::var("SKINNER_LIVE_CONNS") {
        let n: usize = n.parse().expect("SKINNER_LIVE_CONNS must be a number");
        let t0 = Instant::now();
        let mut herd = Vec::with_capacity(n);
        for i in 0..n {
            match Client::connect(addr.as_str()) {
                Ok(c) => herd.push(c),
                Err(e) => panic!("connection {i}/{n} refused: {e}"),
            }
        }
        eprintln!("opened {n} concurrent connections in {:?}", t0.elapsed());
        // A sample of the herd runs a real query while the rest idle.
        for c in herd.iter_mut().step_by((n / 16).max(1)) {
            assert_eq!(
                c.query("SELECT p.id FROM products p").unwrap().rows.len(),
                3
            );
        }
        drop(herd);
    }

    // Stats reflect the traffic.
    let stats = client
        .query("SHOW SERVER STATS")
        .unwrap()
        .into_query_result();
    let queries_total = stats
        .rows
        .iter()
        .find(|r| r[0].as_str() == Some("queries_total"))
        .expect("queries_total metric")[1]
        .as_i64()
        .unwrap();
    assert!(queries_total >= 4, "saw {queries_total}");

    // Graceful remote shutdown: the binary must now drain, join every
    // thread and exit 0 — the shell harness asserts the exit code.
    client.shutdown_server().expect("shutdown acknowledged");
}
