//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], `criterion_group!` / `criterion_main!` —
//! with a simple median-of-samples timing loop instead of criterion's
//! statistical machinery. When invoked by `cargo test` (which passes
//! `--test` to bench binaries), every benchmark body runs exactly once as
//! a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints (accepted, not differentiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    smoke_test: bool,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly; its return value is black-boxed so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            return;
        }
        let per_sample =
            (self.measurement_time / self.sample_size as u32).max(Duration::from_micros(200));
        for _ in 0..self.sample_size {
            let started = Instant::now();
            let mut iters = 0u64;
            while started.elapsed() < per_sample {
                black_box(routine());
                iters += 1;
            }
            self.samples.push(started.elapsed() / iters.max(1) as u32);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_test {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            self.samples.push(started.elapsed());
        }
    }
}

/// Top-level benchmark runner (API subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut samples = Vec::new();
        if !self.smoke_test {
            // Warm-up pass: identical loop, results discarded.
            let mut warmup = Vec::new();
            let mut b = Bencher {
                samples: &mut warmup,
                sample_size: 2,
                measurement_time: self.warm_up_time,
                smoke_test: false,
            };
            f(&mut b);
        }
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            smoke_test: self.smoke_test,
        };
        f(&mut b);
        if self.smoke_test {
            println!("{name}: ok (smoke test)");
        } else {
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            let (lo, hi) = (samples[0], samples[samples.len() - 1]);
            println!(
                "{name:<40} time: [{} {} {}]",
                fmt_ns(lo),
                fmt_ns(median),
                fmt_ns(hi)
            );
        }
        self
    }

    pub fn final_summary(&mut self) {}
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(4),
            smoke_test: false,
        };
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);

        let mut batched = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |x| batched += x, BatchSize::SmallInput)
        });
        assert!(batched > 0);
    }
}
