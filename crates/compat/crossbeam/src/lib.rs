//! Offline stand-in for `crossbeam`: only `crossbeam::thread::scope`,
//! implemented on `std::thread::scope` (Rust ≥ 1.63). The one behavioural
//! difference: a panicking child thread propagates its panic out of
//! `scope` directly instead of surfacing as `Err`, so the `Err` arm of the
//! returned `Result` is unreachable here — which is fine for callers that
//! `.expect()` it.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the `scope` closure (API subset of
    /// `crossbeam::thread::Scope`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope (crossbeam
        /// style) so nested spawns would work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
