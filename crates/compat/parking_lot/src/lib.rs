//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned lock — a panic while holding the guard —
//! propagates the panic, which matches parking_lot's behaviour closely
//! enough for this workspace (no code here recovers from lock poisoning).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
