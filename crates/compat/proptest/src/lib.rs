//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, boxed strategies, `prop_oneof!`, range and tuple
//! strategies, a miniature regex-pattern string strategy, sized
//! [`collection::vec`], `any::<T>()`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: generation is deterministic per test
//! case index (a fixed SplitMix64 seed schedule), and failing cases are
//! **not shrunk** — the panic message carries the failing values via the
//! assertion text instead.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-run configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Value` (subset of proptest's trait;
    /// no shrinking, so a strategy is just a sampling function).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Build recursive strategies: apply `recurse` up to `depth` times,
        /// mixing the leaf strategy back in at every level so generated
        /// structures vary in depth.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = OneOf::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    }

    /// `&str` patterns are miniature regexes: a sequence of character
    /// classes (`[a-z0-9_]`, `\PC` for printable, a literal otherwise),
    /// each with an optional `{m,n}` / `{n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed [ in pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' if chars.get(i + 1) == Some(&'P') || chars.get(i + 1) == Some(&'p') => {
                    // `\PC` / `\pC`: treat as "any printable character" —
                    // ASCII plus a few multi-byte ones to stress lexers.
                    i += 3;
                    let mut set: Vec<char> = (0x20u32..0x7F).filter_map(char::from_u32).collect();
                    set.extend(['é', 'ß', '→', '☃', '\u{00A0}']);
                    set
                }
                '\\' => {
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().unwrap(),
                        hi.trim().parse::<usize>().unwrap(),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// Strategy wrapper for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive-exclusive-agnostic size specification for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Bind one property argument: `name in strategy` draws from a strategy,
/// `name: Type` draws via [`arbitrary::Arbitrary`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let __seed = (__case as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    ^ 0x5EED_CAFE;
                let mut __rng = $crate::test_runner::TestRng::new(__seed);
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// The `proptest!` block: each contained `#[test] fn` runs `cases` times
/// with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(1);
        let s = (0usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n..=n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![Just(1i64), Just(2i64), 10i64..20];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        assert!(seen.iter().any(|&x| (10..20).contains(&x)));
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "\\PC{0,8}".generate(&mut rng);
            assert!(t.chars().count() <= 8);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = (0i64..10)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!((1..=3).contains(&max_depth), "depth {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_mixed_args(x in 0i64..100, flag: bool, v in crate::collection::vec(0u32..9, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5, "len {}", v.len());
            let _ = flag;
        }
    }
}
