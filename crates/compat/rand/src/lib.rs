//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a tiny deterministic implementation of exactly the API surface
//! the engines use: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen`, `gen_bool` and `gen_range` over integer and float
//! ranges. The generator is SplitMix64 — statistically fine for join-order
//! exploration and workload synthesis, deterministic across platforms.

use std::ops::Range;

/// Construction of seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its natural full range (`f64` in [0,1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.gen::<f64>()) < p
    }

    /// Uniform sample from a half-open range (panics if empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types `gen()` can produce (stand-in for the `Standard` distribution).
pub trait Standard {
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for i64 {
    fn sample(bits: u64) -> Self {
        bits as i64
    }
}

/// Types with uniform range sampling (stand-in for `rand`'s
/// `SampleUniform`). Blanket `SampleRange` impls over this trait mirror the
/// real crate's shape, so integer-literal inference behaves identically.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range on empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

/// Ranges `gen_range` accepts (stand-in for `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, no weak low bits.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
            let w = r.gen_range(2u64..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn unit_float_and_bool() {
        let mut r = StdRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..2000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (600..1400).contains(&trues),
            "gen_bool badly skewed: {trues}"
        );
    }
}
