//! Cross-query learning: a bounded, thread-safe cache of UCT tree priors
//! keyed by query template.
//!
//! SkinnerDB learns join orders from scratch for every query — fine per
//! the paper, wasteful under a serving workload where the same templates
//! recur constantly. The [`TreeCache`] closes the loop: when a learned
//! strategy finishes a query it publishes the tree's exported statistics
//! ([`TreePrior`]) under the query's template key
//! ([`skinner_query::template_key`]); the next query with the same
//! template warm-starts its tree from the decayed prior and converges to
//! the best join order in far fewer episodes.
//!
//! Design constraints, in order:
//!
//! * **correctness is untouchable** — the cache only ever biases *which
//!   orders get explored first*; every engine's offsets discipline makes
//!   results identical for any order sequence, so results are bit-identical
//!   with the cache on or off (the equivalence suite pins this);
//! * **staleness is detected, not assumed away** — entries record the
//!   [`uid`](skinner_storage::Table::uid) of every table in the template;
//!   a lookup whose uids mismatch (table dropped/recreated, temp-table
//!   churn) invalidates the entry instead of serving priors learned on
//!   different data — the same lesson the statistics cache learned in its
//!   `Arc`-pointer-keying bug;
//! * **bounded** — least-recently-used eviction above a fixed capacity, so
//!   a million distinct ad-hoc queries cannot grow the cache without
//!   bound;
//! * **thread-safe** — one mutex around the map (lookups copy an
//!   `Arc<TreePrior>` out; the critical section is a hash probe), with
//!   atomic hit/miss counters the server surfaces in `SHOW SERVER STATS`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use skinner_exec::ExecContext;
use skinner_query::{template_key, JoinQuery};
use skinner_uct::TreePrior;

/// Tuning knobs of a [`TreeCache`].
#[derive(Debug, Clone, Copy)]
pub struct TreeCacheConfig {
    /// Maximum number of cached templates (LRU-evicted beyond this).
    pub capacity: usize,
    /// Decay applied to cached statistics when seeding a new tree, in
    /// `[0, 1]`: `0.5` halves the prior's confidence per generation, so
    /// fresh rewards can overturn stale knowledge quickly; `0` carries
    /// nothing over (warm starts become inert).
    pub decay: f64,
    /// Maximum prior entries (tree nodes) exported per publication.
    pub max_entries: usize,
}

impl Default for TreeCacheConfig {
    fn default() -> Self {
        TreeCacheConfig {
            capacity: 256,
            decay: 0.5,
            max_entries: 128,
        }
    }
}

struct CacheEntry {
    /// `Table::uid`s of the template's tables, in FROM order. A mismatch
    /// at lookup means the template's name now binds different tables —
    /// the entry is stale and must die.
    uids: Vec<u64>,
    prior: Arc<TreePrior>,
    /// Recency stamp for LRU eviction (monotonic use counter).
    stamp: u64,
}

/// Monotonic counters of a [`TreeCache`], surfaced by
/// `SHOW SERVER STATS` (plus the current entry count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub published: u64,
    pub evictions: u64,
    pub entries: usize,
}

/// A bounded, thread-safe, LRU cache of cross-query UCT priors.
pub struct TreeCache {
    cfg: TreeCacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    published: AtomicU64,
    evictions: AtomicU64,
}

struct Inner {
    map: HashMap<String, CacheEntry>,
    clock: u64,
}

impl Default for TreeCache {
    fn default() -> Self {
        Self::new(TreeCacheConfig::default())
    }
}

impl TreeCache {
    pub fn new(cfg: TreeCacheConfig) -> Self {
        TreeCache {
            cfg: TreeCacheConfig {
                capacity: cfg.capacity.max(1),
                decay: cfg.decay.clamp(0.0, 1.0),
                max_entries: cfg.max_entries.max(1),
            },
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            published: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> TreeCacheConfig {
        self.cfg
    }

    /// Look up the prior for `key`, validating that the template still
    /// binds the same tables (`uids`). A uid mismatch removes the stale
    /// entry and counts as both an invalidation and a miss.
    pub fn lookup(&self, key: &str, uids: &[u64]) -> Option<Arc<TreePrior>> {
        let mut inner = self.inner.lock();
        // Advance the recency clock up front (publish does so
        // unconditionally too), so the hit path can stamp and clone in
        // the single map probe below.
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) if entry.uids == uids => {
                entry.stamp = clock;
                let prior = entry.prior.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(prior)
            }
            Some(_) => {
                inner.map.remove(key);
                drop(inner);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a finished tree's prior for `key`, replacing any previous
    /// entry (fresher statistics win) and LRU-evicting beyond capacity.
    pub fn publish(&self, key: String, uids: Vec<u64>, prior: TreePrior) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            CacheEntry {
                uids,
                prior: Arc::new(prior),
                stamp,
            },
        );
        while inner.map.len() > self.cfg.capacity {
            let coldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            inner.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry whose template involves table `uid` — eager
    /// invalidation when a table is dropped (lazy uid validation at lookup
    /// covers recreation under the same name either way).
    pub fn invalidate_table(&self, uid: u64) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner.map.retain(|_, e| !e.uids.contains(&uid));
        let removed = (before - inner.map.len()) as u64;
        drop(inner);
        if removed > 0 {
            self.invalidations.fetch_add(removed, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (hits/misses/invalidations/published/evictions and
    /// the live entry count).
    pub fn stats(&self) -> TreeCacheStats {
        TreeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// One query's view of the cache: the template key and table uids computed
/// once, shared by the lookup at query start and the publication at query
/// end. `probe` returns `None` when the context carries no cache (the
/// knob is off) — the engines then skip all cross-query work.
pub struct CacheProbe {
    cache: Arc<TreeCache>,
    key: String,
    uids: Vec<u64>,
}

impl CacheProbe {
    /// Probe the context for a learning cache and fingerprint `query`
    /// against it. Single-table queries are not worth caching (their only
    /// join order is trivial) and return `None`.
    pub fn probe(ctx: &ExecContext, query: &JoinQuery) -> Option<CacheProbe> {
        if query.num_tables() < 2 {
            return None;
        }
        let cache = ctx.learning_cache::<TreeCache>()?;
        Some(CacheProbe {
            key: template_key(query),
            uids: query.tables.iter().map(|t| t.uid()).collect(),
            cache,
        })
    }

    /// Look up this query's prior (uid-validated).
    pub fn lookup(&self) -> Option<Arc<TreePrior>> {
        self.cache.lookup(&self.key, &self.uids)
    }

    /// Publish this query's finished tree statistics.
    pub fn publish(&self, prior: TreePrior) {
        self.cache
            .publish(self.key.clone(), self.uids.clone(), prior);
    }

    /// Decay factor to apply when seeding from the cached prior.
    pub fn decay(&self) -> f64 {
        self.cache.config().decay
    }

    /// Cap on prior entries exported at publication.
    pub fn max_entries(&self) -> usize {
        self.cache.config().max_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_uct::PriorEntry;

    fn prior(visits: u64) -> TreePrior {
        TreePrior {
            num_tables: 2,
            entries: vec![PriorEntry {
                prefix: vec![],
                visits,
                reward_sum: visits as f64 * 0.5,
            }],
        }
    }

    #[test]
    fn hit_miss_and_counter_accounting() {
        let cache = TreeCache::default();
        assert!(cache.lookup("q1", &[1, 2]).is_none());
        cache.publish("q1".into(), vec![1, 2], prior(10));
        let got = cache.lookup("q1", &[1, 2]).expect("hit");
        assert_eq!(got.root_visits(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.published, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn uid_mismatch_invalidates_the_entry() {
        let cache = TreeCache::default();
        cache.publish("q1".into(), vec![1, 2], prior(10));
        // Table 2 was dropped and recreated: same name (same key),
        // different uid — the stale entry must die, not be served.
        assert!(cache.lookup("q1", &[1, 99]).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Gone entirely: even the original uids now miss.
        assert!(cache.lookup("q1", &[1, 2]).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_eviction_under_tiny_capacity() {
        let cache = TreeCache::new(TreeCacheConfig {
            capacity: 2,
            ..Default::default()
        });
        cache.publish("a".into(), vec![1], prior(1));
        cache.publish("b".into(), vec![2], prior(2));
        // Touch "a" so "b" is the LRU when "c" pushes one out.
        assert!(cache.lookup("a", &[1]).is_some());
        cache.publish("c".into(), vec![3], prior(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", &[1]).is_some(), "recently used survives");
        assert!(cache.lookup("c", &[3]).is_some(), "new entry present");
        assert!(cache.lookup("b", &[2]).is_none(), "LRU evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn republish_refreshes_the_prior() {
        let cache = TreeCache::default();
        cache.publish("q".into(), vec![7], prior(10));
        cache.publish("q".into(), vec![7], prior(20));
        assert_eq!(cache.lookup("q", &[7]).unwrap().root_visits(), 20);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eager_table_invalidation() {
        let cache = TreeCache::default();
        cache.publish("q1".into(), vec![1, 2], prior(1));
        cache.publish("q2".into(), vec![2, 3], prior(2));
        cache.publish("q3".into(), vec![4], prior(3));
        cache.invalidate_table(2);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("q3", &[4]).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn config_is_sanitized() {
        let cache = TreeCache::new(TreeCacheConfig {
            capacity: 0,
            decay: 7.0,
            max_entries: 0,
        });
        let cfg = cache.config();
        assert_eq!(cfg.capacity, 1);
        assert_eq!(cfg.decay, 1.0);
        assert_eq!(cfg.max_entries, 1);
    }

    #[test]
    fn concurrent_publish_and_lookup_stay_consistent() {
        let cache = Arc::new(TreeCache::new(TreeCacheConfig {
            capacity: 8,
            ..Default::default()
        }));
        let threads = 8;
        let per_thread = 200;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for n in 0..per_thread {
                        let key = format!("q{}", (i + n) % 12);
                        let uid = ((i + n) % 12) as u64;
                        if let Some(p) = cache.lookup(&key, &[uid]) {
                            assert_eq!(p.num_tables, 2);
                        }
                        cache.publish(key, vec![uid], prior(n as u64 + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(cache.len() <= 8, "capacity respected: {}", cache.len());
        assert_eq!(s.published, (threads * per_thread) as u64);
        assert_eq!(s.hits + s.misses, (threads * per_thread) as u64);
    }
}
