//! Drift detection for cached priors: per-template warm-start feedback,
//! strikes, quarantine and decay-based rehabilitation.
//!
//! A cached prior is only worth serving while it still *helps*: when the
//! data distribution under a template shifts (a literal band flips which
//! join order is selective, a nearest-neighbor transfer turns out to be
//! misleading), warm starts begin to cost episodes instead of saving them
//! — the engine has to unlearn the prior before it can lock onto the right
//! order. [`DriftState`] watches exactly that signal, per template:
//!
//! * every **cold** run (no prior served) refreshes the baseline
//!   `cold_ewma` of the template's convergence cost — the total episode
//!   count to completion, which prices both late lock-in *and* a sticky
//!   prior pinning a bad order — and decays accumulated strikes;
//!   rehabilitation is earned by evidence, not by time;
//! * every **warm** run is judged against the baseline of whichever entry
//!   *supplied* the prior (the template itself, or its generalization
//!   donor): costing more than `tolerance × baseline + slack` episodes is
//!   a regression and earns the supplier a strike;
//! * accumulating [`STRIKE_LIMIT`] strikes **quarantines** the supplier
//!   for [`QUARANTINE_RUNS`] runs: lookups refuse to serve it, the
//!   template executes cold (re-measuring the baseline on current-truth
//!   data), and each cold run counts the quarantine down until the entry
//!   may serve again.
//!
//! ```text
//!                 warm run regresses (strike += 1)
//!        ┌────────────────────────────────────────────┐
//!        │                                            ▼
//!   ┌─────────┐  strikes >= STRIKE_LIMIT   ┌───────────────────┐
//!   │ SERVING │ ─────────────────────────► │    QUARANTINED    │
//!   │         │                            │ (serves nothing;  │
//!   │         │ ◄───────────────────────── │  runs go cold)    │
//!   └─────────┘   QUARANTINE_RUNS cold     └───────────────────┘
//!        ▲         runs counted down
//!        │
//!        └── cold / non-regressing warm runs pay down strikes −½
//! ```
//!
//! The thresholds are deliberately lax: a healthy warm start converges
//! *much* cheaper than cold (the repeat-workload benchmark measures ~7×
//! earlier lock-in), so only a genuinely misleading prior — not
//! run-to-run noise — crosses `1.25 × baseline + 4`. The repeat-workload
//! drift variant pins both directions: a bimodal literal workload must
//! quarantine, a stable one must never.

/// EWMA blend factor for the cold/warm convergence-cost baselines.
pub(crate) const EWMA_ALPHA: f64 = 0.5;
/// A warm run regresses when its convergence cost exceeds
/// `REGRESSION_TOLERANCE × cold_baseline + REGRESSION_SLACK`.
pub(crate) const REGRESSION_TOLERANCE: f64 = 1.25;
pub(crate) const REGRESSION_SLACK: f64 = 4.0;
/// Strikes at which a supplier is quarantined.
pub(crate) const STRIKE_LIMIT: f64 = 2.0;
/// Strikes paid down per rehabilitating (cold or non-regressing warm)
/// run. Decay is *linear*, not multiplicative: halving strikes on every
/// good run has a fixed point exactly at [`STRIKE_LIMIT`] under a
/// strictly alternating regress/recover workload (1, ½, 1½, ¾, 1¾, … → 2
/// from below), so the canonical bimodal drift case would asymptote
/// forever without quarantining. Linear pay-down has no such fixed
/// point: regressing every other run nets +½ per pair and trips the
/// limit, while sporadic noise (one regression per three runs or fewer)
/// nets to zero.
pub(crate) const STRIKE_DECAY: f64 = 0.5;
/// Cold runs a quarantined template must complete before serving again.
pub(crate) const QUARANTINE_RUNS: u32 = 3;

/// Per-template drift-tracking state. Persisted alongside the prior so a
/// quarantine survives a restart (a misleading prior must not get a free
/// second chance by bouncing the process).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct DriftState {
    /// Baseline EWMA of the episode count, fed by cold runs and by
    /// non-regressing warm runs (so it tracks benign cost shifts, e.g. a
    /// literal that matches more rows) — the yardstick warm runs are
    /// judged against.
    pub cold_ewma: Option<f64>,
    /// EWMA over warm runs (diagnostics; not used for judgment).
    pub warm_ewma: Option<f64>,
    /// Accumulated regression strikes (decayed, not reset, so repeated
    /// borderline regressions still trip the limit).
    pub strikes: f64,
    /// Remaining cold runs before this entry may serve priors again;
    /// `> 0` means quarantined.
    pub quarantine_left: u32,
    /// Times this entry has ever been quarantined (monotonic).
    pub quarantines: u64,
}

fn blend(slot: &mut Option<f64>, x: f64) {
    *slot = Some(match *slot {
        Some(prev) => (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * x,
        None => x,
    });
}

impl DriftState {
    pub fn quarantined(&self) -> bool {
        self.quarantine_left > 0
    }

    /// Record a cold run of this template: refresh the baseline, decay
    /// strikes, and count down an active quarantine.
    pub fn note_cold(&mut self, cost: f64) {
        blend(&mut self.cold_ewma, cost);
        self.strikes = (self.strikes - STRIKE_DECAY).max(0.0);
        self.quarantine_left = self.quarantine_left.saturating_sub(1);
    }

    /// Record the convergence cost of a warm run that *this entry's* prior
    /// seeded (directly or as a generalization donor). Returns `true` if
    /// this judgment newly quarantined the entry.
    pub fn judge_warm(&mut self, cost: f64) -> bool {
        let Some(cold) = self.cold_ewma else {
            // No baseline yet — nothing sound to judge against.
            return false;
        };
        if cost > REGRESSION_TOLERANCE * cold + REGRESSION_SLACK {
            self.strikes += 1.0;
            if self.strikes >= STRIKE_LIMIT && !self.quarantined() {
                self.quarantine_left = QUARANTINE_RUNS;
                self.quarantines += 1;
                self.strikes = 0.0;
                return true;
            }
        } else {
            self.strikes = (self.strikes - STRIKE_DECAY).max(0.0);
            // A non-regressing warm run is current-truth evidence of what
            // this template costs: blend it into the baseline so benign
            // cost variation (a literal that matches more rows) tracks
            // instead of reading as regression once it drifts past the
            // tolerance band of a stale, one-literal baseline.
            blend(&mut self.cold_ewma, cost);
        }
        false
    }

    /// Record a warm run's cost on the entry that *received* it (for the
    /// diagnostic warm EWMA; judgment happens on the supplier).
    pub fn note_warm_observed(&mut self, cost: f64) {
        blend(&mut self.warm_ewma, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_warm_runs_never_quarantine() {
        let mut d = DriftState::default();
        d.note_cold(20.0);
        d.note_cold(24.0); // baseline EWMA ≈ 22
        for _ in 0..100 {
            assert!(!d.judge_warm(5.0), "fast lock-in is never a regression");
        }
        assert!(!d.quarantined());
        assert_eq!(d.quarantines, 0);
    }

    #[test]
    fn repeated_regressions_quarantine_then_cold_runs_rehabilitate() {
        let mut d = DriftState::default();
        d.note_cold(10.0);
        // 1.25 * 10 + 4 = 16.5: a 30-episode lock-in is a clear regression.
        assert!(!d.judge_warm(30.0), "first strike is not yet quarantine");
        assert!(!d.quarantined());
        assert!(d.judge_warm(30.0), "second strike trips the limit");
        assert!(d.quarantined());
        assert_eq!(d.quarantines, 1);
        // Rehabilitation: exactly QUARANTINE_RUNS cold runs.
        for i in 0..QUARANTINE_RUNS {
            assert!(d.quarantined(), "still quarantined before cold run {i}");
            d.note_cold(12.0);
        }
        assert!(!d.quarantined(), "served its time");
        // And it can be quarantined again if regressions resume.
        assert!(!d.judge_warm(40.0));
        assert!(d.judge_warm(40.0));
        assert_eq!(d.quarantines, 2);
    }

    #[test]
    fn good_runs_decay_strikes_so_sporadic_noise_never_accumulates() {
        // One regression per three runs nets to zero strikes: sporadic
        // noise never quarantines no matter how long it goes on.
        let mut d = DriftState::default();
        d.note_cold(10.0);
        for _ in 0..50 {
            assert!(!d.judge_warm(100.0), "one bad...");
            assert!(!d.judge_warm(3.0), "...two good runs...");
            assert!(!d.judge_warm(3.0), "...pay the strike back down");
        }
        assert_eq!(d.quarantines, 0);
    }

    #[test]
    fn regressing_every_other_run_is_drift_not_noise() {
        // The canonical bimodal case: each phase's warm start misleads
        // the next phase, so every other run regresses while the runs in
        // between merely break even. Strikes net +½ per pair and must
        // reach the limit instead of asymptoting below it.
        let mut d = DriftState::default();
        d.note_cold(28.0);
        let mut quarantined = false;
        for _ in 0..5 {
            quarantined |= d.judge_warm(63.0);
            quarantined |= d.judge_warm(26.0);
        }
        assert!(quarantined, "alternating regressions must quarantine");
        assert_eq!(d.quarantines, 1);
    }

    #[test]
    fn no_baseline_means_no_judgment() {
        let mut d = DriftState::default();
        assert!(!d.judge_warm(1_000_000.0));
        assert_eq!(d.strikes, 0.0);
    }

    #[test]
    fn cold_baseline_tracks_shifts() {
        let mut d = DriftState::default();
        d.note_cold(100.0);
        for _ in 0..10 {
            d.note_cold(10.0);
        }
        let cold = d.cold_ewma.unwrap();
        assert!(cold < 11.0, "EWMA converged to the new regime: {cold}");
    }
}
