//! Cross-query learning: a bounded, thread-safe, *durable* cache of UCT
//! tree priors keyed by query template.
//!
//! SkinnerDB learns join orders from scratch for every query — fine per
//! the paper, wasteful under a serving workload where the same templates
//! recur constantly. The [`TreeCache`] closes the loop: when a learned
//! strategy finishes a query it publishes the tree's exported statistics
//! ([`TreePrior`]) under the query's template key
//! ([`skinner_query::template_key`]); the next query with the same
//! template warm-starts its tree from the decayed prior and converges to
//! the best join order in far fewer episodes.
//!
//! Design constraints, in order:
//!
//! * **correctness is untouchable** — the cache only ever biases *which
//!   orders get explored first*; every engine's offsets discipline makes
//!   results identical for any order sequence, so results are bit-identical
//!   with the cache on or off (the equivalence suite pins this);
//! * **staleness is detected, not assumed away** — entries record each
//!   table's content [`fingerprint`](skinner_storage::Table::fingerprint)
//!   (schema + row count + column data, stable across processes); a lookup
//!   whose fingerprints mismatch invalidates the entry instead of serving
//!   priors learned on different data. Process-local
//!   [`uid`](skinner_storage::Table::uid)s are still recorded for *eager*
//!   purging through the catalog's drop observer, but identity — the thing
//!   that must survive a restart — is content-derived;
//! * **durable** — with a [`DiskStore`] attached, entries persist into the
//!   data directory as a checksummed sidecar written with the same
//!   tmp→fsync→rename discipline as segments ([`persist`]), loaded on
//!   `Database::open` and tombstoned on table drops;
//! * **drift-aware** — per-template feedback quarantines priors whose warm
//!   starts regress instead of helping, with decay-based rehabilitation
//!   ([`drift`]);
//! * **generalizing** — a never-seen template can warm-start from its
//!   nearest neighbor by join-graph shape (table names + fingerprints,
//!   predicate counts, `skinner_stats::card_bucket` cardinality buckets),
//!   guarded by the same quarantine feedback;
//! * **bounded** — least-recently-used eviction above a fixed capacity;
//! * **thread-safe** — one mutex around the map; flushes snapshot under
//!   the lock and write outside it.

pub(crate) mod drift;
pub mod persist;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use skinner_exec::ExecContext;
use skinner_query::{template_features, template_key, JoinQuery, TemplateFeatures};
use skinner_stats::card_bucket;
use skinner_storage::DiskStore;
use skinner_uct::TreePrior;

use drift::DriftState;
pub use persist::{PRIORS_SIDECAR, PRIORS_VERSION};

/// Tuning knobs of a [`TreeCache`].
#[derive(Debug, Clone, Copy)]
pub struct TreeCacheConfig {
    /// Maximum number of cached templates (LRU-evicted beyond this).
    pub capacity: usize,
    /// Decay applied to cached statistics when seeding a new tree, in
    /// `[0, 1]`: `0.5` halves the prior's confidence per generation, so
    /// fresh rewards can overturn stale knowledge quickly; `0` carries
    /// nothing over (warm starts become inert).
    pub decay: f64,
    /// Maximum prior entries (tree nodes) exported per publication.
    pub max_entries: usize,
    /// Publications between automatic flushes to the attached store
    /// (drops and shutdown always flush).
    pub flush_every: usize,
    /// Whether never-seen templates may warm-start from their
    /// nearest-neighbor template's prior.
    pub generalize: bool,
}

impl Default for TreeCacheConfig {
    fn default() -> Self {
        TreeCacheConfig {
            capacity: 256,
            decay: 0.5,
            max_entries: 128,
            flush_every: 8,
            generalize: true,
        }
    }
}

/// A template's cached state: the prior plus everything needed to decide
/// whether serving it is still sound.
pub(crate) struct CacheEntry {
    /// `Table::uid`s at last validated use, in FROM order — the handle the
    /// catalog's drop observer purges by. Empty for entries loaded from
    /// disk until their first validated lookup re-binds them.
    pub(crate) uids: Vec<u64>,
    /// Content fingerprints of the template's tables, in FROM order: the
    /// restart-stable identity that lookups validate against.
    pub(crate) fingerprints: Vec<u64>,
    /// Cardinality buckets of the tables at publish time.
    pub(crate) buckets: Vec<u8>,
    /// Structural join-graph features (for nearest-neighbor matching).
    pub(crate) features: TemplateFeatures,
    pub(crate) prior: Arc<TreePrior>,
    pub(crate) drift: DriftState,
    /// Recency stamp for LRU eviction (monotonic use counter).
    pub(crate) stamp: u64,
}

impl CacheEntry {
    fn clone_for_snapshot(&self) -> CacheEntry {
        CacheEntry {
            uids: self.uids.clone(),
            fingerprints: self.fingerprints.clone(),
            buckets: self.buckets.clone(),
            features: self.features.clone(),
            prior: self.prior.clone(),
            drift: self.drift.clone(),
            stamp: self.stamp,
        }
    }
}

/// A decoded on-disk entry (key + state), produced by [`persist`].
pub(crate) struct PersistedEntry {
    pub(crate) key: String,
    pub(crate) entry: CacheEntry,
}

/// Monotonic counters of a [`TreeCache`], surfaced by
/// `SHOW SERVER STATS` (plus the current entry counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub published: u64,
    pub evictions: u64,
    pub entries: usize,
    /// Entries currently quarantined (serving nothing).
    pub quarantined: usize,
    /// Quarantines ever entered (monotonic).
    pub quarantines: u64,
    /// Lookups served by a nearest-neighbor template rather than an exact
    /// key match.
    pub generalized_hits: u64,
    /// Entries loaded from the attached store at attach time.
    pub loaded: u64,
    /// Persisted payloads refused (corrupt, truncated, wrong version).
    pub load_rejected: u64,
    /// Successful flushes to the attached store.
    pub flushes: u64,
}

/// Everything a [`TreeCache`] needs to know about one query: the template
/// key plus the identity and shape evidence lookups validate against.
/// Computed once per query by [`CacheProbe::probe`].
#[derive(Debug, Clone)]
pub struct QuerySig {
    pub key: String,
    pub uids: Vec<u64>,
    pub fingerprints: Vec<u64>,
    pub buckets: Vec<u8>,
    pub features: TemplateFeatures,
}

impl QuerySig {
    /// Fingerprint a bound query. Forces each table's content fingerprint
    /// (cached per table incarnation, so the scan cost is paid once).
    pub fn of_query(query: &JoinQuery) -> QuerySig {
        QuerySig {
            key: template_key(query),
            uids: query.tables.iter().map(|t| t.uid()).collect(),
            fingerprints: query.tables.iter().map(|t| t.fingerprint()).collect(),
            buckets: query
                .tables
                .iter()
                .map(|t| card_bucket(t.num_rows() as u64))
                .collect(),
            features: template_features(query),
        }
    }
}

/// What a successful lookup hands the engine.
#[derive(Debug, Clone)]
pub struct WarmStart {
    pub prior: Arc<TreePrior>,
    /// `true` when the prior came from a nearest-neighbor template rather
    /// than an exact key match.
    pub generalized: bool,
    /// The supplying template's key when `generalized`.
    pub donor: Option<String>,
}

/// How the finished run was seeded, reported back at publish time so the
/// supplier of the prior can be judged (see [`drift`]).
#[derive(Debug, Clone)]
enum WarmSource {
    Exact,
    Generalized { donor: String },
}

/// Maximum feature distance at which a nearest-neighbor prior transfers.
const GENERALIZE_MAX_DISTANCE: u32 = 8;

/// A bounded, thread-safe, LRU, optionally-durable cache of cross-query
/// UCT priors.
pub struct TreeCache {
    cfg: TreeCacheConfig,
    inner: Mutex<Inner>,
    store: RwLock<Option<Arc<DiskStore>>>,
    /// Serializes flush writers; snapshotting happens under `inner`.
    flush_lock: Mutex<()>,
    dirty: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    published: AtomicU64,
    evictions: AtomicU64,
    quarantines: AtomicU64,
    generalized_hits: AtomicU64,
    loaded: AtomicU64,
    load_rejected: AtomicU64,
    flushes: AtomicU64,
}

struct Inner {
    map: HashMap<String, CacheEntry>,
    clock: u64,
}

impl Default for TreeCache {
    fn default() -> Self {
        Self::new(TreeCacheConfig::default())
    }
}

impl TreeCache {
    pub fn new(cfg: TreeCacheConfig) -> Self {
        TreeCache {
            cfg: TreeCacheConfig {
                capacity: cfg.capacity.max(1),
                decay: cfg.decay.clamp(0.0, 1.0),
                max_entries: cfg.max_entries.max(1),
                flush_every: cfg.flush_every.max(1),
                generalize: cfg.generalize,
            },
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            store: RwLock::new(None),
            flush_lock: Mutex::new(()),
            dirty: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            published: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            generalized_hits: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            load_rejected: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> TreeCacheConfig {
        self.cfg
    }

    /// Look up a prior for `sig`. Resolution order:
    ///
    /// 1. **Exact**: an entry under `sig.key` whose table fingerprints
    ///    match. A fingerprint mismatch (table re-created with different
    ///    content) removes the stale entry — counted as an invalidation —
    ///    and falls through to generalization. A quarantined entry serves
    ///    nothing (the run goes cold, counting its quarantine down at
    ///    publish time).
    /// 2. **Generalized**: the nearest non-quarantined template by
    ///    join-graph feature distance, if close enough.
    pub fn lookup(&self, sig: &QuerySig) -> Option<WarmStart> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&sig.key) {
            Some(entry) if entry.fingerprints == sig.fingerprints => {
                // Keep quarantined entries warm in LRU terms: they are
                // serving their rehabilitation, not unused.
                entry.stamp = clock;
                if entry.drift.quarantined() {
                    drop(inner);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                entry.uids = sig.uids.clone();
                let prior = entry.prior.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(WarmStart {
                    prior,
                    generalized: false,
                    donor: None,
                });
            }
            Some(_) => {
                inner.map.remove(&sig.key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.dirty.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        if self.cfg.generalize {
            if let Some((donor_key, dist)) = self.nearest_donor(&inner, sig) {
                let entry = inner.map.get_mut(&donor_key).expect("donor just found");
                entry.stamp = clock;
                let prior = entry.prior.clone();
                drop(inner);
                let _ = dist;
                self.generalized_hits.fetch_add(1, Ordering::Relaxed);
                return Some(WarmStart {
                    prior,
                    generalized: true,
                    donor: Some(donor_key),
                });
            }
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// The closest serving template by join-graph feature distance, if any
    /// is within [`GENERALIZE_MAX_DISTANCE`].
    fn nearest_donor(&self, inner: &Inner, sig: &QuerySig) -> Option<(String, u32)> {
        let mut best: Option<(&String, u32, u64)> = None;
        for (key, e) in &inner.map {
            if *key == sig.key
                || e.drift.quarantined()
                || e.prior.num_tables != sig.features.tables.len()
                || e.features.tables.len() != sig.features.tables.len()
            {
                continue;
            }
            let d = feature_distance(sig, e);
            if d > GENERALIZE_MAX_DISTANCE {
                continue;
            }
            let better = match best {
                None => true,
                // Prefer closer, then fresher.
                Some((_, bd, bs)) => d < bd || (d == bd && e.stamp > bs),
            };
            if better {
                best = Some((key, d, e.stamp));
            }
        }
        best.map(|(k, d, _)| (k.clone(), d))
    }

    /// Publish a finished run: replace (or create) the entry's prior with
    /// fresher statistics and feed the run's lock-in point back into drift
    /// tracking — judging whichever entry supplied the warm start.
    pub fn publish(&self, sig: &QuerySig, prior: TreePrior, feedback: RunFeedback) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let cost = feedback.cost as f64;

        // Judge the donor first (separate borrow from the entry below).
        if let Some(WarmSource::Generalized { donor }) = &feedback.warm {
            if let Some(donor_entry) = inner.map.get_mut(donor) {
                if donor_entry.drift.judge_warm(cost) {
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                    self.dirty.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Inherit the donor's cold baseline for a borrower's first entry:
        // its own first run was warm, so it has no cold measurement yet,
        // but without *some* baseline its future warm runs are unjudgeable.
        let inherited = match (&feedback.warm, inner.map.contains_key(&sig.key)) {
            (Some(WarmSource::Generalized { donor }), false) => {
                inner.map.get(donor).and_then(|d| d.drift.cold_ewma)
            }
            _ => None,
        };

        let entry = inner
            .map
            .entry(sig.key.clone())
            .or_insert_with(|| CacheEntry {
                uids: Vec::new(),
                fingerprints: Vec::new(),
                buckets: Vec::new(),
                features: sig.features.clone(),
                prior: Arc::new(TreePrior::default()),
                drift: DriftState {
                    cold_ewma: inherited,
                    ..DriftState::default()
                },
                stamp,
            });
        entry.uids = sig.uids.clone();
        entry.fingerprints = sig.fingerprints.clone();
        entry.buckets = sig.buckets.clone();
        entry.features = sig.features.clone();
        entry.prior = Arc::new(prior);
        entry.stamp = stamp;
        match &feedback.warm {
            None => entry.drift.note_cold(cost),
            Some(source) => {
                entry.drift.note_warm_observed(cost);
                if matches!(source, WarmSource::Exact) && entry.drift.judge_warm(cost) {
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        while inner.map.len() > self.cfg.capacity {
            let coldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            inner.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.published.fetch_add(1, Ordering::Relaxed);
        if self.dirty.fetch_add(1, Ordering::Relaxed) + 1 >= self.cfg.flush_every {
            self.flush();
        }
    }

    /// Drop every entry whose template involves table `uid` *or* mentions
    /// the (lowercased) table `name` — the catalog's drop observer calls
    /// this so a dropped/replaced table eagerly purges both live entries
    /// (by uid) and restart-loaded ones that predate this process (by
    /// name). When a store is attached the purge flushes immediately: the
    /// on-disk prior is tombstoned, so a recreate-with-the-same-name can
    /// never warm-start from the old table's data — even across a restart.
    pub fn invalidate_table(&self, uid: u64, name: &str) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner
            .map
            .retain(|_, e| !e.uids.contains(&uid) && !e.features.tables.iter().any(|t| t == name));
        let removed = (before - inner.map.len()) as u64;
        drop(inner);
        if removed > 0 {
            self.invalidations.fetch_add(removed, Ordering::Relaxed);
            self.dirty.fetch_add(removed as usize, Ordering::Relaxed);
            self.flush();
        }
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Attach a persistent store and load any priors it holds. Returns the
    /// number of entries loaded; a corrupt, truncated or future-versioned
    /// payload is *refused* (counted in `load_rejected`) and the cache
    /// starts empty — a prior file is an accelerator, never worth failing
    /// an open over.
    pub fn attach_store(&self, store: Arc<DiskStore>) -> usize {
        let decoded = match store.read_sidecar(PRIORS_SIDECAR, PRIORS_VERSION) {
            Ok(Some(payload)) => match persist::decode_entries(&payload) {
                Ok(entries) => entries,
                Err(_) => {
                    self.load_rejected.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                }
            },
            Ok(None) => Vec::new(),
            Err(_) => {
                self.load_rejected.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        let mut inner = self.inner.lock();
        let mut n = 0usize;
        for p in decoded {
            if inner.map.len() >= self.cfg.capacity {
                break;
            }
            // In-memory entries win: they are at least as fresh.
            if inner.map.contains_key(&p.key) {
                continue;
            }
            inner.clock += 1;
            let mut entry = p.entry;
            entry.stamp = inner.clock;
            inner.map.insert(p.key, entry);
            n += 1;
        }
        drop(inner);
        self.loaded.fetch_add(n as u64, Ordering::Relaxed);
        *self.store.write() = Some(store);
        n
    }

    /// Write the current entries to the attached store (no-op without
    /// one). Returns whether a write happened. Crash-safe: the sidecar
    /// write is tmp→fsync→rename, so a crash mid-flush leaves the
    /// previous priors file intact.
    pub fn flush(&self) -> bool {
        let Some(store) = self.store.read().clone() else {
            return false;
        };
        let _guard = self.flush_lock.lock();
        self.dirty.store(0, Ordering::Relaxed);
        let snapshot: Vec<(String, CacheEntry)> = {
            let inner = self.inner.lock();
            let mut v: Vec<(String, CacheEntry)> = inner
                .map
                .iter()
                .map(|(k, e)| (k.clone(), e.clone_for_snapshot()))
                .collect();
            // Oldest first, so reload assigns them the same relative
            // recency and LRU keeps behaving across a restart.
            v.sort_by_key(|(_, e)| e.stamp);
            v
        };
        let payload = persist::encode_entries(&snapshot);
        match store.write_sidecar(PRIORS_SIDECAR, PRIORS_VERSION, &payload) {
            Ok(()) => {
                self.flushes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether a persistent store is attached.
    pub fn is_durable(&self) -> bool {
        self.store.read().is_some()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries currently quarantined.
    pub fn quarantined_len(&self) -> usize {
        self.inner
            .lock()
            .map
            .values()
            .filter(|e| e.drift.quarantined())
            .count()
    }

    /// Counter snapshot (see [`TreeCacheStats`]).
    pub fn stats(&self) -> TreeCacheStats {
        let (entries, quarantined) = {
            let inner = self.inner.lock();
            (
                inner.map.len(),
                inner.map.values().filter(|e| e.drift.quarantined()).count(),
            )
        };
        TreeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            quarantined,
            quarantines: self.quarantines.load(Ordering::Relaxed),
            generalized_hits: self.generalized_hits.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            load_rejected: self.load_rejected.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

/// Join-graph feature distance between a query signature and a cached
/// entry. Positional: name/fingerprint agreement per FROM slot, then
/// cardinality-bucket and predicate-shape deltas, then output-shape flags.
fn feature_distance(sig: &QuerySig, e: &CacheEntry) -> u32 {
    let mut d = 0u32;
    for i in 0..sig.features.tables.len() {
        let name_eq = sig.features.tables[i] == e.features.tables[i];
        let fp_eq = sig.fingerprints.get(i) == e.fingerprints.get(i);
        if !name_eq {
            // Table identity dominates: a template over different tables
            // is a poor donor even when every shape feature agrees.
            d += 5;
        } else if !fp_eq {
            // Same name, different content: its knowledge is about data
            // that no longer exists — nearly as foreign as another table.
            d += 2;
        }
        let (a, b) = (
            *sig.buckets.get(i).unwrap_or(&0) as i32,
            *e.buckets.get(i).unwrap_or(&0) as i32,
        );
        d += (a - b).unsigned_abs().min(4);
        let (ua, ub) = (
            *sig.features.unary_counts.get(i).unwrap_or(&0) as i32,
            *e.features.unary_counts.get(i).unwrap_or(&0) as i32,
        );
        d += (ua - ub).unsigned_abs().min(2);
    }
    d += (sig.features.n_equi as i32 - e.features.n_equi as i32)
        .unsigned_abs()
        .min(2)
        * 2;
    d += (sig.features.n_theta as i32 - e.features.n_theta as i32)
        .unsigned_abs()
        .min(2)
        * 2;
    d += (sig.features.has_group != e.features.has_group) as u32;
    d += (sig.features.has_order != e.features.has_order) as u32;
    d += (sig.features.distinct != e.features.distinct) as u32;
    d += (sig.features.limited != e.features.limited) as u32;
    d
}

/// What the engine reports back at publish time.
#[derive(Debug, Clone)]
pub struct RunFeedback {
    warm: Option<WarmSource>,
    /// The run's convergence cost: total exploration episodes to
    /// completion. Prices both a late lock-in and a sticky prior that
    /// pinned a bad order from episode one.
    cost: u64,
}

impl RunFeedback {
    /// Feedback for a cold run (no prior was served).
    pub fn cold(cost: u64) -> RunFeedback {
        RunFeedback { warm: None, cost }
    }
}

/// One query's view of the cache: the signature computed once, shared by
/// the lookup at query start and the publication at query end — which also
/// remembers *who* supplied the warm start so the publication can route
/// drift feedback to it. `probe` returns `None` when the context carries
/// no cache (the knob is off) — the engines then skip all cross-query
/// work.
pub struct CacheProbe {
    cache: Arc<TreeCache>,
    sig: QuerySig,
    served: Mutex<Option<WarmSource>>,
}

impl CacheProbe {
    /// Probe the context for a learning cache and fingerprint `query`
    /// against it. Single-table queries are not worth caching (their only
    /// join order is trivial) and return `None`.
    pub fn probe(ctx: &ExecContext, query: &JoinQuery) -> Option<CacheProbe> {
        if query.num_tables() < 2 {
            return None;
        }
        let cache = ctx.learning_cache::<TreeCache>()?;
        Some(CacheProbe {
            sig: QuerySig::of_query(query),
            cache,
            served: Mutex::new(None),
        })
    }

    /// Look up this query's prior (fingerprint-validated, possibly
    /// generalized). Records the source for publish-time drift feedback.
    pub fn lookup(&self) -> Option<WarmStart> {
        let warm = self.cache.lookup(&self.sig)?;
        *self.served.lock() = Some(match &warm.donor {
            Some(d) => WarmSource::Generalized { donor: d.clone() },
            None => WarmSource::Exact,
        });
        Some(warm)
    }

    /// Publish this query's finished tree statistics along with the run's
    /// convergence cost (total episodes) for drift tracking.
    pub fn publish(&self, prior: TreePrior, cost: u64) {
        let feedback = RunFeedback {
            warm: self.served.lock().clone(),
            cost,
        };
        self.cache.publish(&self.sig, prior, feedback);
    }

    /// Decay factor to apply when seeding from the cached prior.
    pub fn decay(&self) -> f64 {
        self.cache.config().decay
    }

    /// Cap on prior entries exported at publication.
    pub fn max_entries(&self) -> usize {
        self.cache.config().max_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_uct::PriorEntry;

    fn prior(visits: u64) -> TreePrior {
        TreePrior {
            num_tables: 2,
            entries: vec![PriorEntry {
                prefix: vec![],
                visits,
                reward_sum: visits as f64 * 0.5,
            }],
        }
    }

    /// A signature over two fictional tables; `fp` differentiates content
    /// generations of the same names.
    fn sig(key: &str, tables: [&str; 2], fp: u64) -> QuerySig {
        QuerySig {
            key: key.to_string(),
            uids: vec![fp * 10 + 1, fp * 10 + 2],
            fingerprints: vec![fp, fp + 1],
            buckets: vec![4, 8],
            features: TemplateFeatures {
                tables: tables.iter().map(|s| s.to_string()).collect(),
                unary_counts: vec![1, 0],
                n_equi: 1,
                n_theta: 0,
                n_select: 1,
                has_group: false,
                has_order: false,
                distinct: false,
                limited: false,
            },
        }
    }

    fn no_gen() -> TreeCacheConfig {
        TreeCacheConfig {
            generalize: false,
            ..Default::default()
        }
    }

    #[test]
    fn hit_miss_and_counter_accounting() {
        let cache = TreeCache::new(no_gen());
        let q1 = sig("q1", ["a", "b"], 7);
        assert!(cache.lookup(&q1).is_none());
        cache.publish(&q1, prior(10), RunFeedback::cold(5));
        let got = cache.lookup(&q1).expect("hit");
        assert_eq!(got.prior.root_visits(), 10);
        assert!(!got.generalized);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.published, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn fingerprint_mismatch_invalidates_the_entry() {
        let cache = TreeCache::new(no_gen());
        cache.publish(&sig("q1", ["a", "b"], 7), prior(10), RunFeedback::cold(5));
        // Table content changed: same key, different fingerprints — the
        // stale entry must die, not be served.
        assert!(cache.lookup(&sig("q1", ["a", "b"], 99)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Gone entirely: even the original fingerprints now miss.
        assert!(cache.lookup(&sig("q1", ["a", "b"], 7)).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_eviction_under_tiny_capacity() {
        let cache = TreeCache::new(TreeCacheConfig {
            capacity: 2,
            generalize: false,
            ..Default::default()
        });
        let (a, b, c) = (
            sig("a", ["t1", "t2"], 1),
            sig("b", ["t3", "t4"], 2),
            sig("c", ["t5", "t6"], 3),
        );
        cache.publish(&a, prior(1), RunFeedback::cold(5));
        cache.publish(&b, prior(2), RunFeedback::cold(5));
        // Touch "a" so "b" is the LRU when "c" pushes one out.
        assert!(cache.lookup(&a).is_some());
        cache.publish(&c, prior(3), RunFeedback::cold(5));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a).is_some(), "recently used survives");
        assert!(cache.lookup(&c).is_some(), "new entry present");
        assert!(cache.lookup(&b).is_none(), "LRU evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn republish_refreshes_the_prior() {
        let cache = TreeCache::new(no_gen());
        let q = sig("q", ["a", "b"], 7);
        cache.publish(&q, prior(10), RunFeedback::cold(5));
        cache.publish(&q, prior(20), RunFeedback::cold(5));
        assert_eq!(cache.lookup(&q).unwrap().prior.root_visits(), 20);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eager_table_invalidation_by_uid_and_by_name() {
        let cache = TreeCache::new(no_gen());
        cache.publish(&sig("q1", ["a", "b"], 1), prior(1), RunFeedback::cold(5));
        cache.publish(&sig("q2", ["b", "c"], 2), prior(2), RunFeedback::cold(5));
        cache.publish(&sig("q3", ["d", "e"], 3), prior(3), RunFeedback::cold(5));
        // q1 has uid 11 for table "a"; purge by uid.
        cache.invalidate_table(11, "a");
        assert_eq!(cache.len(), 2);
        // Purge by *name* alone (uid unknown — e.g. a restart-loaded entry).
        cache.invalidate_table(u64::MAX, "c");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&sig("q3", ["d", "e"], 3)).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn config_is_sanitized() {
        let cache = TreeCache::new(TreeCacheConfig {
            capacity: 0,
            decay: 7.0,
            max_entries: 0,
            flush_every: 0,
            generalize: true,
        });
        let cfg = cache.config();
        assert_eq!(cfg.capacity, 1);
        assert_eq!(cfg.decay, 1.0);
        assert_eq!(cfg.max_entries, 1);
        assert_eq!(cfg.flush_every, 1);
    }

    #[test]
    fn generalization_transfers_from_nearest_neighbor() {
        let cache = TreeCache::default();
        let donor = sig("donor", ["fact", "dim"], 7);
        cache.publish(&donor, prior(40), RunFeedback::cold(20));
        // Same tables + fingerprints, different predicate shape → new key.
        let mut borrower = sig("borrower", ["fact", "dim"], 7);
        borrower.features.unary_counts = vec![0, 1];
        borrower.features.has_order = true;
        let w = cache.lookup(&borrower).expect("nearest-neighbor transfer");
        assert!(w.generalized);
        assert_eq!(w.donor.as_deref(), Some("donor"));
        assert_eq!(w.prior.root_visits(), 40);
        let s = cache.stats();
        assert_eq!((s.hits, s.generalized_hits, s.misses), (0, 1, 0));

        // A template over unrelated tables is too far away.
        let stranger = sig("stranger", ["x", "y"], 3);
        assert!(cache.lookup(&stranger).is_none());
        assert_eq!(cache.stats().misses, 1, "nothing served counts as a miss");
    }

    #[test]
    fn quarantined_entries_serve_nothing_and_rehabilitate() {
        let cache = TreeCache::new(no_gen());
        let q = sig("q", ["a", "b"], 7);
        // Cold baseline: locks in around 10.
        cache.publish(&q, prior(10), RunFeedback::cold(10));
        // Two regressing warm runs → quarantine.
        for _ in 0..2 {
            assert!(cache.lookup(&q).is_some());
            cache.publish(
                &q,
                prior(10),
                RunFeedback {
                    warm: Some(WarmSource::Exact),
                    cost: 50,
                },
            );
        }
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.stats().quarantines, 1);
        // While quarantined: lookups refuse, runs go cold and count down.
        for _ in 0..drift::QUARANTINE_RUNS {
            assert!(cache.lookup(&q).is_none(), "quarantine serves nothing");
            cache.publish(&q, prior(10), RunFeedback::cold(12));
        }
        assert_eq!(cache.stats().quarantined, 0, "rehabilitated");
        assert!(cache.lookup(&q).is_some(), "serving again");
    }

    #[test]
    fn quarantined_donor_is_skipped_for_generalization() {
        let cache = TreeCache::default();
        let donor = sig("donor", ["fact", "dim"], 7);
        cache.publish(&donor, prior(40), RunFeedback::cold(10));
        // Quarantine the donor via regressing exact warm runs.
        for _ in 0..2 {
            assert!(cache.lookup(&donor).is_some());
            cache.publish(
                &donor,
                prior(40),
                RunFeedback {
                    warm: Some(WarmSource::Exact),
                    cost: 100,
                },
            );
        }
        assert_eq!(cache.stats().quarantined, 1);
        let mut borrower = sig("borrower", ["fact", "dim"], 7);
        borrower.features.has_order = true;
        assert!(
            cache.lookup(&borrower).is_none(),
            "a quarantined donor must not transfer"
        );
    }

    #[test]
    fn generalized_regressions_strike_the_donor() {
        let cache = TreeCache::default();
        let donor = sig("donor", ["fact", "dim"], 7);
        cache.publish(&donor, prior(40), RunFeedback::cold(10));
        let mut borrower = sig("borrower", ["fact", "dim"], 7);
        borrower.features.has_order = true;
        // Two borrowing runs that regress badly → donor quarantined.
        for _ in 0..2 {
            let w = cache.lookup(&borrower);
            // (First iteration generalizes; second may hit the borrower's
            // own entry — force donor feedback to model a fresh borrower.)
            let _ = w;
            cache.publish(
                &borrower,
                prior(5),
                RunFeedback {
                    warm: Some(WarmSource::Generalized {
                        donor: "donor".to_string(),
                    }),
                    cost: 100,
                },
            );
        }
        let s = cache.stats();
        assert_eq!(s.quarantines, 1, "donor took the strikes");
        assert!(cache.lookup(&donor).is_none(), "donor quarantined");
    }

    #[test]
    fn concurrent_publish_and_lookup_stay_consistent() {
        let cache = Arc::new(TreeCache::new(TreeCacheConfig {
            capacity: 8,
            generalize: false,
            ..Default::default()
        }));
        let threads = 8;
        let per_thread = 200;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for n in 0..per_thread {
                        let id = (i + n) % 12;
                        let s = sig(&format!("q{id}"), ["a", "b"], id as u64);
                        if let Some(w) = cache.lookup(&s) {
                            assert_eq!(w.prior.num_tables, 2);
                        }
                        cache.publish(&s, prior(n as u64 + 1), RunFeedback::cold(5));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(cache.len() <= 8, "capacity respected: {}", cache.len());
        assert_eq!(s.published, (threads * per_thread) as u64);
        assert_eq!(s.hits + s.misses, (threads * per_thread) as u64);
    }

    #[test]
    fn persistence_roundtrip_through_a_store() {
        let dir = std::env::temp_dir().join(format!("skinner_cachep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let cache = TreeCache::new(no_gen());
        assert!(!cache.flush(), "no store attached yet");
        assert_eq!(cache.attach_store(store.clone()), 0);
        assert!(cache.is_durable());
        let q = sig("q", ["a", "b"], 7);
        cache.publish(&q, prior(10), RunFeedback::cold(5));
        assert!(cache.flush());

        // A fresh cache on the same store sees the entry — with the same
        // fingerprints, so validation passes and the prior serves.
        let cache2 = TreeCache::new(no_gen());
        assert_eq!(cache2.attach_store(store.clone()), 1);
        let w = cache2.lookup(&q).expect("persisted prior serves");
        assert_eq!(w.prior.root_visits(), 10);

        // But a content change (new fingerprints) is refused.
        let cache3 = TreeCache::new(no_gen());
        assert_eq!(cache3.attach_store(store), 1);
        assert!(cache3.lookup(&sig("q", ["a", "b"], 99)).is_none());
        assert_eq!(cache3.stats().invalidations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_purge_tombstones_the_persisted_entry() {
        let dir = std::env::temp_dir().join(format!("skinner_cachet_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let cache = TreeCache::new(no_gen());
        cache.attach_store(store.clone());
        let q = sig("q", ["a", "b"], 7);
        cache.publish(&q, prior(10), RunFeedback::cold(5));
        cache.flush();
        // Drop table "a" (uid unknown): purge + immediate tombstone flush.
        cache.invalidate_table(u64::MAX, "a");
        assert_eq!(cache.len(), 0);
        let cache2 = TreeCache::new(no_gen());
        assert_eq!(
            cache2.attach_store(store),
            0,
            "tombstoned on disk: nothing to load"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_priors_file_is_refused_not_served() {
        let dir = std::env::temp_dir().join(format!("skinner_cachec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let cache = TreeCache::new(no_gen());
        cache.attach_store(store.clone());
        cache.publish(&sig("q", ["a", "b"], 7), prior(10), RunFeedback::cold(5));
        cache.flush();
        // Corrupt one payload byte on disk.
        let path = dir.join(format!("{PRIORS_SIDECAR}.side"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x1;
        std::fs::write(&path, &bytes).unwrap();
        let cache2 = TreeCache::new(no_gen());
        assert_eq!(cache2.attach_store(store), 0);
        let s = cache2.stats();
        assert_eq!(s.load_rejected, 1);
        assert_eq!(s.entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
