//! On-disk encoding of the learning cache's entries.
//!
//! The cache persists into the data directory as one sidecar file (see
//! `skinner_storage::disk::sidecar`) named [`PRIORS_SIDECAR`]. The sidecar
//! envelope supplies framing, the format version and a whole-file
//! checksum; this module owns the payload: a flat sequence of entries,
//! each carrying the template key, the per-table identity (name + content
//! fingerprint + cardinality bucket), the structural features, the drift
//! state and the [`TreePrior`] itself (encoded by
//! `TreePrior::encode_into`).
//!
//! Decoding is defensive end to end — every length is bounds-checked,
//! every count capped, every float checked finite where finiteness is an
//! invariant — and an error anywhere refuses the *whole* payload: a prior
//! file is an accelerator, never worth trusting partially. The hostile
//! roundtrip proptests in `crates/core/tests/` pin this.

use std::sync::Arc;

use skinner_query::TemplateFeatures;
use skinner_uct::TreePrior;

use super::drift::DriftState;
use super::{CacheEntry, PersistedEntry};

/// Sidecar file name (becomes `learned_priors.side` in the data dir).
pub const PRIORS_SIDECAR: &str = "learned_priors";
/// Payload format version, checked by the sidecar envelope on read.
pub const PRIORS_VERSION: u32 = 1;

const MAX_ENTRIES: usize = 65_536;
const MAX_KEY_LEN: usize = 16_384;
const MAX_TABLES: usize = 64;
const MAX_NAME_LEN: usize = 4_096;

pub(super) fn encode_entries(entries: &[(String, CacheEntry)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, e) in entries {
        put_str(&mut out, key);
        let f = &e.features;
        out.extend_from_slice(&(f.tables.len() as u16).to_le_bytes());
        for (i, name) in f.tables.iter().enumerate() {
            put_str16(&mut out, name);
            out.extend_from_slice(&e.fingerprints.get(i).copied().unwrap_or(0).to_le_bytes());
            out.push(e.buckets.get(i).copied().unwrap_or(0));
            out.extend_from_slice(&f.unary_counts.get(i).copied().unwrap_or(0).to_le_bytes());
        }
        out.extend_from_slice(&f.n_equi.to_le_bytes());
        out.extend_from_slice(&f.n_theta.to_le_bytes());
        out.extend_from_slice(&f.n_select.to_le_bytes());
        out.push(
            (f.has_group as u8)
                | (f.has_order as u8) << 1
                | (f.distinct as u8) << 2
                | (f.limited as u8) << 3,
        );
        let d = &e.drift;
        put_opt_f64(&mut out, d.cold_ewma);
        put_opt_f64(&mut out, d.warm_ewma);
        out.extend_from_slice(&d.strikes.to_bits().to_le_bytes());
        out.extend_from_slice(&d.quarantine_left.to_le_bytes());
        out.extend_from_slice(&d.quarantines.to_le_bytes());
        e.prior.encode_into(&mut out);
    }
    out
}

pub(super) fn decode_entries(bytes: &[u8]) -> Result<Vec<PersistedEntry>, String> {
    let mut pos = 0usize;
    let count = take_u32(bytes, &mut pos)? as usize;
    if count > MAX_ENTRIES {
        return Err(format!("implausible entry count {count}"));
    }
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let key = take_str(bytes, &mut pos, MAX_KEY_LEN)?;
        let n_tables = take_u16(bytes, &mut pos)? as usize;
        if n_tables == 0 || n_tables > MAX_TABLES {
            return Err(format!("implausible table count {n_tables}"));
        }
        let mut tables = Vec::with_capacity(n_tables);
        let mut fingerprints = Vec::with_capacity(n_tables);
        let mut buckets = Vec::with_capacity(n_tables);
        let mut unary_counts = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(take_str16(bytes, &mut pos, MAX_NAME_LEN)?);
            fingerprints.push(take_u64(bytes, &mut pos)?);
            buckets.push(take_u8(bytes, &mut pos)?);
            unary_counts.push(take_u16(bytes, &mut pos)?);
        }
        let n_equi = take_u16(bytes, &mut pos)?;
        let n_theta = take_u16(bytes, &mut pos)?;
        let n_select = take_u16(bytes, &mut pos)?;
        let flags = take_u8(bytes, &mut pos)?;
        if flags > 0b1111 {
            return Err(format!("unknown feature flags {flags:#b}"));
        }
        let cold_ewma = take_opt_f64(bytes, &mut pos)?;
        let warm_ewma = take_opt_f64(bytes, &mut pos)?;
        let strikes = f64::from_bits(take_u64(bytes, &mut pos)?);
        if !strikes.is_finite() || strikes < 0.0 {
            return Err("non-finite or negative strikes".to_string());
        }
        let quarantine_left = take_u32(bytes, &mut pos)?;
        if quarantine_left > 1_000 {
            return Err(format!("implausible quarantine counter {quarantine_left}"));
        }
        let quarantines = take_u64(bytes, &mut pos)?;
        let prior = TreePrior::decode_from(bytes, &mut pos)?;
        if prior.num_tables != n_tables {
            return Err(format!(
                "prior covers {} tables, entry lists {n_tables}",
                prior.num_tables
            ));
        }
        out.push(PersistedEntry {
            key,
            entry: CacheEntry {
                uids: Vec::new(),
                fingerprints,
                buckets,
                features: TemplateFeatures {
                    tables,
                    unary_counts,
                    n_equi,
                    n_theta,
                    n_select,
                    has_group: flags & 1 != 0,
                    has_order: flags & 2 != 0,
                    distinct: flags & 4 != 0,
                    limited: flags & 8 != 0,
                },
                prior: Arc::new(prior),
                drift: DriftState {
                    cold_ewma,
                    warm_ewma,
                    strikes,
                    quarantine_left,
                    quarantines,
                },
                stamp: 0,
            },
        });
    }
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after last entry",
            bytes.len() - pos
        ));
    }
    Ok(out)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    out.push(v.is_some() as u8);
    out.extend_from_slice(&v.unwrap_or(0.0).to_bits().to_le_bytes());
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let s = bytes
        .get(*pos..*pos + n)
        .ok_or_else(|| "truncated prior payload".to_string())?;
    *pos += n;
    Ok(s)
}

fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, String> {
    Ok(take(bytes, pos, 1)?[0])
}

fn take_u16(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    Ok(u16::from_le_bytes(take(bytes, pos, 2)?.try_into().unwrap()))
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    Ok(u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    Ok(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()))
}

fn take_str(bytes: &[u8], pos: &mut usize, max: usize) -> Result<String, String> {
    let len = take_u32(bytes, pos)? as usize;
    if len > max {
        return Err(format!("string length {len} exceeds cap {max}"));
    }
    String::from_utf8(take(bytes, pos, len)?.to_vec()).map_err(|_| "invalid utf-8".to_string())
}

fn take_str16(bytes: &[u8], pos: &mut usize, max: usize) -> Result<String, String> {
    let len = take_u16(bytes, pos)? as usize;
    if len > max {
        return Err(format!("string length {len} exceeds cap {max}"));
    }
    String::from_utf8(take(bytes, pos, len)?.to_vec()).map_err(|_| "invalid utf-8".to_string())
}

fn take_opt_f64(bytes: &[u8], pos: &mut usize) -> Result<Option<f64>, String> {
    let tag = take_u8(bytes, pos)?;
    let v = f64::from_bits(take_u64(bytes, pos)?);
    match tag {
        0 => Ok(None),
        1 if v.is_finite() && v >= 0.0 => Ok(Some(v)),
        1 => Err("non-finite or negative EWMA".to_string()),
        t => Err(format!("bad option tag {t}")),
    }
}
