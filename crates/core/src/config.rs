//! Configuration for the Skinner evaluation strategies.
//!
//! Defaults follow the paper's Section 6.1: `w = 10⁻⁶` and `b = 500` loop
//! iterations per time slice for Skinner-C; `w = √2` for Skinner-G/H.
//! The feature toggles exist for the paper's ablations: Table 5 (learning
//! vs. random), Table 6 (indexes, parallelization, learning) and the design
//! choices called out in Section 4.5 (progress sharing, reward function).

use skinner_exec::ExecProfile;

/// Reward function variants for Skinner-C (paper Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// The refined reward SkinnerDB uses: sum over all tuple-index deltas,
    /// each scaled down by the product of cardinalities of its table and all
    /// preceding tables in the join order.
    FractionalProgress,
    /// The simpler variant used in the formal analysis (Section 5.2):
    /// progress in the left-most table only.
    LeftmostDelta,
}

/// Skinner-C configuration.
#[derive(Debug, Clone)]
pub struct SkinnerCConfig {
    /// Time-slice length in multi-way-join outer-loop iterations (`b`).
    pub slice_steps: u64,
    /// UCT exploration weight `w`.
    pub exploration_weight: f64,
    /// RNG seed for the UCT tree.
    pub seed: u64,
    /// Use hash indexes to "jump" over non-matching tuple indices for
    /// equality predicates (Section 4.5's extension; Table 6 "indexes").
    pub use_jump_indexes: bool,
    /// Learn join orders via UCT; `false` selects uniformly random valid
    /// orders per slice (Table 5 / Table 6 "learning").
    pub learning: bool,
    /// Share execution progress between join orders with common prefixes
    /// (Section 4.5's third desideratum).
    pub share_progress: bool,
    /// Reward function variant.
    pub reward: RewardKind,
    /// Threads for the (only parallelized) pre-processing phase
    /// (Table 6 "parallelization").
    pub preprocess_threads: usize,
    /// Global work-unit cap; exceeding it aborts with a timeout outcome
    /// (used by the torture benchmarks' per-test-case time limits).
    pub work_limit: u64,
}

impl Default for SkinnerCConfig {
    fn default() -> Self {
        SkinnerCConfig {
            slice_steps: 500,
            exploration_weight: 1e-6,
            seed: 0x5EED,
            use_jump_indexes: true,
            learning: true,
            share_progress: true,
            reward: RewardKind::FractionalProgress,
            preprocess_threads: 1,
            work_limit: u64::MAX,
        }
    }
}

/// Skinner-G configuration.
#[derive(Debug, Clone)]
pub struct SkinnerGConfig {
    /// Number of batches each table is split into (`b` in Algorithm 1).
    pub batches: usize,
    /// Work units corresponding to one atomic timeout unit (timeout level
    /// `L` allows `2^L * base_timeout_units` units per invocation).
    pub base_timeout_units: u64,
    /// The black-box engine profile executing each (order, batch) pair.
    pub engine_profile: ExecProfile,
    /// UCT exploration weight (per-level trees).
    pub exploration_weight: f64,
    pub seed: u64,
    /// Learn join orders; `false` picks random valid orders (Table 5).
    pub learning: bool,
    pub preprocess_threads: usize,
    /// Global work-unit cap.
    pub work_limit: u64,
}

impl Default for SkinnerGConfig {
    fn default() -> Self {
        SkinnerGConfig {
            batches: 20,
            base_timeout_units: 2_000,
            engine_profile: ExecProfile::row_store(),
            exploration_weight: std::f64::consts::SQRT_2,
            seed: 0x5EED,
            learning: true,
            preprocess_threads: 1,
            work_limit: u64::MAX,
        }
    }
}

/// Configuration of the `skinner_g` strategy's episode loop
/// ([`crate::skinner_g::OrderArms`]): whole join orders as UCT arms, each
/// episode executing one batch under an adaptive, doubling work-budget cap
/// (generalizing the cap `parallel_skinner` prototypes).
#[derive(Debug, Clone)]
pub struct OrderArmsConfig {
    /// Number of batches each table is split into.
    pub batches: usize,
    /// Initial per-episode work cap. Every episode abandoned *at the full
    /// cap* doubles it, so the loop adapts to the query's batch cost;
    /// abandoned episodes earn reward 0, keeping results deterministic.
    pub base_cap_units: u64,
    /// The black-box engine profile executing each (order, batch) pair.
    pub engine_profile: ExecProfile,
    /// UCT exploration weight for the single whole-order tree.
    pub exploration_weight: f64,
    pub seed: u64,
    /// Learn join orders; `false` picks random valid orders.
    pub learning: bool,
    pub preprocess_threads: usize,
    /// Global work-unit cap.
    pub work_limit: u64,
    /// Execute this fixed order every episode instead of consulting the
    /// tree — the `skinner_h` hybrid's optimizer side.
    pub forced_order: Option<Vec<usize>>,
}

impl Default for OrderArmsConfig {
    fn default() -> Self {
        OrderArmsConfig {
            batches: 20,
            base_cap_units: 2_000,
            engine_profile: ExecProfile::row_store(),
            exploration_weight: std::f64::consts::SQRT_2,
            seed: 0x5EED,
            learning: true,
            preprocess_threads: 1,
            work_limit: u64::MAX,
            forced_order: None,
        }
    }
}

/// Configuration of the `skinner_h` strategy
/// ([`crate::skinner_h::run_sliced_hybrid`]): the optimizer's planned order
/// raced against learned execution in alternating regret-bounded slices of
/// `b, 2b, 4b, …` work units.
#[derive(Debug, Clone)]
pub struct SlicedHybridConfig {
    /// Episode-loop configuration for the learned side. The optimizer side
    /// reuses it but forces the planned order, disables learning and runs a
    /// single destructive batch per slice (preserving the doubling-schedule
    /// regret bound against a standalone traditional run).
    pub arms: OrderArmsConfig,
    /// `b`: work units granted to each side in the first round; doubles
    /// every round.
    pub slice_units: u64,
    /// Alternation rounds before giving up with a timeout outcome.
    pub max_rounds: u32,
    /// Switch over to pure learned execution once the learned side's
    /// projected total cost (`work × batches / completed`) times this
    /// margin falls below what the optimizer side has already sunk without
    /// finishing.
    pub switch_margin: f64,
    /// Batches the learned side must complete before a switchover may
    /// trigger (guards against switching on noise).
    pub min_learned_batches: u64,
    /// Planner DP table limit (greedy fallback beyond it).
    pub dp_table_limit: usize,
    /// Global work-unit cap across both sides.
    pub work_limit: u64,
}

impl Default for SlicedHybridConfig {
    fn default() -> Self {
        SlicedHybridConfig {
            arms: OrderArmsConfig::default(),
            slice_units: 2_000,
            max_rounds: 40,
            switch_margin: 2.0,
            min_learned_batches: 4,
            dp_table_limit: 12,
            work_limit: u64::MAX,
        }
    }
}

/// Skinner-H configuration.
#[derive(Debug, Clone)]
pub struct SkinnerHConfig {
    /// The learning half (Skinner-G) configuration.
    pub learner: SkinnerGConfig,
    /// Timeout of traditional-plan invocation `i` is
    /// `2^i * learner.base_timeout_units`.
    pub max_doublings: u32,
}

impl Default for SkinnerHConfig {
    fn default() -> Self {
        SkinnerHConfig {
            learner: SkinnerGConfig::default(),
            max_doublings: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_6_1() {
        let c = SkinnerCConfig::default();
        assert_eq!(c.slice_steps, 500);
        assert!(c.exploration_weight <= 1e-5);
        let g = SkinnerGConfig::default();
        assert!((g.exploration_weight - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
