//! SkinnerDB's regret-bounded query evaluation strategies.
//!
//! The paper's primary contribution, reproduced in full:
//!
//! * [`skinner_c`] — **Skinner-C** (paper Section 4.5): a customized
//!   execution engine built around a depth-first multi-way join whose entire
//!   execution state is one vector of tuple indices. Join orders switch
//!   thousands of times per second; progress is backed up per join order,
//!   shared across orders with common prefixes, and never lost. A single
//!   UCT tree learns join-order quality from per-slice progress rewards.
//! * [`skinner_g`] — **Skinner-G** (Section 4.3): the same learning loop on
//!   top of a *generic* engine (`skinner-exec`) driven through forced join
//!   orders, data batches and destructive timeouts, using the *pyramid*
//!   timeout scheme ([`pyramid`], Algorithm 1) with one UCT tree per timeout
//!   level.
//! * [`skinner_h`] — **Skinner-H** (Section 4.4): alternates
//!   doubling-timeout executions of the traditional optimizer's plan with
//!   equal time for Skinner-G learning, preserving learning state across
//!   rounds; bounded regret against both the optimum and the traditional
//!   plan (Theorems 5.7, 5.8).
//! * **`skinner_g`** ([`skinner_g::OrderArms`]) — a second generic-engine
//!   variant: whole join orders as arms of a *single* UCT tree, each episode
//!   executing one batch under a doubling work-budget cap (the adaptive cap
//!   `parallel_skinner` prototypes, generalized); abandoned episodes earn
//!   reward 0, keeping results deterministic.
//! * **`skinner_h`** ([`skinner_h::run_sliced_hybrid`]) — a second hybrid:
//!   the `skinner_optimizer` planner's DP/greedy plan raced against the
//!   `skinner_g` loop in alternating `b, 2b, 4b, …` slices with a one-way
//!   switchover once the learned side's reward rate dominates.
//!
//! * [`parallel`] — **parallel_skinner**: the paper's multi-threaded
//!   SkinnerC configuration (Section 6.1). Each episode's batch of
//!   left-most-table tuples is split across N worker threads executing the
//!   same join order, and all workers learn through one shared concurrent
//!   UCT tree.
//!
//! * [`cache`] — **cross-query learning**: a bounded, thread-safe cache of
//!   UCT tree priors keyed by query template, consulted at query start and
//!   published into at query end by Skinner-C and `parallel_skinner` when
//!   the `learning_cache` knob is on. Purely a convergence accelerator —
//!   results are identical with it on or off.
//!
//! All strategies produce exactly the same results as a traditional
//! execution (Theorems 5.1–5.3); the integration tests verify this against
//! a naive reference executor.

pub mod cache;
pub mod config;
pub mod parallel;
pub mod pyramid;
pub mod skinner_c;
pub mod skinner_g;
pub mod skinner_h;
pub mod strategies;

pub use cache::{
    CacheProbe, QuerySig, RunFeedback, TreeCache, TreeCacheConfig, TreeCacheStats, WarmStart,
};
pub use config::{
    OrderArmsConfig, RewardKind, SkinnerCConfig, SkinnerGConfig, SkinnerHConfig, SlicedHybridConfig,
};
pub use parallel::{run_parallel_skinner, ParallelSkinnerConfig, ParallelSkinnerStrategy};
pub use pyramid::PyramidScheme;
pub use skinner_c::engine::{run_skinner_c, run_skinner_c_fixed};
pub use skinner_g::{OrderArms, SkinnerG};
pub use skinner_h::{
    run_skinner_h, run_sliced_hybrid, WINNER_LEARNED, WINNER_OPTIMIZER, WINNER_TRADITIONAL,
};
pub use strategies::{
    OrderArmsStrategy, SkinnerCStrategy, SkinnerGStrategy, SkinnerHStrategy, SlicedHybridStrategy,
};
