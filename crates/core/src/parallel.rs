//! `parallel_skinner`: multi-threaded Skinner-C with a shared learned tree.
//!
//! The paper's multi-threaded SkinnerC configuration (Section 6.1)
//! parallelizes over *data*: every episode executes one join order, the
//! episode's batch of left-most-table tuples is split across N worker
//! threads, and all workers learn through one UCT tree. This module is that
//! design on top of the Skinner-C machinery:
//!
//! * the coordinator selects a join order from a shared
//!   [`SharedUctTree`] — behind the `threads`
//!   knob this is the single-root
//!   [`ConcurrentUctTree`](skinner_uct::ConcurrentUctTree) at one thread
//!   (keeping the 1-thread run bit-identical to sequential Skinner-C) and
//!   the per-first-table [`ShardedUctTree`](skinner_uct::ShardedUctTree)
//!   at more, so workers back rewards up into disjoint padded shard
//!   counters instead of all CASing one root — cuts the next
//!   `batch_tuples` rows of the order's left-most table into contiguous
//!   chunks ([`skinner_exec::partition_tuples`]), and scatters them over a
//!   persistent [`WorkerPool`];
//! * each worker runs the bounded multi-way join
//!   ([`continue_join_ranged`]) over its chunk to completion, polling the
//!   shared [`CancelToken`] every `slice_steps` steps and charging a
//!   *reserved* slice of the shared work budget (so concurrent workers
//!   cannot overspend it), then reports its reward into the shared tree;
//! * completed batches advance the global per-table offsets exactly like
//!   sequential Skinner-C, so every tuple range is joined exactly once and
//!   the result is identical to any other strategy's;
//! * grouping/ordering post-processing runs through
//!   [`skinner_exec::postprocess_parallel`]: result tuples are partitioned
//!   across a short-lived [`WorkerPool`] of its own (the episode pool's
//!   channels are typed for join tasks) for partial aggregation / local
//!   sorting with a coordinator hash-/k-way merge, so the tail of the
//!   query no longer serializes on the coordinator thread.
//!
//! Episodes that blow past the adaptive per-episode work cap are
//! *abandoned* (Skinner-G's destructive-timeout discipline): their partial
//! result tuples are kept (deduplicated), the order earns reward 0, the
//! cap doubles, and the tree picks again — so a catastrophic join order
//! costs a bounded amount before learning routes around it, and caps
//! eventually grow large enough for the best order to finish a batch.
//!
//! With one thread the strategy degenerates to sequential Skinner-C over
//! whole batches: same joins, same offsets discipline, same result rows.
//!
//! Instrumentation: the outcome's [`ExecMetrics`] counters include
//! `uct_shards` (shards the learner spread root updates over),
//! `root_cas_contention` (CAS retries on the hot reward counters — the
//! quantity sharding exists to reduce) and `postprocess_us` (wall time of
//! the post-processing phase, reported separately so the `thread_scaling`
//! benchmark can show the parallel-postprocessing win on its own).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use skinner_exec::{
    merge_worker_metrics, partition_tuples, CancelToken, ExecContext, ExecMetrics, ExecOutcome,
    ExecutionStrategy, QueryResult, Span, SpanTimer, TupleIxs, TupleRange, WorkBudget, WorkerPool,
};
use skinner_query::JoinQuery;
use skinner_storage::RowId;
use skinner_uct::SharedUctTree;

use crate::cache::CacheProbe;
use crate::skinner_c::join::{continue_join_ranged, MultiwayCtx, OrderInfo, SliceOutcome};
use crate::skinner_c::preproc::prepare;
use crate::skinner_c::result_set::ResultSet;
use crate::skinner_c::state::JoinState;

/// Configuration of the parallel learned strategy.
#[derive(Debug, Clone)]
pub struct ParallelSkinnerConfig {
    /// Worker threads; `0` inherits the [`ExecContext::threads`] knob
    /// (which defaults to the machine's available parallelism).
    pub threads: usize,
    /// Left-most-table tuples per episode, split across the workers.
    pub batch_tuples: u64,
    /// Minimum left-most tuples per worker chunk: small batches use fewer
    /// workers rather than paying dispatch overhead for micro-chunks.
    pub min_chunk_tuples: u64,
    /// Steps between cancellation polls inside each worker (the same
    /// granularity as sequential Skinner-C's time slice).
    pub slice_steps: u64,
    /// UCT exploration weight `w` for the shared tree.
    pub exploration_weight: f64,
    /// Seed for the coordinator's and the workers' generators.
    pub seed: u64,
    /// Use hash indexes to jump over non-matching tuples.
    pub use_jump_indexes: bool,
    /// Global work-unit cap (shared by all workers; enforced by
    /// reservation, so N workers cannot collectively overspend it).
    pub work_limit: u64,
    /// Threads for index building during pre-processing; `0` = same as
    /// `threads`.
    pub preprocess_threads: usize,
}

impl Default for ParallelSkinnerConfig {
    fn default() -> Self {
        ParallelSkinnerConfig {
            threads: 0,
            batch_tuples: 1024,
            min_chunk_tuples: 32,
            slice_steps: 500,
            exploration_weight: 1e-6,
            seed: 0x5EED,
            use_jump_indexes: true,
            work_limit: u64::MAX,
            preprocess_threads: 0,
        }
    }
}

/// One worker's share of an episode: join its chunk of the left-most table
/// under the episode's order, bounded by a reserved work cap.
struct EpisodeTask {
    mctx: Arc<MultiwayCtx>,
    info: Arc<OrderInfo>,
    offsets: Arc<Vec<RowId>>,
    range: TupleRange,
    /// Work units this worker may spend (already reserved from the shared
    /// budget; unspent remainder is refunded by the coordinator).
    cap: u64,
    slice_steps: u64,
    cancel: CancelToken,
    tree: Arc<SharedUctTree>,
    /// Reward normalization: expected work per left-most tuple of a good
    /// order.
    norm: f64,
}

struct WorkerReport {
    tuples: Vec<TupleIxs>,
    used: u64,
    /// Ran out of its reserved cap before finishing the chunk.
    capped: bool,
    /// Observed the cancel token mid-chunk.
    cancelled: bool,
    metrics: ExecMetrics,
}

/// Join one chunk of the episode's batch to completion (or until the cap /
/// cancellation stops it), then report the order's reward into the shared
/// tree.
fn run_chunk(task: EpisodeTask) -> WorkerReport {
    let budget = WorkBudget::with_limit(task.cap);
    let order = &task.info.order;
    let t0 = order[0];
    let mut offsets = (*task.offsets).clone();
    offsets[t0] = task.range.start as RowId;
    let mut state = JoinState::fresh(&offsets);
    let mut results = ResultSet::new();
    let mut slices = 0u64;
    let mut capped = false;
    let mut cancelled = false;
    loop {
        if task.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        slices += 1;
        match continue_join_ranged(
            &task.mctx,
            &task.info,
            &mut state,
            &offsets,
            task.slice_steps,
            &budget,
            &mut results,
            task.range.end as RowId,
        ) {
            Ok(SliceOutcome::Finished) => break,
            Ok(SliceOutcome::Budget) => {}
            Err(_) => {
                capped = true;
                break;
            }
        }
    }
    let used = budget.used();
    if !cancelled {
        // Cheap orders finish their chunk with little work per tuple and
        // earn rewards near 1; abandoned chunks teach the tree to avoid
        // the order.
        let reward = if capped {
            0.0
        } else {
            let per_tuple = used as f64 / task.range.len().max(1) as f64;
            1.0 / (1.0 + per_tuple / task.norm)
        };
        task.tree.backup(order, reward);
    }
    let metrics = ExecMetrics {
        result_tuples: results.len() as u64,
        slices,
        ..ExecMetrics::default()
    }
    .with_counter("chunks", 1);
    WorkerReport {
        tuples: results.into_tuples(),
        used,
        capped,
        cancelled,
        metrics,
    }
}

/// Evaluate `query` with the parallel learned strategy.
pub fn run_parallel_skinner(
    query: &JoinQuery,
    ctx: &ExecContext,
    cfg: &ParallelSkinnerConfig,
) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let m = query.num_tables();
    let threads = if cfg.threads == 0 {
        ctx.threads()
    } else {
        cfg.threads
    }
    .max(1);
    let preprocess_threads = if cfg.preprocess_threads == 0 {
        threads
    } else {
        cfg.preprocess_threads
    };

    let trace = ctx.trace();
    let pre_timer = SpanTimer::start(trace, "preprocess");
    let prepared = match prepare(query, &budget, preprocess_threads, cfg.use_jump_indexes) {
        Ok(p) => p,
        Err(_) => {
            ctx.absorb_work(budget.used());
            return ExecOutcome::timeout(columns, budget.used(), start.elapsed()).with_metrics(
                ExecMetrics {
                    order: (0..m).collect(),
                    ..ExecMetrics::default()
                }
                .with_counter("threads", threads as u64),
            );
        }
    };
    pre_timer.finish(prepared.pages_skipped);
    let mctx = Arc::new(prepared.ctx);
    let cards: Vec<RowId> = mctx.tables.iter().map(|t| t.cardinality()).collect();

    // One thread keeps the single-root tree (bit-identical learning path
    // to sequential Skinner-C); more threads get the sharded tree so
    // backups from different first tables hit disjoint cache lines.
    let graph = query.join_graph();
    let tree = Arc::new(SharedUctTree::for_threads(
        graph.clone(),
        cfg.exploration_weight,
        threads,
    ));
    // Cross-query learning: warm-start the shared tree from the template
    // cache when the context carries one (both tree variants seed from the
    // same prior format). Results stay identical either way — the cache
    // only biases which orders the learner tries first.
    let probe = CacheProbe::probe(ctx, query);
    let mut cache_hit = 0u64;
    let mut warm_start_visits = 0u64;
    let mut warm_start_generalized = 0u64;
    if let Some(p) = &probe {
        if let Some(warm) = p.lookup() {
            warm_start_visits = tree.seed_prior(&warm.prior, p.decay());
            cache_hit = 1;
            warm_start_generalized = warm.generalized as u64;
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9A7A11E1);
    let pool: WorkerPool<EpisodeTask, WorkerReport> =
        WorkerPool::new(threads, |_, task| run_chunk(task));

    let mut offsets: Vec<RowId> = vec![0; m];
    let mut global_results = ResultSet::new();
    let mut order_infos: HashMap<Box<[u8]>, Arc<OrderInfo>> = HashMap::new();
    let mut order_counts: HashMap<Box<[u8]>, u64> = HashMap::new();
    let mut tree_growth: Vec<(u64, usize)> = Vec::new();
    let mut worker_metrics: Vec<ExecMetrics> = Vec::new();
    let mut episodes = 0u64;
    let mut failed_episodes = 0u64;
    let mut timed_out = false;
    // Episode index of the last join-order switch (see the sequential
    // engine): the convergence measure `repeat_workload` compares
    // warm-started runs against cold ones on.
    let mut last_order_switch = 0u64;
    let mut prev_order_key: Option<Box<[u8]>> = None;
    // Regret proxy (see the sequential engine): consecutive-episode order
    // changes, plus per-order episode spans whose labels are built only on
    // a switch (cold path — steady-state episodes allocate nothing).
    let mut order_switches = 0u64;
    let mut run_start_ns = trace.map(|t| t.now_ns()).unwrap_or(0);
    let mut run_episodes = 0u64;
    let mut run_label = String::new();
    // Adaptive per-episode work cap, doubled whenever an episode is
    // abandoned (Skinner-G's escalating-timeout discipline) so a
    // catastrophic order costs a bounded amount and good orders eventually
    // get enough room to finish a batch.
    let mut episode_cap: u64 = (cfg.batch_tuples.saturating_mul(8)).max(cfg.slice_steps);
    let norm = 2.0 * m as f64;

    let finished =
        |offsets: &[RowId], cards: &[RowId]| offsets.iter().zip(cards).any(|(&o, &n)| o >= n);

    if !query.always_false {
        while !finished(&offsets, &cards) {
            if ctx.interrupted() {
                timed_out = true;
                break;
            }
            let order = tree.select(&mut rng);
            let key: Box<[u8]> = order.iter().map(|&t| t as u8).collect();
            if prev_order_key.as_deref() != Some(&key[..]) {
                if prev_order_key.is_some() {
                    order_switches += 1;
                }
                if let Some(t) = trace {
                    if !run_label.is_empty() {
                        t.push(Span {
                            stage: "episodes",
                            label: std::mem::take(&mut run_label),
                            start_ns: run_start_ns,
                            dur_ns: t.now_ns().saturating_sub(run_start_ns),
                            detail: run_episodes,
                        });
                    }
                    run_start_ns = t.now_ns();
                    run_episodes = 0;
                    run_label = format!("order={order:?}");
                }
                last_order_switch = episodes + 1;
                prev_order_key = Some(key.clone());
            }
            let info = order_infos
                .entry(key.clone())
                .or_insert_with(|| {
                    Arc::new(OrderInfo::build(query, &mctx, &order, cfg.use_jump_indexes))
                })
                .clone();
            let t0 = order[0];
            let lo = offsets[t0] as u64;
            let hi = (lo + cfg.batch_tuples).min(cards[t0] as u64);
            let max_parts = ((hi - lo) / cfg.min_chunk_tuples.max(1))
                .max(1)
                .min(threads as u64) as usize;
            let ranges = partition_tuples(lo, hi, max_parts);
            let nparts = ranges.len().max(1) as u64;
            // Reserve each worker's cap from the shared budget up front
            // (`try_consume` never overspends), so workers spend against
            // pre-granted quotas; after the episode the reservation is
            // released and the *actual* consumption recorded instead.
            let share = budget.remaining() / nparts;
            let cap = share.min(episode_cap);
            if cap == 0 || !budget.try_consume(cap * nparts) {
                timed_out = true;
                break;
            }
            let shared_offsets = Arc::new(offsets.clone());
            let tasks: Vec<EpisodeTask> = ranges
                .iter()
                .map(|&range| EpisodeTask {
                    mctx: mctx.clone(),
                    info: info.clone(),
                    offsets: shared_offsets.clone(),
                    range,
                    cap,
                    slice_steps: cfg.slice_steps,
                    cancel: ctx.cancel().clone(),
                    tree: tree.clone(),
                    norm,
                })
                .collect();
            let reports = pool.scatter_gather(tasks);

            // Release the reservation, then record what was actually spent
            // (a worker may exceed its cap by its final charge's overage,
            // which `charge` records faithfully).
            budget.refund(cap * nparts);
            let mut any_capped = false;
            let mut any_cancelled = false;
            for (_, report) in reports {
                let _ = budget.charge(report.used);
                any_capped |= report.capped;
                any_cancelled |= report.cancelled;
                for tuple in report.tuples {
                    global_results.insert(&tuple);
                }
                worker_metrics.push(report.metrics);
            }
            episodes += 1;
            run_episodes += 1;
            *order_counts.entry(key).or_insert(0) += 1;
            if episodes.is_power_of_two() || episodes.is_multiple_of(256) {
                tree_growth.push((episodes, tree.num_nodes()));
            }
            if any_cancelled {
                timed_out = true;
                break;
            }
            if any_capped {
                if cap >= share {
                    // The cap was the global budget's share: out of budget.
                    timed_out = true;
                    break;
                }
                failed_episodes += 1;
                episode_cap = episode_cap.saturating_mul(2);
                continue; // offsets unchanged: the batch will be retried
            }
            offsets[t0] = hi as RowId;
        }
    }
    tree_growth.push((episodes, tree.num_nodes()));
    // Close the final per-order episode run.
    if let Some(t) = trace {
        if !run_label.is_empty() {
            t.push(Span {
                stage: "episodes",
                label: run_label,
                start_ns: run_start_ns,
                dur_ns: t.now_ns().saturating_sub(run_start_ns),
                detail: run_episodes,
            });
        }
    }

    let result_tuples = global_results.len() as u64;
    let result_set_bytes = global_results.byte_size();
    let total_aux_bytes = tree.byte_size() + result_set_bytes + prepared.index_bytes;

    // Post-processing: partitioned across workers (partial aggregation /
    // local sort + coordinator merge) instead of serializing on this
    // thread; timed separately so benchmarks can report the phase alone.
    let pp_start = Instant::now();
    let post_timer = SpanTimer::start(trace, "postprocess");
    let result = if timed_out {
        QueryResult::empty(columns)
    } else {
        let tuples = global_results.into_tuples();
        match skinner_exec::postprocess_parallel(&mctx.tables, query, tuples, &budget, threads) {
            Ok(r) => r,
            Err(_) => {
                timed_out = true;
                QueryResult::empty(columns)
            }
        }
    };
    post_timer.finish(result_tuples);
    let postprocess_us = pp_start.elapsed().as_micros() as u64;

    let mut order_slice_counts: Vec<(Vec<usize>, u64)> = order_counts
        .into_iter()
        .map(|(k, v)| (k.iter().map(|&b| b as usize).collect(), v))
        .collect();
    order_slice_counts.sort_by_key(|e| std::cmp::Reverse(e.1));

    // Publish the shared tree's statistics for the next query of this
    // template, with total episodes as the drift-feedback convergence
    // cost (skipped on timeout — see the sequential engine).
    if let Some(p) = &probe {
        if !timed_out && episodes > 0 {
            p.publish(tree.extract_prior(p.max_entries()), episodes);
        }
    }

    let workers = merge_worker_metrics(worker_metrics);
    ctx.absorb_work(budget.used());
    ExecOutcome {
        result,
        work_units: budget.used(),
        wall: start.elapsed(),
        timed_out,
        metrics: ExecMetrics {
            order: tree.best_order(),
            result_tuples,
            slices: episodes,
            uct_nodes: tree.num_nodes(),
            result_set_bytes,
            total_aux_bytes,
            tree_growth,
            order_slice_counts,
            shard_stats: tree
                .shard_stats()
                .iter()
                .map(|s| (s.first_table, s.visits, s.contention))
                .collect(),
            pages_read: prepared.pages_read,
            pages_skipped: prepared.pages_skipped,
            ..ExecMetrics::default()
        }
        .with_counter("threads", threads as u64)
        .with_counter("episodes", episodes)
        .with_counter("failed_episodes", failed_episodes)
        .with_counter("worker_slices", workers.slices)
        .with_counter("chunks", workers.counter("chunks").unwrap_or(0))
        .with_counter("uct_shards", tree.num_shards() as u64)
        .with_counter("root_cas_contention", tree.contention())
        .with_counter("postprocess_us", postprocess_us)
        .with_counter("cache_hit", cache_hit)
        .with_counter("warm_start_visits", warm_start_visits)
        .with_counter("warm_start_generalized", warm_start_generalized)
        .with_counter("last_order_switch", last_order_switch)
        .with_counter("order_switches", order_switches),
    }
}

/// The parallel learned engine as a pluggable strategy.
#[derive(Debug, Clone, Default)]
pub struct ParallelSkinnerStrategy(pub ParallelSkinnerConfig);

impl ExecutionStrategy for ParallelSkinnerStrategy {
    fn name(&self) -> &str {
        "parallel_skinner"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_parallel_skinner(query, ctx, &self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..60 {
            a.push_row(&[Value::Int(i), Value::Int(i % 6)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..90 {
            b.push_row(&[Value::Int(i % 60), Value::Int(i % 12)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..12 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    fn cfg(threads: usize) -> ParallelSkinnerConfig {
        ParallelSkinnerConfig {
            threads,
            batch_tuples: 16,    // small batches → many episodes, even on tiny data
            min_chunk_tuples: 2, // …still split across all the workers
            ..Default::default()
        }
    }

    #[test]
    fn matches_reference_at_every_thread_count() {
        let cat = setup();
        for sql in [
            "SELECT a.id, b.w FROM a, b WHERE a.id = b.aid",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
            "SELECT a.id FROM a WHERE a.g = 3 ORDER BY a.id LIMIT 4",
            "SELECT a.id FROM a, c WHERE a.id + c.bw = 20",
        ] {
            let q = bind(sql, &cat);
            let expected = run_reference(&q).canonical_rows();
            for threads in [1, 2, 4] {
                let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(threads));
                assert!(!out.timed_out, "{sql} ({threads} threads)");
                assert_eq!(
                    out.result.canonical_rows(),
                    expected,
                    "{sql} ({threads} threads)"
                );
                assert_eq!(out.metrics.counter("threads"), Some(threads as u64));
            }
        }
    }

    #[test]
    fn multiple_episodes_learn_through_one_tree() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(2));
        assert!(!out.timed_out);
        assert!(out.metrics.slices > 1, "expected several episodes");
        assert!(out.metrics.uct_nodes >= 1);
        assert!(!out.metrics.order_slice_counts.is_empty());
        assert!(out.metrics.counter("chunks").unwrap() >= out.metrics.slices);
        assert_eq!(out.metrics.order.len(), 3);
        // Multi-threaded runs learn through the sharded tree: one shard
        // per eligible first table, with contention observable (possibly
        // zero on a single-core box) and post-processing timed separately.
        assert_eq!(out.metrics.counter("uct_shards"), Some(3));
        assert!(out.metrics.counter("root_cas_contention").is_some());
        assert!(out.metrics.counter("postprocess_us").is_some());
    }

    #[test]
    fn one_thread_keeps_the_single_root_tree() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(1));
        assert!(!out.timed_out);
        assert_eq!(
            out.metrics.counter("uct_shards"),
            Some(1),
            "1 thread must use the proven single-root tree"
        );
    }

    #[test]
    fn work_limit_times_out() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let c = ParallelSkinnerConfig {
            work_limit: 50,
            ..cfg(2)
        };
        let out = run_parallel_skinner(&q, &ExecContext::default(), &c);
        assert!(out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = ExecContext::default().with_cancel(cancel);
        let out = run_parallel_skinner(&q, &ctx, &cfg(4));
        assert!(out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn always_false_and_empty_tables_finish_without_episodes() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a WHERE 1 = 2", &cat);
        let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(2));
        assert!(!out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
        assert_eq!(out.metrics.slices, 0);

        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 1000",
            &cat,
        );
        let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(2));
        assert_eq!(out.result.num_rows(), 0);
        assert_eq!(out.metrics.slices, 0);
    }

    #[test]
    fn single_table_query_works() {
        let cat = setup();
        let q = bind(
            "SELECT a.g, COUNT(*) c FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let out = run_parallel_skinner(&q, &ExecContext::default(), &cfg(3));
        assert_eq!(out.result.num_rows(), 6);
        assert_eq!(out.result.rows[0][1], Value::Int(10));
    }
}
