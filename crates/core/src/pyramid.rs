//! The pyramid timeout scheme (paper Algorithm 1, Figure 3).
//!
//! Skinner-G cannot know the optimal per-batch timeout in advance; picking
//! too low means no batch ever completes, too high wastes time on bad join
//! orders. The scheme iterates over timeout *levels* with timeouts `2^L`,
//! always choosing the highest level whose accumulated time would not exceed
//! the time already given to every lower level. The paper proves the two
//! properties this module's tests check:
//!
//! * Lemma 5.4 — at most `log₂(n)` levels are ever used, and
//! * Lemma 5.5 — accumulated time per level never differs by more than 2×.

/// Timeout-level allocator.
#[derive(Debug, Default, Clone)]
pub struct PyramidScheme {
    /// `n[l]` = total time units allocated to level `l` so far.
    allocated: Vec<u64>,
}

impl PyramidScheme {
    pub fn new() -> Self {
        Self::default()
    }

    /// Choose the timeout level for the next iteration and account for it.
    /// Returns `(level, timeout)` with `timeout = 2^level` (in atomic time
    /// units; the caller scales to work units).
    pub fn next_timeout(&mut self) -> (usize, u64) {
        // L ← max{L | ∀l<L : n_l ≥ n_L + 2^L}, allowing one new level at the
        // end of the vector (its n_L is implicitly 0).
        let mut level = 0;
        for cand in 1..=self.allocated.len() {
            let t = 1u64 << cand;
            let n_cand = self.allocated.get(cand).copied().unwrap_or(0);
            if (0..cand).all(|l| self.allocated[l] >= n_cand + t) {
                level = cand;
            }
        }
        let timeout = 1u64 << level;
        if level == self.allocated.len() {
            self.allocated.push(0);
        }
        if self.allocated.is_empty() {
            self.allocated.push(0);
        }
        self.allocated[level] += timeout;
        (level, timeout)
    }

    /// Number of levels used so far.
    pub fn num_levels(&self) -> usize {
        self.allocated.len()
    }

    /// Total time units allocated across all levels.
    pub fn total_allocated(&self) -> u64 {
        self.allocated.iter().sum()
    }

    /// Time units allocated to `level`.
    pub fn allocated_to(&self, level: usize) -> u64 {
        self.allocated.get(level).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_iterations_follow_algorithm_1() {
        // Hand-simulated from Algorithm 1's rule
        // L ← max{L | ∀l<L : n_l ≥ n_L + 2^L}: levels 0,0 then the first
        // level-1 slot, level 2 appears at iteration 7 (cf. Figure 3).
        let mut p = PyramidScheme::new();
        let levels: Vec<usize> = (0..11).map(|_| p.next_timeout().0).collect();
        assert_eq!(levels, vec![0, 0, 1, 0, 0, 1, 2, 0, 0, 1, 0]);
    }

    #[test]
    fn lemma_5_4_level_count_is_logarithmic() {
        let mut p = PyramidScheme::new();
        let mut total = 0u64;
        for _ in 0..10_000 {
            total += p.next_timeout().1;
        }
        let bound = (total as f64).log2().ceil() as usize + 1;
        assert!(
            p.num_levels() <= bound,
            "{} levels for total {total}",
            p.num_levels()
        );
    }

    #[test]
    fn lemma_5_5_allocation_within_factor_two() {
        let mut p = PyramidScheme::new();
        for step in 0..5_000 {
            p.next_timeout();
            // Invariant: for all used levels l1, l2 with nonzero allocation,
            // n_l1 ≤ 2 · n_l2.
            let used: Vec<u64> = (0..p.num_levels())
                .map(|l| p.allocated_to(l))
                .filter(|&n| n > 0)
                .collect();
            let max = used.iter().copied().max().unwrap();
            let min = used.iter().copied().min().unwrap();
            assert!(
                max <= 2 * min,
                "imbalance at step {step}: max {max} min {min}"
            );
        }
    }

    #[test]
    fn timeouts_are_powers_of_two() {
        let mut p = PyramidScheme::new();
        for _ in 0..500 {
            let (level, timeout) = p.next_timeout();
            assert_eq!(timeout, 1u64 << level);
        }
    }
}
