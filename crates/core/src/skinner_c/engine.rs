//! The Skinner-C main loop (paper Algorithm 3).

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_exec::{
    postprocess, ExecContext, ExecMetrics, ExecOutcome, QueryResult, Span, SpanTimer, WorkBudget,
};
use skinner_query::{JoinGraph, JoinQuery, TableSet};
use skinner_storage::RowId;
use skinner_uct::{UctConfig, UctTree};

use crate::cache::CacheProbe;
use crate::config::SkinnerCConfig;

use super::join::{continue_join, MultiwayCtx, OrderInfo, SliceOutcome};
use super::preproc::prepare;
use super::result_set::ResultSet;
use super::reward::slice_reward;
use super::state::ProgressTracker;

/// Evaluate `query` with Skinner-C. The outcome's [`ExecMetrics`] carry the
/// instrumentation feeding the paper's convergence and memory experiments
/// (Figures 7 and 8): `order` is the most-visited join order at
/// termination (replayed in Tables 3/4).
pub fn run_skinner_c(query: &JoinQuery, ctx: &ExecContext, cfg: &SkinnerCConfig) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let m = query.num_tables();

    macro_rules! bail_timeout {
        ($final_order:expr, $aux:expr) => {{
            ctx.absorb_work(budget.used());
            return ExecOutcome::timeout(columns.clone(), budget.used(), start.elapsed())
                .with_metrics(ExecMetrics {
                    order: $final_order,
                    total_aux_bytes: $aux,
                    ..ExecMetrics::default()
                });
        }};
    }

    let trace = ctx.trace();
    let pre_timer = SpanTimer::start(trace, "preprocess");
    let prepared = match prepare(query, &budget, cfg.preprocess_threads, cfg.use_jump_indexes) {
        Ok(p) => p,
        Err(_) => bail_timeout!((0..m).collect(), 0),
    };
    pre_timer.finish(prepared.pages_skipped);
    let mctx: &MultiwayCtx = &prepared.ctx;
    let cards: Vec<RowId> = mctx.tables.iter().map(|t| t.cardinality()).collect();

    let graph: JoinGraph = query.join_graph();
    let mut uct = UctTree::new(
        graph.clone(),
        UctConfig {
            exploration_weight: cfg.exploration_weight,
            seed: cfg.seed,
        },
    );
    // Cross-query learning: when the context carries a template cache,
    // warm-start the tree from the decayed prior of a previous execution
    // of the same template. Purely a learning bias — the offsets
    // discipline keeps results identical whatever orders get explored.
    let probe = if cfg.learning {
        CacheProbe::probe(ctx, query)
    } else {
        None
    };
    let mut cache_hit = 0u64;
    let mut warm_start_visits = 0u64;
    let mut warm_start_generalized = 0u64;
    if let Some(p) = &probe {
        if let Some(warm) = p.lookup() {
            warm_start_visits = uct.seed_prior(&warm.prior, p.decay());
            cache_hit = 1;
            warm_start_generalized = warm.generalized as u64;
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1CE);
    let mut tracker = ProgressTracker::new(m, cfg.share_progress);
    let mut results = ResultSet::new();
    let mut offsets: Vec<RowId> = vec![0; m];
    let mut order_infos: HashMap<Box<[u8]>, OrderInfo> = HashMap::new();
    let mut order_counts: HashMap<Box<[u8]>, u64> = HashMap::new();
    let mut tree_growth: Vec<(u64, usize)> = Vec::new();
    let mut slices = 0u64;
    let mut timed_out = false;
    // Convergence instrumentation: the episode index of the last join-order
    // switch — after it the engine executed one order exclusively. Warm
    // starts should lock in measurably earlier (the `repeat_workload`
    // benchmark reads this).
    let mut last_order_switch = 0u64;
    let mut prev_order_key: Option<Box<[u8]>> = None;
    // Regret proxy: how many times the chosen order changed between
    // consecutive slices (0 = the engine converged instantly).
    let mut order_switches = 0u64;
    // Per-order episode attribution: one span per contiguous run of
    // slices on the same order. The label is built only when the order
    // *switches* — a cold, converging event — so steady-state slices
    // allocate nothing.
    let mut run_start_ns = trace.map(|t| t.now_ns()).unwrap_or(0);
    let mut run_slices = 0u64;
    let mut run_label = String::new();

    // Skinner-C terminates once any table's offset passes its end (all its
    // tuples fully joined) — including the degenerate empty-table case.
    let finished_by_offsets =
        |offsets: &[RowId], cards: &[RowId]| offsets.iter().zip(cards).any(|(&o, &n)| o >= n);

    if !query.always_false {
        while !finished_by_offsets(&offsets, &cards) {
            // Cooperative cancellation/deadline: checked once per slice, the
            // engine's natural preemption point.
            if ctx.interrupted() {
                timed_out = true;
                break;
            }
            // Join order for this slice: UCT choice, or uniform random for
            // the ablation baseline.
            let order = if cfg.learning {
                uct.choose()
            } else {
                random_order(&graph, &mut rng)
            };
            let key: Box<[u8]> = order.iter().map(|&t| t as u8).collect();
            if prev_order_key.as_deref() != Some(&key[..]) {
                if prev_order_key.is_some() {
                    order_switches += 1;
                }
                if let Some(t) = trace {
                    if !run_label.is_empty() {
                        t.push(Span {
                            stage: "episodes",
                            label: std::mem::take(&mut run_label),
                            start_ns: run_start_ns,
                            dur_ns: t.now_ns().saturating_sub(run_start_ns),
                            detail: run_slices,
                        });
                    }
                    run_start_ns = t.now_ns();
                    run_slices = 0;
                    run_label = format!("order={order:?}");
                }
                last_order_switch = slices + 1;
                prev_order_key = Some(key.clone());
            }
            let info = order_infos
                .entry(key.clone())
                .or_insert_with(|| OrderInfo::build(query, mctx, &order, cfg.use_jump_indexes));
            let mut state = tracker.restore(&order, &offsets);
            let before = state.clone();
            let outcome = match continue_join(
                mctx,
                info,
                &mut state,
                &offsets,
                cfg.slice_steps,
                &budget,
                &mut results,
            ) {
                Ok(o) => o,
                Err(_) => {
                    timed_out = true;
                    break;
                }
            };
            let finished = outcome == SliceOutcome::Finished;
            if cfg.learning {
                let r = slice_reward(cfg.reward, &order, &before, &state, &cards, finished);
                uct.update(&order, r);
            }
            tracker.backup(&order, &state);
            // Left-most cursor advances the global offset: those tuples are
            // now joined with everything.
            let t0 = order[0];
            offsets[t0] = offsets[t0].max(state.s[t0]);
            if finished {
                offsets[t0] = offsets[t0].max(cards[t0]);
            }
            slices += 1;
            run_slices += 1;
            *order_counts.entry(key).or_insert(0) += 1;
            if slices.is_power_of_two() || slices.is_multiple_of(256) {
                tree_growth.push((slices, uct.num_nodes()));
            }
        }
    }
    tree_growth.push((slices, uct.num_nodes()));
    // Close the final per-order episode run.
    if let Some(t) = trace {
        if !run_label.is_empty() {
            t.push(Span {
                stage: "episodes",
                label: run_label,
                start_ns: run_start_ns,
                dur_ns: t.now_ns().saturating_sub(run_start_ns),
                detail: run_slices,
            });
        }
    }

    let result_tuples = results.len() as u64;
    let result_set_bytes = results.byte_size();
    let total_aux_bytes =
        uct.byte_size() + tracker.byte_size() + result_set_bytes + prepared.index_bytes;

    let post_timer = SpanTimer::start(trace, "postprocess");
    let result = if timed_out {
        QueryResult::empty(columns)
    } else {
        let tuples = results.into_tuples();
        match postprocess(&mctx.tables, query, &tuples, &budget) {
            Ok(r) => r,
            Err(_) => {
                timed_out = true;
                QueryResult::empty(columns)
            }
        }
    };
    post_timer.finish(result_tuples);

    let mut order_slice_counts: Vec<(Vec<usize>, u64)> = order_counts
        .into_iter()
        .map(|(k, v)| (k.iter().map(|&b| b as usize).collect(), v))
        .collect();
    order_slice_counts.sort_by_key(|e| std::cmp::Reverse(e.1));

    // Publish the finished tree's statistics for the next query of this
    // template, with the run's convergence cost (total episodes) as drift
    // feedback. Timed-out runs publish nothing: their trees are dominated
    // by orders the abandonment discipline already rejected.
    if let Some(p) = &probe {
        if !timed_out && slices > 0 {
            p.publish(uct.extract_prior(p.max_entries()), slices);
        }
    }

    ctx.absorb_work(budget.used());
    ExecOutcome {
        result,
        work_units: budget.used(),
        wall: start.elapsed(),
        timed_out,
        metrics: ExecMetrics {
            order: uct.best_order(),
            result_tuples,
            slices,
            uct_nodes: uct.num_nodes(),
            tracker_nodes: tracker.num_trie_nodes(),
            result_set_bytes,
            total_aux_bytes,
            tree_growth,
            order_slice_counts,
            pages_read: prepared.pages_read,
            pages_skipped: prepared.pages_skipped,
            ..ExecMetrics::default()
        }
        .with_counter("cache_hit", cache_hit)
        .with_counter("warm_start_visits", warm_start_visits)
        .with_counter("warm_start_generalized", warm_start_generalized)
        .with_counter("last_order_switch", last_order_switch)
        .with_counter("order_switches", order_switches),
    }
}

/// Run the Skinner-C multi-way join engine with one *fixed* join order —
/// no learning, no switching. This is the "Skinner engine / forced order"
/// configuration replayed in the paper's Tables 3 and 4 (executing final
/// Skinner orders and C_out-optimal orders inside each engine).
pub fn run_skinner_c_fixed(
    query: &JoinQuery,
    ctx: &ExecContext,
    order: &[usize],
    cfg: &SkinnerCConfig,
) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let m = query.num_tables();
    assert_eq!(order.len(), m, "order must cover all tables");
    let mut timed_out = false;
    let mut results = ResultSet::new();
    let mut slices = 0u64;

    let empty = QueryResult::empty(columns.clone());
    let prepared = match prepare(query, &budget, cfg.preprocess_threads, cfg.use_jump_indexes) {
        Ok(p) => p,
        Err(_) => {
            ctx.absorb_work(budget.used());
            return ExecOutcome::timeout(columns, budget.used(), start.elapsed()).with_metrics(
                ExecMetrics {
                    order: order.to_vec(),
                    ..ExecMetrics::default()
                },
            );
        }
    };
    let mctx = &prepared.ctx;
    let cards: Vec<RowId> = mctx.tables.iter().map(|t| t.cardinality()).collect();
    let offsets: Vec<RowId> = vec![0; m];
    let info = OrderInfo::build(query, mctx, order, cfg.use_jump_indexes);
    let mut state = super::state::JoinState::fresh(&offsets);
    if !query.always_false && cards.iter().all(|&n| n > 0) {
        loop {
            if ctx.interrupted() {
                timed_out = true;
                break;
            }
            slices += 1;
            match continue_join(
                mctx,
                &info,
                &mut state,
                &offsets,
                cfg.slice_steps,
                &budget,
                &mut results,
            ) {
                Ok(SliceOutcome::Finished) => break,
                Ok(SliceOutcome::Budget) => {}
                Err(_) => {
                    timed_out = true;
                    break;
                }
            }
        }
    }
    let result_tuples = results.len() as u64;
    let result_set_bytes = results.byte_size();
    let result = if timed_out {
        empty
    } else {
        let tuples = results.into_tuples();
        match postprocess(&mctx.tables, query, &tuples, &budget) {
            Ok(r) => r,
            Err(_) => {
                timed_out = true;
                empty
            }
        }
    };
    ctx.absorb_work(budget.used());
    ExecOutcome {
        result,
        work_units: budget.used(),
        wall: start.elapsed(),
        timed_out,
        metrics: ExecMetrics {
            order: order.to_vec(),
            result_tuples,
            slices,
            result_set_bytes,
            total_aux_bytes: result_set_bytes + prepared.index_bytes,
            pages_read: prepared.pages_read,
            pages_skipped: prepared.pages_skipped,
            ..ExecMetrics::default()
        },
    }
}

/// Uniformly random valid join order (learning ablation).
fn random_order(graph: &JoinGraph, rng: &mut StdRng) -> Vec<usize> {
    let m = graph.num_tables();
    let mut order = Vec::with_capacity(m);
    let mut selected = TableSet::EMPTY;
    while order.len() < m {
        let eligible: Vec<usize> = graph.eligible_next(selected).iter().collect();
        let t = eligible[rng.gen_range(0..eligible.len())];
        order.push(t);
        selected.insert(t);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..60 {
            a.push_row(&[Value::Int(i), Value::Int(i % 6)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..90 {
            b.push_row(&[Value::Int(i % 60), Value::Int(i % 12)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..12 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn matches_reference_on_various_queries() {
        let cat = setup();
        for sql in [
            "SELECT a.id, b.w FROM a, b WHERE a.id = b.aid",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
            "SELECT a.id FROM a WHERE a.g = 3 ORDER BY a.id LIMIT 4",
            "SELECT a.id FROM a, c WHERE a.id + c.bw = 20",
        ] {
            let q = bind(sql, &cat);
            let out = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
            assert!(!out.timed_out, "{sql}");
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn tiny_slices_still_complete() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let cfg = SkinnerCConfig {
            slice_steps: 7,
            ..Default::default()
        };
        let out = run_skinner_c(&q, &ExecContext::default(), &cfg);
        assert!(!out.timed_out);
        assert!(out.metrics.slices > 10);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn all_feature_toggle_combinations_agree() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw AND a.g = 1",
            &cat,
        );
        let expected = run_reference(&q).canonical_rows();
        for jumps in [true, false] {
            for learning in [true, false] {
                for sharing in [true, false] {
                    let cfg = SkinnerCConfig {
                        use_jump_indexes: jumps,
                        learning,
                        share_progress: sharing,
                        slice_steps: 64,
                        ..Default::default()
                    };
                    let out = run_skinner_c(&q, &ExecContext::default(), &cfg);
                    assert_eq!(
                        out.result.canonical_rows(),
                        expected,
                        "jumps={jumps} learning={learning} sharing={sharing}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_table_query_works() {
        let cat = setup();
        let q = bind(
            "SELECT a.g, COUNT(*) c FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let out = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
        assert_eq!(out.result.num_rows(), 6);
        assert_eq!(out.result.rows[0][1], Value::Int(10));
    }

    #[test]
    fn always_false_query_is_empty() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a WHERE 1 = 2", &cat);
        let out = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
    }

    #[test]
    fn work_limit_times_out() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = SkinnerCConfig {
            work_limit: 50,
            ..Default::default()
        };
        let out = run_skinner_c(&q, &ExecContext::default(), &cfg);
        assert!(out.timed_out);
    }

    #[test]
    fn cancellation_token_interrupts_cleanly() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cancel = skinner_exec::CancelToken::new();
        cancel.cancel();
        let ctx = ExecContext::default().with_cancel(cancel);
        let out = run_skinner_c(&q, &ctx, &SkinnerCConfig::default());
        assert!(out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn instrumentation_is_populated() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let cfg = SkinnerCConfig {
            slice_steps: 16,
            ..Default::default()
        };
        let out = run_skinner_c(&q, &ExecContext::default(), &cfg);
        let m = &out.metrics;
        assert!(m.uct_nodes >= 1);
        assert!(m.tracker_nodes >= 1);
        assert!(!m.tree_growth.is_empty());
        assert!(!m.order_slice_counts.is_empty());
        assert_eq!(m.order.len(), 3);
        let total: u64 = m.order_slice_counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, m.slices);
    }

    #[test]
    fn fixed_order_matches_learned_run() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let learned = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let fixed = run_skinner_c_fixed(
                &q,
                &ExecContext::default(),
                &order,
                &SkinnerCConfig::default(),
            );
            assert!(!fixed.timed_out);
            assert_eq!(
                fixed.result.canonical_rows(),
                learned.result.canonical_rows(),
                "{order:?}"
            );
        }
    }

    #[test]
    fn empty_filtered_table_terminates_immediately() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 1000",
            &cat,
        );
        let out = run_skinner_c(&q, &ExecContext::default(), &SkinnerCConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert_eq!(out.metrics.slices, 0);
    }
}
