//! The depth-first multi-way join (paper Algorithm 2, Figure 5).
//!
//! Execution fixes one tuple per predecessor table before considering
//! successor tuples, so the "intermediate result" is always exactly one
//! partial tuple — the execution state the progress tracker snapshots.
//! For equality predicates, sorted-posting hash indexes allow jumping
//! directly to the next tuple index that can match (Section 4.5's
//! extension), turning the scan into an index-nested-loop per level.

use std::collections::HashMap;
use std::sync::Arc;

use skinner_exec::{Timeout, WorkBudget};
use skinner_query::expr::{CmpOp, ColRef, EvalCtx, Expr};
use skinner_query::JoinQuery;
use skinner_storage::{HashIndex, RowId, Table};

use super::result_set::ResultSet;
use super::state::JoinState;

/// Immutable join context shared by all time slices of one query.
pub struct MultiwayCtx {
    pub tables: Vec<Arc<Table>>,
    /// Hash indexes on equality-join columns: `(table, column)` → index.
    pub indexes: HashMap<(usize, usize), HashIndex>,
    pub interner: Arc<skinner_storage::Interner>,
}

/// Per-join-order evaluation plan, built once per distinct order.
#[derive(Debug)]
pub struct OrderInfo {
    pub order: Vec<usize>,
    /// Per position: indexable equality predicates `(column on this table,
    /// column of an earlier table)`.
    jumps: Vec<Vec<(usize, ColRef)>>,
    /// Per position: remaining predicates to evaluate (generic predicates
    /// and, with jumps disabled, equality predicates as expressions).
    checks: Vec<Vec<Expr>>,
}

impl OrderInfo {
    /// Analyze `order`, splitting predicates into index jumps and checks.
    pub fn build(query: &JoinQuery, ctx: &MultiwayCtx, order: &[usize], use_jumps: bool) -> Self {
        let m = order.len();
        let mut jumps: Vec<Vec<(usize, ColRef)>> = vec![Vec::new(); m];
        let mut checks: Vec<Vec<Expr>> = vec![Vec::new(); m];
        let pos_of: HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for p in &query.equi_preds {
            let (Some(&pl), Some(&pr)) = (pos_of.get(&p.left.table), pos_of.get(&p.right.table))
            else {
                continue; // predicate outside this (sub-)order
            };
            // The predicate becomes applicable at the later position.
            let (pos, mine, other) = if pl > pr {
                (pl, p.left, p.right)
            } else {
                (pr, p.right, p.left)
            };
            if use_jumps && ctx.indexes.contains_key(&(mine.table, mine.col)) {
                jumps[pos].push((mine.col, other));
            } else {
                let dt = query.col_type(mine);
                checks[pos].push(Expr::Cmp {
                    op: CmpOp::Eq,
                    left: Box::new(Expr::Col(mine, dt)),
                    right: Box::new(Expr::Col(other, dt)),
                });
            }
        }
        for p in &query.generic_preds {
            // Applicable at the latest position among its tables.
            let Some(pos) = p
                .tables
                .iter()
                .map(|t| pos_of.get(&t).copied())
                .collect::<Option<Vec<_>>>()
                .map(|v| v.into_iter().max().unwrap())
            else {
                continue;
            };
            checks[pos].push(p.expr.clone());
        }
        OrderInfo {
            order: order.to_vec(),
            jumps,
            checks,
        }
    }
}

/// Outcome of one [`continue_join`] time slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The budgeted number of steps elapsed.
    Budget,
    /// The left-most table was exhausted: the query result is complete.
    Finished,
}

/// `ContinueJoin` (Algorithm 2): run the multi-way join for `order` starting
/// from `state`, for at most `max_steps` outer-loop iterations, inserting
/// result tuples into `results`. Offsets exclude globally fully-joined rows
/// at every level. Work units are charged per step, index probe and
/// predicate evaluation.
pub fn continue_join(
    ctx: &MultiwayCtx,
    info: &OrderInfo,
    state: &mut JoinState,
    offsets: &[RowId],
    max_steps: u64,
    budget: &WorkBudget,
    results: &mut ResultSet,
) -> Result<SliceOutcome, Timeout> {
    continue_join_ranged(
        ctx,
        info,
        state,
        offsets,
        max_steps,
        budget,
        results,
        RowId::MAX,
    )
}

/// [`continue_join`] restricted to left-most rows `< level0_end`: the
/// outermost loop finishes once its cursor passes `level0_end` instead of
/// the table's cardinality. Parallel execution partitions the left-most
/// table into `[start, end)` chunks and runs one such bounded join per
/// worker (the chunk's `start` enters through `offsets`); everything below
/// level 0 is identical to the sequential join.
#[allow(clippy::too_many_arguments)]
pub fn continue_join_ranged(
    ctx: &MultiwayCtx,
    info: &OrderInfo,
    state: &mut JoinState,
    offsets: &[RowId],
    max_steps: u64,
    budget: &WorkBudget,
    results: &mut ResultSet,
    level0_end: RowId,
) -> Result<SliceOutcome, Timeout> {
    let m = info.order.len();
    let mut steps = 0u64;
    loop {
        if steps >= max_steps {
            return Ok(SliceOutcome::Budget);
        }
        steps += 1;
        budget.charge(1)?;
        let depth = state.depth;
        let ti = info.order[depth];
        let bound = if depth == 0 { level0_end } else { RowId::MAX };
        match next_candidate(ctx, info, state, depth, offsets, budget, bound)? {
            None => {
                // Level exhausted: reset and backtrack.
                state.s[ti] = offsets[ti];
                if depth == 0 {
                    return Ok(SliceOutcome::Finished);
                }
                state.depth -= 1;
                let tprev = info.order[state.depth];
                state.s[tprev] += 1;
            }
            Some(row) => {
                state.s[ti] = row;
                let checks = &info.checks[depth];
                let ok = if checks.is_empty() {
                    true
                } else {
                    budget.charge(checks.len() as u64)?;
                    let ectx = EvalCtx::new(&ctx.tables, &state.s, &ctx.interner);
                    checks.iter().all(|c| c.eval_bool(&ectx))
                };
                if !ok {
                    state.s[ti] = row + 1;
                } else if depth == m - 1 {
                    if results.insert(&state.s) {
                        budget.produce_tuples(1)?;
                    }
                    state.s[ti] = row + 1;
                } else {
                    state.depth += 1;
                    let tnext = info.order[state.depth];
                    state.s[tnext] = offsets[tnext];
                }
            }
        }
    }
}

/// Find the next candidate row `>= max(s[ti], offset)` satisfying all
/// indexable equality predicates at `depth`, leapfrogging across their
/// posting lists. `None` when the level is exhausted (cardinality or the
/// caller's `bound`, whichever is lower).
#[allow(clippy::too_many_arguments)]
fn next_candidate(
    ctx: &MultiwayCtx,
    info: &OrderInfo,
    state: &JoinState,
    depth: usize,
    offsets: &[RowId],
    budget: &WorkBudget,
    bound: RowId,
) -> Result<Option<RowId>, Timeout> {
    let ti = info.order[depth];
    let n = ctx.tables[ti].cardinality().min(bound);
    let mut cur = state.s[ti].max(offsets[ti]);
    let jumps = &info.jumps[depth];
    if jumps.is_empty() {
        return Ok((cur < n).then_some(cur));
    }
    'outer: loop {
        if cur >= n {
            return Ok(None);
        }
        for &(col, other) in jumps {
            budget.charge(1)?;
            let key = ctx.tables[other.table]
                .column(other.col)
                .key_at(state.s[other.table]);
            match ctx.indexes[&(ti, col)].next_match(key, cur) {
                None => return Ok(None),
                Some(m) if m > cur => {
                    cur = m;
                    continue 'outer;
                }
                Some(_) => {}
            }
        }
        return Ok(Some(cur));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int)]);
        for i in 0..6 {
            a.push_row(&[Value::Int(i)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..9 {
            b.push_row(&[Value::Int(i % 6), Value::Int(i % 3)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..3 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    fn ctx_for(q: &JoinQuery) -> MultiwayCtx {
        let mut indexes = HashMap::new();
        for (t, table) in q.tables.iter().enumerate() {
            for col in q.equi_join_columns(t) {
                indexes.insert((t, col), HashIndex::build(table.column(col)));
            }
        }
        MultiwayCtx {
            tables: q.tables.clone(),
            indexes,
            interner: q.tables[0].interner().clone(),
        }
    }

    fn run_to_completion(q: &JoinQuery, order: &[usize], use_jumps: bool) -> (ResultSet, u64) {
        let ctx = ctx_for(q);
        let info = OrderInfo::build(q, &ctx, order, use_jumps);
        let offsets = vec![0; q.num_tables()];
        let mut state = JoinState::fresh(&offsets);
        let mut results = ResultSet::new();
        let budget = WorkBudget::unlimited();
        let mut slices = 0;
        loop {
            slices += 1;
            match continue_join(&ctx, &info, &mut state, &offsets, 64, &budget, &mut results)
                .unwrap()
            {
                SliceOutcome::Finished => break,
                SliceOutcome::Budget => {}
            }
            assert!(slices < 10_000, "no convergence");
        }
        (results, budget.used())
    }

    #[test]
    fn completes_chain_join_in_any_order() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        // Every b row joins one a and one c → 9 results.
        let (r1, _) = run_to_completion(&q, &[0, 1, 2], true);
        assert_eq!(r1.len(), 9);
        let (r2, _) = run_to_completion(&q, &[2, 1, 0], true);
        assert_eq!(r2.len(), 9);
        let (r3, _) = run_to_completion(&q, &[1, 0, 2], true);
        assert_eq!(r3.len(), 9);
    }

    #[test]
    fn jumps_match_scan_semantics() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let (with_jumps, work_jumps) = run_to_completion(&q, &[0, 1, 2], true);
        let (without, work_scan) = run_to_completion(&q, &[0, 1, 2], false);
        let norm = |r: ResultSet| {
            let mut v: Vec<Vec<RowId>> = r.into_tuples().iter().map(|t| t.to_vec()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(with_jumps), norm(without));
        // Index jumps skip non-matching tuples: strictly less work here.
        assert!(work_jumps < work_scan, "{work_jumps} !< {work_scan}");
    }

    #[test]
    fn resume_from_backup_is_seamless() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let ctx = ctx_for(&q);
        let info = OrderInfo::build(&q, &ctx, &[0, 1], true);
        let offsets = vec![0, 0];
        let budget = WorkBudget::unlimited();
        // Reference: run to completion in one go.
        let mut full_state = JoinState::fresh(&offsets);
        let mut full = ResultSet::new();
        while continue_join(
            &ctx,
            &info,
            &mut full_state,
            &offsets,
            u64::MAX,
            &budget,
            &mut full,
        )
        .unwrap()
            != SliceOutcome::Finished
        {}
        // Interrupted: two-step slices with state carried across.
        let mut state = JoinState::fresh(&offsets);
        let mut partial = ResultSet::new();
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            if continue_join(&ctx, &info, &mut state, &offsets, 2, &budget, &mut partial).unwrap()
                == SliceOutcome::Finished
            {
                break;
            }
        }
        assert_eq!(full.len(), partial.len());
    }

    #[test]
    fn offsets_skip_rows_at_every_level() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let ctx = ctx_for(&q);
        let info = OrderInfo::build(&q, &ctx, &[0, 1], true);
        // Offset 3 on table a: rows 0..3 are excluded.
        let offsets = vec![3, 0];
        let mut state = JoinState::fresh(&offsets);
        let mut results = ResultSet::new();
        let budget = WorkBudget::unlimited();
        while continue_join(
            &ctx,
            &info,
            &mut state,
            &offsets,
            u64::MAX,
            &budget,
            &mut results,
        )
        .unwrap()
            != SliceOutcome::Finished
        {}
        // b rows with aid ∈ {3,4,5}: i%6 ∈ {3,4,5} for i in 0..9 → 4 rows
        // (3,4,5 and none above 8 → rows 3,4,5 plus none) → count them.
        let expected = (0..9).filter(|i| i % 6 >= 3).count();
        assert_eq!(results.len(), expected);
    }

    #[test]
    fn ranged_chunks_union_to_the_full_join() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let ctx = ctx_for(&q);
        let order = [1usize, 0, 2]; // leftmost table b, 9 rows
        let info = OrderInfo::build(&q, &ctx, &order, true);
        let budget = WorkBudget::unlimited();
        let (full, _) = run_to_completion(&q, &order, true);
        // Split b's rows into 3 chunks and run each to completion.
        let mut union = ResultSet::new();
        for (lo, hi) in [(0u32, 3u32), (3, 7), (7, 9)] {
            let mut offsets = vec![0; q.num_tables()];
            offsets[1] = lo;
            let mut state = JoinState::fresh(&offsets);
            let mut chunk = ResultSet::new();
            loop {
                let out = continue_join_ranged(
                    &ctx, &info, &mut state, &offsets, 8, &budget, &mut chunk, hi,
                )
                .unwrap();
                if out == SliceOutcome::Finished {
                    break;
                }
            }
            for t in chunk.into_tuples() {
                assert!(union.insert(&t), "chunks produced overlapping tuple {t:?}");
            }
        }
        assert_eq!(union.len(), full.len());
    }

    #[test]
    fn budget_timeout_propagates() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let ctx = ctx_for(&q);
        let info = OrderInfo::build(&q, &ctx, &[0, 1], true);
        let offsets = vec![0, 0];
        let mut state = JoinState::fresh(&offsets);
        let mut results = ResultSet::new();
        let budget = WorkBudget::with_limit(3);
        let r = continue_join(
            &ctx,
            &info,
            &mut state,
            &offsets,
            u64::MAX,
            &budget,
            &mut results,
        );
        assert!(matches!(r, Err(Timeout)));
    }

    #[test]
    fn empty_table_finishes_immediately() {
        let cat = setup();
        let e = cat.builder("emp", schema![("x", Int)]);
        cat.register(e.finish());
        let q = bind("SELECT a.id FROM a, emp WHERE a.id = emp.x", &cat);
        let (r, _) = run_to_completion(&q, &[1, 0], true);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn cartesian_product_when_unconnected() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, c", &cat);
        let (r, _) = run_to_completion(&q, &[0, 1], true);
        assert_eq!(r.len(), 18);
    }

    #[test]
    fn generic_predicates_checked_at_latest_position() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, c WHERE a.id + c.bw = 4", &cat);
        let (r, _) = run_to_completion(&q, &[1, 0], true);
        // pairs (id, bw) with id + bw = 4: (4,0),(3,1),(2,2) → 3.
        assert_eq!(r.len(), 3);
    }
}
