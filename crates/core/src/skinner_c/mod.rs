//! Skinner-C: the customized execution engine (paper Section 4.5).
//!
//! The engine is designed around three desiderata the paper derives from
//! regret-bounded evaluation:
//!
//! 1. **Minimal join-order switching overhead** — execution state is a
//!    single vector of tuple indices ([`state::JoinState`]); switching orders
//!    is a vector copy.
//! 2. **No progress loss on interruption** — state is backed up after every
//!    time slice and restored on re-selection ([`state::ProgressTracker`]).
//! 3. **Progress sharing across join orders** — per-table offsets exclude
//!    fully-joined tuples for *all* orders, and orders sharing a prefix
//!    fast-forward each other ([`state::ProgressTracker::restore`]).
//!
//! The multi-way join ([`join`]) keeps at most one intermediate tuple alive
//! (Algorithm 2 / Figure 5) and uses hash indexes to jump over tuples that
//! cannot satisfy equality predicates.

pub mod engine;
pub mod join;
pub mod preproc;
pub mod result_set;
pub mod reward;
pub mod state;
