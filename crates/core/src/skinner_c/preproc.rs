//! Skinner-C pre-processing (`PreprocessingC` in Algorithm 3).
//!
//! Filters base tables through the shared pre-processor, then builds hash
//! indexes on every column involved in an equality join predicate — over the
//! *filtered* tuples only, which is why the paper calls the overhead of
//! supporting all join orders "typically small". Index construction is the
//! parallelizable part of SkinnerDB (Section 6.1).

use std::collections::HashMap;
use std::sync::Arc;

use skinner_exec::{preprocess, Timeout, WorkBudget};
use skinner_query::JoinQuery;
use skinner_storage::{HashIndex, Table};

use super::join::MultiwayCtx;

/// Filtered tables plus equality-join hash indexes.
pub struct PreparedC {
    pub ctx: MultiwayCtx,
    pub base_rows: Vec<usize>,
    /// Bytes spent on hash indexes (memory accounting).
    pub index_bytes: usize,
    /// Zone-mapped pages evaluated / skipped during pre-processing.
    pub pages_read: u64,
    pub pages_skipped: u64,
}

/// Run pre-processing for Skinner-C.
pub fn prepare(
    query: &JoinQuery,
    budget: &WorkBudget,
    threads: usize,
    build_indexes: bool,
) -> Result<PreparedC, Timeout> {
    let pre = preprocess(query, budget, threads)?;
    let mut indexes = HashMap::new();
    let mut index_bytes = 0;
    if build_indexes {
        // Collect the (table, column) pairs needing indexes.
        let mut targets: Vec<(usize, usize)> = Vec::new();
        for (t, _) in pre.tables.iter().enumerate() {
            for col in query.equi_join_columns(t) {
                targets.push((t, col));
            }
        }
        let built: Vec<((usize, usize), HashIndex)> = if threads > 1 && targets.len() > 1 {
            build_parallel(&pre.tables, &targets, budget, threads)?
        } else {
            let mut v = Vec::with_capacity(targets.len());
            for &(t, col) in &targets {
                budget.charge(pre.tables[t].num_rows() as u64)?;
                v.push(((t, col), HashIndex::build(pre.tables[t].column(col))));
            }
            v
        };
        for (key, idx) in built {
            index_bytes += idx.byte_size();
            indexes.insert(key, idx);
        }
    }
    let interner = pre.tables[0].interner().clone();
    Ok(PreparedC {
        ctx: MultiwayCtx {
            tables: pre.tables,
            indexes,
            interner,
        },
        base_rows: pre.base_rows,
        index_bytes,
        pages_read: pre.pages_read,
        pages_skipped: pre.pages_skipped,
    })
}

/// One built jump index, keyed by (table, column).
type BuiltIndex = ((usize, usize), HashIndex);

fn build_parallel(
    tables: &[Arc<Table>],
    targets: &[(usize, usize)],
    budget: &WorkBudget,
    threads: usize,
) -> Result<Vec<BuiltIndex>, Timeout> {
    let chunk = targets.len().div_ceil(threads).max(1);
    let results: Vec<Result<Vec<BuiltIndex>, Timeout>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in targets.chunks(chunk) {
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::with_capacity(part.len());
                for &(t, col) in part {
                    budget.charge(tables[t].num_rows() as u64)?;
                    out.push(((t, col), HashIndex::build(tables[t].column(col))));
                }
                Ok(out)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("index build thread panicked");
    let mut all = Vec::new();
    for r in results {
        all.extend(r?);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("x", Int)]);
        for i in 0..50 {
            a.push_row(&[Value::Int(i), Value::Int(i % 5)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int)]);
        for i in 0..30 {
            b.push_row(&[Value::Int(i)]);
        }
        cat.register(b.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn indexes_built_on_filtered_join_columns() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid AND a.x = 0", &cat);
        let budget = WorkBudget::unlimited();
        let p = prepare(&q, &budget, 1, true).unwrap();
        // Filtered a: ids 0,5,10,… (10 rows).
        assert_eq!(p.ctx.tables[0].num_rows(), 10);
        let idx = &p.ctx.indexes[&(0, 0)];
        // Index covers filtered rows only.
        assert_eq!(idx.num_keys(), 10);
        assert!(p.ctx.indexes.contains_key(&(1, 0)));
        assert!(p.index_bytes > 0);
    }

    #[test]
    fn no_indexes_when_disabled() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let budget = WorkBudget::unlimited();
        let p = prepare(&q, &budget, 1, false).unwrap();
        assert!(p.ctx.indexes.is_empty());
        assert_eq!(p.index_bytes, 0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let b1 = WorkBudget::unlimited();
        let b4 = WorkBudget::unlimited();
        let serial = prepare(&q, &b1, 1, true).unwrap();
        let parallel = prepare(&q, &b4, 4, true).unwrap();
        assert_eq!(serial.ctx.indexes.len(), parallel.ctx.indexes.len());
        for (key, idx) in &serial.ctx.indexes {
            assert_eq!(
                idx.num_keys(),
                parallel.ctx.indexes[key].num_keys(),
                "{key:?}"
            );
        }
    }
}
