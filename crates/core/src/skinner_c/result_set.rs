//! Deduplicating result set of tuple-index vectors.
//!
//! Different join orders can generate the same result tuple; SkinnerDB
//! stores result *index vectors* in a set, so duplicates are eliminated
//! structurally (paper Section 4.5 and Theorem 5.3: vectors are unique per
//! result tuple, and set semantics keep each one once).

use std::collections::HashSet;

use skinner_exec::TupleIxs;
use skinner_storage::RowId;

/// Set of result tuples, each a row-id vector in table-position order.
#[derive(Debug, Default)]
pub struct ResultSet {
    set: HashSet<TupleIxs>,
}

impl ResultSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the tuple `s`; returns true if it was new.
    #[inline]
    pub fn insert(&mut self, s: &[RowId]) -> bool {
        // One probe before cloning keeps re-derived duplicates cheap.
        if self.set.contains(s) {
            return false;
        }
        self.set.insert(s.to_vec().into_boxed_slice())
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Drain into a vector for post-processing.
    pub fn into_tuples(self) -> Vec<TupleIxs> {
        self.set.into_iter().collect()
    }

    /// Approximate heap size in bytes (Figure 8c).
    pub fn byte_size(&self) -> usize {
        self.set
            .iter()
            .map(|t| t.len() * std::mem::size_of::<RowId>() + 16)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates() {
        let mut r = ResultSet::new();
        assert!(r.insert(&[1, 2, 3]));
        assert!(!r.insert(&[1, 2, 3]));
        assert!(r.insert(&[1, 2, 4]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn into_tuples_returns_all() {
        let mut r = ResultSet::new();
        r.insert(&[0]);
        r.insert(&[5]);
        let mut v: Vec<Vec<RowId>> = r.into_tuples().iter().map(|t| t.to_vec()).collect();
        v.sort();
        assert_eq!(v, vec![vec![0], vec![5]]);
    }

    #[test]
    fn byte_size_grows() {
        let mut r = ResultSet::new();
        let a = r.byte_size();
        r.insert(&[1, 2]);
        assert!(r.byte_size() > a);
    }
}
