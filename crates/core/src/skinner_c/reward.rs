//! Progress-based reward functions (paper Section 4.5).

use skinner_storage::RowId;

use crate::config::RewardKind;

use super::state::JoinState;

/// Total enumeration progress of `state` under `order`, in `[0,1]`:
/// `Σ_i s[j_i] / Π_{k≤i} |R_{j_k}|` — the fraction of the (virtual) full
/// tuple-combination space already swept, position-weighted exactly as the
/// paper's refined reward.
pub fn fractional_progress(order: &[usize], state: &JoinState, cards: &[RowId]) -> f64 {
    let mut scale = 1.0f64;
    let mut total = 0.0f64;
    for (i, &t) in order.iter().enumerate() {
        let n = cards[t].max(1) as f64;
        scale *= n;
        // Positions beyond the current depth carry stale cursors; they
        // contribute nothing yet.
        if i <= state.depth {
            total += state.s[t] as f64 / scale;
        }
    }
    total.clamp(0.0, 1.0)
}

/// The analysis-friendly simple variant: relative position in the left-most
/// table only (Section 5.2's assumption).
pub fn leftmost_progress(order: &[usize], state: &JoinState, cards: &[RowId]) -> f64 {
    let t0 = order[0];
    let n = cards[t0].max(1) as f64;
    (state.s[t0] as f64 / n).clamp(0.0, 1.0)
}

/// Reward for a slice: progress delta between the state before and after,
/// clamped into `[0,1]` (the UCT formulas assume this range).
pub fn slice_reward(
    kind: RewardKind,
    order: &[usize],
    before: &JoinState,
    after: &JoinState,
    cards: &[RowId],
    finished: bool,
) -> f64 {
    if finished {
        return 1.0;
    }
    let f = match kind {
        RewardKind::FractionalProgress => fractional_progress,
        RewardKind::LeftmostDelta => leftmost_progress,
    };
    (f(order, after, cards) - f(order, before, cards)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractional_progress_weighs_positions() {
        let cards = vec![10, 10];
        let order = vec![0, 1];
        let s0 = JoinState {
            s: vec![0, 0],
            depth: 0,
        };
        assert_eq!(fractional_progress(&order, &s0, &cards), 0.0);
        let s1 = JoinState {
            s: vec![5, 0],
            depth: 0,
        };
        assert!((fractional_progress(&order, &s1, &cards) - 0.5).abs() < 1e-12);
        let s2 = JoinState {
            s: vec![5, 5],
            depth: 1,
        };
        // 5/10 + 5/100 = 0.55.
        assert!((fractional_progress(&order, &s2, &cards) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn stale_positions_do_not_contribute() {
        let cards = vec![10, 10];
        let order = vec![0, 1];
        let stale = JoinState {
            s: vec![5, 9],
            depth: 0, // position 1 is stale
        };
        assert!((fractional_progress(&order, &stale, &cards) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finished_slices_earn_full_reward() {
        let cards = vec![4];
        let order = vec![0];
        let s = JoinState {
            s: vec![0],
            depth: 0,
        };
        let r = slice_reward(RewardKind::FractionalProgress, &order, &s, &s, &cards, true);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn reward_is_progress_delta() {
        let cards = vec![10, 10];
        let order = vec![0, 1];
        let before = JoinState {
            s: vec![2, 0],
            depth: 0,
        };
        let after = JoinState {
            s: vec![6, 0],
            depth: 0,
        };
        let r = slice_reward(
            RewardKind::LeftmostDelta,
            &order,
            &before,
            &after,
            &cards,
            false,
        );
        assert!((r - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_tables_do_not_divide_by_zero() {
        let cards = vec![0, 0];
        let order = vec![0, 1];
        let s = JoinState {
            s: vec![0, 0],
            depth: 1,
        };
        assert_eq!(fractional_progress(&order, &s, &cards), 0.0);
    }
}
