//! Execution-state backup, restore, and cross-order progress sharing.
//!
//! The progress tracker realizes the paper's `BackupState`/`RestoreState`
//! (Algorithm 3) including both sharing mechanisms of Section 4.5:
//!
//! * exact per-join-order states (a trie-backed map: one tuple-index cursor
//!   per table plus the depth-first position), and
//! * prefix sharing: for every join-order *prefix* visited, the
//!   lexicographically most advanced cursor is kept; restoring an order
//!   "fast-forwards" through the best state of any other order sharing a
//!   prefix.
//!
//! Cursor semantics differ slightly from the paper's pseudo-code: our state
//! `(s, depth)` fixes rows at positions `< depth` and treats `s[order[depth]]`
//! as the *next candidate to test*. Under these half-open semantics the
//! paper's merged state `s''_p = s_p − 1` (re-entering the last fully
//! processed subtree) becomes simply "resume with candidate `s_p` at the
//! merge position and offsets below" — the same set of result tuples is
//! skipped, and re-derived duplicates are eliminated by the result set.

use std::collections::HashMap;

use skinner_storage::RowId;

/// Depth-first cursor of the multi-way join for one join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinState {
    /// Current row per *table position* (indexed by table id, not by join
    /// order position).
    pub s: Vec<RowId>,
    /// Current join-order position. Rows at positions `< depth` are fixed
    /// and satisfy all predicates applicable on their prefix;
    /// `s[order[depth]]` is the next candidate row.
    pub depth: usize,
}

impl JoinState {
    /// Fresh state: every cursor at its table offset, depth 0.
    pub fn fresh(offsets: &[RowId]) -> Self {
        JoinState {
            s: offsets.to_vec(),
            depth: 0,
        }
    }

    /// Comparable progress vector for `order`: cursors by order position,
    /// with positions beyond `depth` replaced by `offsets` (their stored
    /// values are stale).
    fn resume_vector(&self, order: &[usize], offsets: &[RowId]) -> Vec<RowId> {
        order
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if i <= self.depth {
                    self.s[t]
                } else {
                    offsets[t]
                }
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<u8, TrieNode>,
    /// Lexicographically best cursor values for this exact prefix sequence
    /// (one per prefix position).
    best: Option<Vec<RowId>>,
}

/// Backup/restore of join states with prefix sharing.
#[derive(Debug)]
pub struct ProgressTracker {
    exact: HashMap<Box<[u8]>, JoinState>,
    root: TrieNode,
    sharing: bool,
    num_tables: usize,
    trie_nodes: usize,
}

impl ProgressTracker {
    pub fn new(num_tables: usize, sharing: bool) -> Self {
        ProgressTracker {
            exact: HashMap::new(),
            root: TrieNode::default(),
            sharing,
            num_tables,
            trie_nodes: 1,
        }
    }

    /// `BackupState`: record the state reached by `order`.
    pub fn backup(&mut self, order: &[usize], state: &JoinState) {
        let key: Box<[u8]> = order.iter().map(|&t| t as u8).collect();
        self.exact.insert(key, state.clone());
        if !self.sharing {
            return;
        }
        // Update per-prefix bests for every valid prefix (fixed rows plus
        // the in-progress candidate position).
        let mut node = &mut self.root;
        let mut cursor: Vec<RowId> = Vec::with_capacity(state.depth + 1);
        for (i, &t) in order.iter().enumerate().take(state.depth + 1) {
            let _ = i;
            node = {
                let entry = node.children.entry(t as u8);
                if matches!(entry, std::collections::hash_map::Entry::Vacant(_)) {
                    self.trie_nodes += 1;
                }
                entry.or_default()
            };
            cursor.push(state.s[t]);
            let replace = match &node.best {
                None => true,
                Some(b) => cursor.as_slice() > b.as_slice(),
            };
            if replace {
                node.best = Some(cursor.clone());
            }
        }
    }

    /// `RestoreState`: the most advanced sound state for `order`, taking
    /// into account its own exact state, prefix donations from other orders,
    /// and the global offsets.
    pub fn restore(&self, order: &[usize], offsets: &[RowId]) -> JoinState {
        let mut best = JoinState::fresh(offsets);
        let mut best_vec = best.resume_vector(order, offsets);

        let mut consider = |cand: JoinState, vec: Vec<RowId>| {
            if vec > best_vec {
                best = cand;
                best_vec = vec;
            }
        };

        let key: Box<[u8]> = order.iter().map(|&t| t as u8).collect();
        if let Some(exact) = self.exact.get(&key) {
            let vec = exact.resume_vector(order, offsets);
            consider(exact.clone(), vec);
        }

        if self.sharing {
            let mut node = &self.root;
            for (k, &t) in order.iter().enumerate() {
                match node.children.get(&(t as u8)) {
                    None => break,
                    Some(child) => {
                        node = child;
                        if let Some(b) = &node.best {
                            // Fast-forward: fixed rows at positions < k, the
                            // donor's position-k value as candidate (clamped
                            // up to the current offset), offsets below.
                            let mut s = offsets.to_vec();
                            for (i, &ti) in order.iter().enumerate().take(k + 1) {
                                s[ti] = b[i];
                            }
                            let tk = order[k];
                            s[tk] = s[tk].max(offsets[tk]);
                            let cand = JoinState { s, depth: k };
                            let vec = cand.resume_vector(order, offsets);
                            consider(cand, vec);
                        }
                    }
                }
            }
        }
        best
    }

    /// Number of trie nodes (Figure 8b's progress-tracker size).
    pub fn num_trie_nodes(&self) -> usize {
        self.trie_nodes
    }

    /// Number of exact states stored.
    pub fn num_states(&self) -> usize {
        self.exact.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        let exact: usize = self
            .exact
            .iter()
            .map(|(k, v)| k.len() + v.s.len() * 4 + 24)
            .sum();
        exact + self.trie_nodes * (self.num_tables * 4 + 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(m: usize) -> ProgressTracker {
        ProgressTracker::new(m, true)
    }

    #[test]
    fn fresh_when_nothing_stored() {
        let t = tracker(3);
        let st = t.restore(&[0, 1, 2], &[4, 5, 6]);
        assert_eq!(st.s, vec![4, 5, 6]);
        assert_eq!(st.depth, 0);
    }

    #[test]
    fn exact_roundtrip() {
        let mut t = tracker(3);
        let state = JoinState {
            s: vec![7, 2, 9],
            depth: 2,
        };
        t.backup(&[0, 1, 2], &state);
        let r = t.restore(&[0, 1, 2], &[0, 0, 0]);
        assert_eq!(r, state);
    }

    #[test]
    fn prefix_sharing_fast_forwards() {
        let mut t = tracker(4);
        // Order A = [0,1,2,3] progressed far: fixed 0→50, 1→10, candidate 2→3.
        let state_a = JoinState {
            s: vec![50, 10, 3, 0],
            depth: 2,
        };
        t.backup(&[0, 1, 2, 3], &state_a);
        // Order B = [0,1,3,2] shares prefix [0,1]; it should fast-forward to
        // fixed 0→50, candidate 1→10.
        let r = t.restore(&[0, 1, 3, 2], &[0, 0, 0, 0]);
        assert_eq!(r.depth, 1);
        assert_eq!(r.s[0], 50);
        assert_eq!(r.s[1], 10);
        // Positions beyond the merge point restart at offsets.
        assert_eq!(r.s[3], 0);
    }

    #[test]
    fn own_exact_state_beats_shorter_prefix_donation() {
        let mut t = tracker(3);
        let own = JoinState {
            s: vec![80, 4, 1],
            depth: 2,
        };
        t.backup(&[0, 1, 2], &own);
        let other = JoinState {
            s: vec![70, 9, 9],
            depth: 1,
        };
        t.backup(&[0, 2, 1], &other);
        let r = t.restore(&[0, 1, 2], &[0, 0, 0]);
        // Own state has s[0]=80 > 70 from the donor → keep own.
        assert_eq!(r, own);
    }

    #[test]
    fn donor_ahead_of_own_state_wins() {
        let mut t = tracker(3);
        let own = JoinState {
            s: vec![10, 4, 1],
            depth: 2,
        };
        t.backup(&[0, 1, 2], &own);
        // A different order with the same first table got much further.
        let donor = JoinState {
            s: vec![90, 0, 5],
            depth: 1,
        };
        t.backup(&[0, 2, 1], &donor);
        let r = t.restore(&[0, 1, 2], &[0, 0, 0]);
        assert_eq!(r.depth, 0);
        assert_eq!(r.s[0], 90);
    }

    #[test]
    fn offsets_clamp_the_candidate_position() {
        let mut t = tracker(2);
        let state = JoinState {
            s: vec![3, 0],
            depth: 0,
        };
        t.backup(&[0, 1], &state);
        // Offset for table 0 advanced past the stored candidate.
        let r = t.restore(&[0, 1], &[7, 0]);
        assert_eq!(r.s[0], 7);
    }

    #[test]
    fn sharing_disabled_only_restores_exact() {
        let mut t = ProgressTracker::new(3, false);
        let donor = JoinState {
            s: vec![90, 1, 1],
            depth: 1,
        };
        t.backup(&[0, 1, 2], &donor);
        // A different order gets nothing.
        let r = t.restore(&[0, 2, 1], &[0, 0, 0]);
        assert_eq!(r, JoinState::fresh(&[0, 0, 0]));
        assert_eq!(t.num_trie_nodes(), 1); // only the root
    }

    #[test]
    fn stale_deep_positions_are_ignored_in_comparison() {
        let mut t = tracker(3);
        // depth 0: only position 0 is meaningful; s[1], s[2] are stale noise.
        let a = JoinState {
            s: vec![5, 999, 999],
            depth: 0,
        };
        t.backup(&[0, 1, 2], &a);
        let b = t.restore(&[0, 1, 2], &[0, 0, 0]);
        assert_eq!(b.depth, 0);
        assert_eq!(b.s[0], 5);
    }

    #[test]
    fn trie_size_accounting() {
        let mut t = tracker(3);
        assert_eq!(t.num_trie_nodes(), 1);
        t.backup(
            &[0, 1, 2],
            &JoinState {
                s: vec![1, 1, 1],
                depth: 2,
            },
        );
        assert_eq!(t.num_trie_nodes(), 4); // root + 3 path nodes
        t.backup(
            &[0, 2, 1],
            &JoinState {
                s: vec![1, 1, 1],
                depth: 2,
            },
        );
        assert_eq!(t.num_trie_nodes(), 6); // shares the [0] node
        assert!(t.byte_size() > 0);
        assert_eq!(t.num_states(), 2);
    }
}
