//! Skinner-G: regret-bounded evaluation on a generic engine (Algorithm 1).
//!
//! The engine is a black box that executes a forced join order over one
//! batch of the left-most table (joined with the *remaining* rows of all
//! other tables) under a destructive timeout. Skinner-G:
//!
//! * splits every table into `b` batches; processed batches are removed from
//!   all future processing (the correctness invariant of Theorem 5.1),
//! * picks a timeout *level* per iteration via the pyramid scheme,
//!   balancing total time across levels within factor two (Lemma 5.5),
//! * keeps **one UCT tree per timeout level**, so failures at low timeouts
//!   do not pollute join-order statistics at higher ones,
//! * rewards 1 if the batch completed within the timeout, else 0.
//!
//! The struct is resumable (`run_units`) because Skinner-H interleaves it
//! with traditional-optimizer executions while preserving learning state.

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skinner_exec::{
    execute_join, postprocess, preprocess, ExecContext, ExecMetrics, ExecOutcome, Preprocessed,
    QueryResult, TupleIxs, WorkBudget,
};
use skinner_query::{JoinGraph, JoinQuery, TableSet};
use skinner_storage::RowId;
use skinner_uct::{UctConfig, UctTree};

use crate::config::{OrderArmsConfig, SkinnerGConfig};
use crate::pyramid::PyramidScheme;

/// Resumable Skinner-G execution state. The final [`ExecOutcome`] reports
/// `slices` and a `timeout_levels` counter in its metrics.
pub struct SkinnerG<'q> {
    query: &'q JoinQuery,
    ctx: ExecContext,
    cfg: SkinnerGConfig,
    /// Effective global work limit (config capped by the context budget).
    work_limit: u64,
    pre: Preprocessed,
    /// Per table: batch boundary rows (length `batches + 1`).
    bounds: Vec<Vec<RowId>>,
    /// `o_t`: number of batches of table `t` processed (and removed).
    batch_offset: Vec<usize>,
    /// One UCT tree per timeout level (Algorithm 1's `T_t`).
    trees: HashMap<usize, UctTree>,
    pyramid: PyramidScheme,
    graph: JoinGraph,
    results: Vec<TupleIxs>,
    rng: StdRng,
    work: u64,
    slices: u64,
    finished: bool,
    failed: bool,
    started: Instant,
}

impl<'q> SkinnerG<'q> {
    /// Pre-process and set up. Returns a failed instance (immediately
    /// `timed_out`) if pre-processing alone blows the work limit.
    pub fn new(query: &'q JoinQuery, ctx: &ExecContext, cfg: SkinnerGConfig) -> Self {
        let started = Instant::now();
        let work_limit = ctx.effective_limit(cfg.work_limit);
        let budget = WorkBudget::with_limit(work_limit);
        let (pre, failed) = match preprocess(query, &budget, cfg.preprocess_threads) {
            Ok(p) => (p, false),
            Err(_) => (
                Preprocessed {
                    tables: query.tables.clone(),
                    base_rows: query.tables.iter().map(|t| t.num_rows()).collect(),
                    pages_read: 0,
                    pages_skipped: 0,
                },
                true,
            ),
        };
        let b = cfg.batches.max(1);
        let bounds: Vec<Vec<RowId>> = pre
            .tables
            .iter()
            .map(|t| {
                let n = t.num_rows();
                (0..=b).map(|i| (i * n / b) as RowId).collect()
            })
            .collect();
        // An empty (filtered) table means an empty join result.
        let finished =
            !failed && (query.always_false || pre.tables.iter().any(|t| t.num_rows() == 0));
        let graph = query.join_graph();
        SkinnerG {
            query,
            ctx: ctx.clone(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xBA7C4),
            work_limit,
            cfg,
            pre,
            bounds,
            batch_offset: vec![0; query.num_tables()],
            trees: HashMap::new(),
            pyramid: PyramidScheme::new(),
            graph,
            results: Vec::new(),
            work: budget.used(),
            slices: 0,
            finished,
            failed,
            started,
        }
    }

    /// All batches of some table processed (complete result obtained)?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Work units consumed so far.
    pub fn work_units(&self) -> u64 {
        self.work
    }

    /// Run one iteration of Algorithm 1's main loop.
    pub fn step(&mut self) {
        if self.finished || self.failed {
            return;
        }
        // Cooperative cancellation/deadline, once per slice.
        if self.ctx.interrupted() {
            self.failed = true;
            return;
        }
        let (level, timeout) = self.pyramid.next_timeout();
        let slice_limit = timeout.saturating_mul(self.cfg.base_timeout_units);
        let (w, seed) = (self.cfg.exploration_weight, self.cfg.seed);
        let graph = &self.graph;
        let tree = self.trees.entry(level).or_insert_with(|| {
            UctTree::new(
                graph.clone(),
                UctConfig {
                    exploration_weight: w,
                    seed: seed.wrapping_add(level as u64),
                },
            )
        });
        let order = if self.cfg.learning {
            tree.choose()
        } else {
            random_order(&self.graph, &mut self.rng)
        };
        let t0 = order[0];
        let b = self.cfg.batches.max(1);
        let batch = self.batch_offset[t0].min(b - 1);
        let range = self.bounds[t0][batch]..self.bounds[t0][batch + 1];
        let floors: Vec<RowId> = (0..self.query.num_tables())
            .map(|t| self.bounds[t][self.batch_offset[t].min(b)])
            .collect();
        let slice_budget = WorkBudget::with_limit(slice_limit);
        let res = execute_join(
            &self.pre.tables,
            self.query,
            &order,
            range,
            &floors,
            &self.cfg.engine_profile,
            &slice_budget,
            false,
        );
        self.work += slice_budget.used();
        self.slices += 1;
        let reward = match res {
            Ok(out) => {
                // Batch completed: merge results, remove the batch, reward 1.
                self.results.extend(out.into_tuples());
                self.batch_offset[t0] += 1;
                if self.batch_offset[t0] >= b {
                    self.finished = true;
                }
                1.0
            }
            Err(_) => 0.0, // destructive timeout: everything discarded
        };
        if self.cfg.learning {
            self.trees.get_mut(&level).unwrap().update(&order, reward);
        }
        if self.work > self.work_limit {
            self.failed = true;
        }
    }

    /// Run until roughly `units` additional work units are consumed, the
    /// query finishes, or the global limit trips. Returns `is_finished()`.
    pub fn run_units(&mut self, units: u64) -> bool {
        let target = self.work.saturating_add(units);
        while !self.finished && !self.failed && self.work < target {
            self.step();
        }
        self.finished
    }

    /// Run to completion and report.
    pub fn run_to_completion(mut self) -> ExecOutcome {
        while !self.finished && !self.failed {
            self.step();
        }
        self.into_outcome()
    }

    /// Post-process accumulated results into the final outcome.
    pub fn into_outcome(self) -> ExecOutcome {
        let columns: Vec<String> = self
            .query
            .select
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        let budget = WorkBudget::unlimited();
        let (result, timed_out) = if self.failed {
            (QueryResult::empty(columns), true)
        } else {
            match postprocess(&self.pre.tables, self.query, &self.results, &budget) {
                Ok(r) => (r, false),
                Err(_) => (QueryResult::empty(columns), true),
            }
        };
        let work_units = self.work + budget.used();
        self.ctx.absorb_work(work_units);
        ExecOutcome {
            result,
            work_units,
            wall: self.started.elapsed(),
            timed_out,
            metrics: ExecMetrics {
                slices: self.slices,
                ..ExecMetrics::default()
            }
            .with_counter("timeout_levels", self.pyramid.num_levels() as u64),
        }
    }
}

/// The `skinner_g` strategy's episode loop: whole join orders as UCT arms.
///
/// Where [`SkinnerG`] follows Algorithm 1 verbatim (pyramid timeout levels,
/// one tree per level), `OrderArms` keeps a **single** UCT tree whose arms
/// are complete join orders and replaces the pyramid with the adaptive cap
/// `parallel_skinner` prototypes: every episode executes one batch of its
/// order's left-most table under the current work-budget cap, and each
/// episode abandoned at the full cap doubles it. Abandoned attempts earn
/// reward 0 and completed batches reward 1, so the loop — and therefore the
/// result — is deterministic for a fixed seed regardless of thread count.
///
/// With [`OrderArmsConfig::forced_order`] set the tree is bypassed and every
/// episode executes the given order; `skinner_h` uses that mode to run the
/// traditional optimizer's plan resumably, batch by batch, in its
/// alternating slices.
pub struct OrderArms<'q> {
    query: &'q JoinQuery,
    ctx: ExecContext,
    cfg: OrderArmsConfig,
    /// Effective global work limit (config capped by the context budget).
    work_limit: u64,
    pre: Preprocessed,
    bounds: Vec<Vec<RowId>>,
    batch_offset: Vec<usize>,
    /// Single whole-order tree (`None` in forced/random modes).
    tree: Option<UctTree>,
    graph: JoinGraph,
    results: Vec<TupleIxs>,
    rng: StdRng,
    /// Current per-episode cap; doubles on full-cap abandonment.
    cap: u64,
    work: u64,
    episodes: u64,
    completed: u64,
    abandoned: u64,
    finished: bool,
    failed: bool,
    started: Instant,
}

impl<'q> OrderArms<'q> {
    /// Pre-process and set up. Returns a failed instance (immediately
    /// `timed_out`) if pre-processing alone blows the work limit.
    pub fn new(query: &'q JoinQuery, ctx: &ExecContext, cfg: OrderArmsConfig) -> Self {
        let started = Instant::now();
        let work_limit = ctx.effective_limit(cfg.work_limit);
        let budget = WorkBudget::with_limit(work_limit);
        let (pre, failed) = match preprocess(query, &budget, cfg.preprocess_threads) {
            Ok(p) => (p, false),
            Err(_) => (
                Preprocessed {
                    tables: query.tables.clone(),
                    base_rows: query.tables.iter().map(|t| t.num_rows()).collect(),
                    pages_read: 0,
                    pages_skipped: 0,
                },
                true,
            ),
        };
        let b = cfg.batches.max(1);
        let bounds: Vec<Vec<RowId>> = pre
            .tables
            .iter()
            .map(|t| {
                let n = t.num_rows();
                (0..=b).map(|i| (i * n / b) as RowId).collect()
            })
            .collect();
        let finished =
            !failed && (query.always_false || pre.tables.iter().any(|t| t.num_rows() == 0));
        let graph = query.join_graph();
        let tree = (cfg.forced_order.is_none() && cfg.learning).then(|| {
            UctTree::new(
                graph.clone(),
                UctConfig {
                    exploration_weight: cfg.exploration_weight,
                    seed: cfg.seed,
                },
            )
        });
        OrderArms {
            query,
            ctx: ctx.clone(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x0A_A5),
            work_limit,
            cap: cfg.base_cap_units.max(1),
            cfg,
            pre,
            bounds,
            batch_offset: vec![0; query.num_tables()],
            tree,
            graph,
            results: Vec::new(),
            work: budget.used(),
            episodes: 0,
            completed: 0,
            abandoned: 0,
            finished,
            failed,
            started,
        }
    }

    /// All batches of some table processed (complete result obtained)?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Hit the work limit or an interrupt (result will be `timed_out`)?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Work units consumed so far.
    pub fn work_units(&self) -> u64 {
        self.work
    }

    /// Episodes run so far (completed + abandoned).
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Batches completed (episodes rewarded 1).
    pub fn completed_batches(&self) -> u64 {
        self.completed
    }

    /// Run one episode under `min(adaptive cap, grant)` work units. The cap
    /// only doubles when the episode was abandoned at the *full* adaptive
    /// cap — a grant-truncated abandonment is the caller's slice boundary,
    /// not evidence the cap is too small.
    fn step_capped(&mut self, grant: u64) {
        if self.finished || self.failed {
            return;
        }
        if self.ctx.interrupted() {
            self.failed = true;
            return;
        }
        let cap = self.cap.min(grant).max(1);
        let order = match (&self.cfg.forced_order, self.cfg.learning) {
            (Some(o), _) => o.clone(),
            (None, true) => self.tree.as_mut().expect("tree in learning mode").choose(),
            (None, false) => random_order(&self.graph, &mut self.rng),
        };
        let t0 = order[0];
        let b = self.cfg.batches.max(1);
        let batch = self.batch_offset[t0].min(b - 1);
        let range = self.bounds[t0][batch]..self.bounds[t0][batch + 1];
        let floors: Vec<RowId> = (0..self.query.num_tables())
            .map(|t| self.bounds[t][self.batch_offset[t].min(b)])
            .collect();
        let slice_budget = WorkBudget::with_limit(cap);
        let res = execute_join(
            &self.pre.tables,
            self.query,
            &order,
            range,
            &floors,
            &self.cfg.engine_profile,
            &slice_budget,
            false,
        );
        self.work += slice_budget.used();
        self.episodes += 1;
        let reward = match res {
            Ok(out) => {
                self.results.extend(out.into_tuples());
                self.batch_offset[t0] += 1;
                self.completed += 1;
                if self.batch_offset[t0] >= b {
                    self.finished = true;
                }
                1.0
            }
            Err(_) => {
                // Destructive timeout: everything discarded, reward 0.
                self.abandoned += 1;
                if cap >= self.cap {
                    self.cap = self.cap.saturating_mul(2);
                }
                0.0
            }
        };
        if let Some(tree) = self.tree.as_mut() {
            tree.update(&order, reward);
        }
        if self.work > self.work_limit {
            self.failed = true;
        }
    }

    /// Run one episode under the adaptive cap alone.
    pub fn step(&mut self) {
        self.step_capped(u64::MAX);
    }

    /// Run until roughly `units` additional work units are consumed, the
    /// query finishes, or the global limit trips. Returns `is_finished()`.
    pub fn run_units(&mut self, units: u64) -> bool {
        let target = self.work.saturating_add(units);
        while !self.finished && !self.failed && self.work < target {
            self.step_capped(target - self.work);
        }
        self.finished
    }

    /// Run to completion and report.
    pub fn run_to_completion(mut self) -> ExecOutcome {
        while !self.finished && !self.failed {
            self.step();
        }
        self.into_outcome()
    }

    /// Post-process accumulated results into the final outcome. Metrics
    /// report episodes as `slices`, the final adaptive cap
    /// (`episode_cap_units`) and the abandoned-episode count.
    pub fn into_outcome(self) -> ExecOutcome {
        let columns: Vec<String> = self
            .query
            .select
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        let budget = WorkBudget::unlimited();
        let (result, timed_out) = if self.failed {
            (QueryResult::empty(columns), true)
        } else {
            match postprocess(&self.pre.tables, self.query, &self.results, &budget) {
                Ok(r) => (r, false),
                Err(_) => (QueryResult::empty(columns), true),
            }
        };
        let order = match (&self.cfg.forced_order, &self.tree) {
            (Some(o), _) => o.clone(),
            (None, Some(tree)) => tree.best_order(),
            (None, None) => Vec::new(),
        };
        let work_units = self.work + budget.used();
        self.ctx.absorb_work(work_units);
        ExecOutcome {
            result,
            work_units,
            wall: self.started.elapsed(),
            timed_out,
            metrics: ExecMetrics {
                slices: self.episodes,
                order,
                uct_nodes: self.tree.as_ref().map_or(0, |t| t.num_nodes()),
                ..ExecMetrics::default()
            }
            .with_counter("episode_cap_units", self.cap)
            .with_counter("abandoned_episodes", self.abandoned),
        }
    }
}

/// Uniformly random valid join order.
pub(crate) fn random_order(graph: &JoinGraph, rng: &mut StdRng) -> Vec<usize> {
    let m = graph.num_tables();
    let mut order = Vec::with_capacity(m);
    let mut selected = TableSet::EMPTY;
    while order.len() < m {
        let eligible: Vec<usize> = graph.eligible_next(selected).iter().collect();
        let t = eligible[rng.gen_range(0..eligible.len())];
        order.push(t);
        selected.insert(t);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..60 {
            a.push_row(&[Value::Int(i), Value::Int(i % 6)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..90 {
            b.push_row(&[Value::Int(i % 60), Value::Int(i % 12)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..12 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn completes_and_matches_reference() {
        let cat = setup();
        for sql in [
            "SELECT a.id, b.w FROM a, b WHERE a.id = b.aid",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
        ] {
            let q = bind(sql, &cat);
            let out = SkinnerG::new(&q, &ExecContext::default(), SkinnerGConfig::default())
                .run_to_completion();
            assert!(!out.timed_out, "{sql}");
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn no_duplicates_across_leftmost_tables() {
        let cat = setup();
        // Force many slices with tiny timeouts so different leftmost tables
        // interleave; the batch-removal invariant must prevent duplicates.
        let q = bind(
            "SELECT a.id, b.w, c.bw FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let cfg = SkinnerGConfig {
            batches: 7,
            base_timeout_units: 150,
            ..Default::default()
        };
        let out = SkinnerG::new(&q, &ExecContext::default(), cfg).run_to_completion();
        assert!(!out.timed_out);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn resumable_in_unit_slices() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let mut g = SkinnerG::new(&q, &ExecContext::default(), SkinnerGConfig::default());
        let mut guard = 0;
        while !g.run_units(2_000) {
            guard += 1;
            assert!(guard < 10_000, "never finished");
        }
        let out = g.into_outcome();
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn work_limit_fails_gracefully() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = SkinnerGConfig {
            work_limit: 500,
            ..Default::default()
        };
        let out = SkinnerG::new(&q, &ExecContext::default(), cfg).run_to_completion();
        assert!(out.timed_out);
    }

    #[test]
    fn cancellation_fails_gracefully() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cancel = skinner_exec::CancelToken::new();
        let ctx = ExecContext::default().with_cancel(cancel.clone());
        let mut g = SkinnerG::new(&q, &ctx, SkinnerGConfig::default());
        g.step();
        cancel.cancel();
        let out = g.run_to_completion();
        assert!(out.timed_out);
    }

    #[test]
    fn empty_filtered_table_finishes_instantly() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 999",
            &cat,
        );
        let g = SkinnerG::new(&q, &ExecContext::default(), SkinnerGConfig::default());
        assert!(g.is_finished());
        let out = g.run_to_completion();
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn order_arms_completes_and_matches_reference() {
        let cat = setup();
        for sql in [
            "SELECT a.id, b.w FROM a, b WHERE a.id = b.aid",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
        ] {
            let q = bind(sql, &cat);
            let out = OrderArms::new(&q, &ExecContext::default(), OrderArmsConfig::default())
                .run_to_completion();
            assert!(!out.timed_out, "{sql}");
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn order_arms_tiny_cap_doubles_until_batches_complete() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = OrderArmsConfig {
            base_cap_units: 1,
            ..Default::default()
        };
        let out = OrderArms::new(&q, &ExecContext::default(), cfg).run_to_completion();
        assert!(!out.timed_out);
        assert!(out.metrics.counter("episode_cap_units").unwrap() > 1);
        assert!(out.metrics.counter("abandoned_episodes").unwrap() > 0);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn order_arms_forced_order_is_resumable_and_correct() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let cfg = OrderArmsConfig {
            forced_order: Some(vec![2, 1, 0]),
            learning: false,
            ..Default::default()
        };
        let mut arms = OrderArms::new(&q, &ExecContext::default(), cfg);
        let mut guard = 0;
        while !arms.run_units(1_000) {
            guard += 1;
            assert!(guard < 10_000, "never finished");
        }
        assert!(arms.completed_batches() > 0);
        let out = arms.into_outcome();
        assert_eq!(out.metrics.order, vec![2, 1, 0]);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn order_arms_is_deterministic_across_runs() {
        let cat = setup();
        let q = bind(
            "SELECT a.id, b.w, c.bw FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let run = || {
            let out = OrderArms::new(&q, &ExecContext::default(), OrderArmsConfig::default())
                .run_to_completion();
            (
                out.result.canonical_rows(),
                out.work_units,
                out.metrics.slices,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_mode_also_correct() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let cfg = SkinnerGConfig {
            learning: false,
            ..Default::default()
        };
        let out = SkinnerG::new(&q, &ExecContext::default(), cfg).run_to_completion();
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }
}
