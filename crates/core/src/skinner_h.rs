//! Skinner-H: the hybrid strategy (paper Section 4.4, Figure 4).
//!
//! Alternates between (a) executing the traditional optimizer's plan with a
//! doubling timeout `2^i` and (b) running Skinner-G's learning loop for the
//! same amount of time, preserving UCT state across rounds. Whichever side
//! finishes first delivers the result. This bounds regret both against the
//! optimum (Theorem 5.7) and against pure traditional execution — at most
//! 4/5 additional time (Theorem 5.8).

use std::time::Instant;

use skinner_exec::{run_traditional, ExecContext, ExecMetrics, ExecOutcome, TraditionalConfig};
use skinner_optimizer::{plan_query, PlannerConfig};
use skinner_query::JoinQuery;

use crate::config::{OrderArmsConfig, SkinnerHConfig, SlicedHybridConfig};
use crate::skinner_g::{OrderArms, SkinnerG};

/// Metric value when the traditional side delivered the result.
pub const WINNER_TRADITIONAL: &str = "traditional";
/// Metric value when the learned (Skinner-G) side delivered the result.
pub const WINNER_LEARNED: &str = "learned";
/// Metric value when `skinner_h`'s optimizer-plan side delivered the result.
pub const WINNER_OPTIMIZER: &str = "optimizer";

fn hybrid_metrics(winner: Option<&'static str>, rounds: u32) -> ExecMetrics {
    ExecMetrics {
        winner,
        ..ExecMetrics::default()
    }
    .with_counter("rounds", rounds as u64)
}

/// Evaluate `query` with Skinner-H. The outcome's metrics report the
/// `winner` side and a `rounds` counter.
pub fn run_skinner_h(query: &JoinQuery, ctx: &ExecContext, cfg: &SkinnerHConfig) -> ExecOutcome {
    let start = Instant::now();
    let work_limit = ctx.effective_limit(cfg.learner.work_limit);
    let mut learner = SkinnerG::new(query, ctx, cfg.learner.clone());
    let mut traditional_work = 0u64;
    let mut rounds = 0u32;

    // The learner may finish during setup (empty filtered table).
    if learner.is_finished() {
        let out = learner.into_outcome();
        return ExecOutcome {
            result: out.result,
            work_units: out.work_units,
            wall: start.elapsed(),
            timed_out: out.timed_out,
            metrics: hybrid_metrics(Some(WINNER_LEARNED), rounds),
        };
    }

    for i in 0..cfg.max_doublings {
        rounds = i + 1;
        let timeout_units = cfg
            .learner
            .base_timeout_units
            .saturating_mul(1u64 << i.min(62));

        // (a) Traditional plan with the current timeout. Both halves share
        // `ctx`, so the session budget and cancellation token apply to each.
        let trad = run_traditional(
            query,
            ctx,
            &TraditionalConfig {
                profile: cfg.learner.engine_profile,
                forced_order: None,
                work_limit: timeout_units,
                preprocess_threads: cfg.learner.preprocess_threads,
                ..Default::default()
            },
        );
        traditional_work += trad.work_units;
        if !trad.timed_out {
            ctx.absorb_work(learner.work_units());
            return ExecOutcome {
                result: trad.result,
                work_units: traditional_work + learner.work_units(),
                wall: start.elapsed(),
                timed_out: false,
                metrics: hybrid_metrics(Some(WINNER_TRADITIONAL), rounds),
            };
        }

        // (b) Learned plans for the same amount of time.
        if learner.run_units(timeout_units) {
            // into_outcome() includes the post-processing work it charges
            // to the shared budget, so report that total, not a snapshot.
            let out = learner.into_outcome();
            return ExecOutcome {
                result: out.result,
                work_units: traditional_work + out.work_units,
                wall: start.elapsed(),
                timed_out: out.timed_out,
                metrics: hybrid_metrics(Some(WINNER_LEARNED), rounds),
            };
        }

        if ctx.interrupted() || traditional_work + learner.work_units() > work_limit {
            break;
        }
    }

    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let learner_work = learner.work_units();
    ctx.absorb_work(learner_work);
    ExecOutcome::timeout(columns, traditional_work + learner_work, start.elapsed())
        .with_metrics(hybrid_metrics(None, rounds))
}

/// Per-query tallies the sliced hybrid reports through its metrics block.
struct HybridRace {
    optimizer_slices: u64,
    learned_slices: u64,
    switched_at_episode: u64,
    plan_cost_est: u64,
}

impl HybridRace {
    fn metrics(
        &self,
        winner: Option<&'static str>,
        episodes: u64,
        order: Vec<usize>,
    ) -> ExecMetrics {
        ExecMetrics {
            slices: episodes,
            order,
            winner,
            ..ExecMetrics::default()
        }
        .with_counter("optimizer_slices", self.optimizer_slices)
        .with_counter("learned_slices", self.learned_slices)
        .with_counter("switched_at_episode", self.switched_at_episode)
        .with_counter("plan_cost_est", self.plan_cost_est)
    }
}

/// Turn the winning side into the hybrid's outcome, charging its
/// post-processing work (which ran outside any slice grant) to the session
/// budget.
fn deliver(
    ctx: &ExecContext,
    side: OrderArms<'_>,
    other_work: u64,
    winner: &'static str,
    race: &HybridRace,
    episodes: u64,
    start: Instant,
) -> ExecOutcome {
    let before = side.work_units();
    let out = side.into_outcome(); // absorbs into the side's detached budget
    ctx.absorb_work(out.work_units.saturating_sub(before));
    ExecOutcome {
        result: out.result,
        work_units: other_work + out.work_units,
        wall: start.elapsed(),
        timed_out: out.timed_out,
        metrics: race.metrics(Some(winner), episodes, out.metrics.order),
    }
}

/// The `skinner_h` strategy: race the traditional optimizer's plan against
/// learned execution in alternating regret-bounded slices.
///
/// The planner ([`plan_query`]) picks a left-deep order under estimated
/// cardinalities; one [`OrderArms`] instance attempts that order as a
/// single destructive execution per slice (no learning, no batching —
/// paper Section 4.4's doubling-timeout traditional run) while a second
/// one learns orders as UCT arms over resumable batches. The two alternate
/// work slices on the paper's `b, 2b, 4b, …` doubling schedule: the
/// optimizer side's failed attempts sum to at most its final successful
/// grant (≤ 2× a standalone traditional run, so ≤ 4× total), the learned
/// side's grants track the optimizer's within one slice, and total work
/// stays within a small constant of `min(optimizer, learned)` plus the
/// duplicated pre-processing (`tests/bakeoff.rs` asserts the constant).
///
/// Once the learned side's reward rate dominates — its projected total
/// cost, `work × batches / completed`, falls below the optimizer side's
/// sunk cost divided by [`SlicedHybridConfig::switch_margin`] — the hybrid
/// switches over permanently and stops granting optimizer slices. The
/// invariant is one-way: optimizer slices never resume after the switch,
/// so `switched_at_episode` is well-defined and deterministic.
///
/// Each side runs against a detached budget; the hybrid itself settles
/// every slice with the session budget, reserving the grant up front via
/// [`skinner_exec::WorkBudget::try_consume`] and refunding the unused part.
pub fn run_sliced_hybrid(
    query: &JoinQuery,
    ctx: &ExecContext,
    cfg: &SlicedHybridConfig,
) -> ExecOutcome {
    let start = Instant::now();
    let work_limit = ctx.effective_limit(cfg.work_limit);
    let plan = plan_query(
        query,
        ctx.stats(),
        &PlannerConfig {
            dp_table_limit: cfg.dp_table_limit,
        },
    );

    let side_ctx = ExecContext::new().with_cancel(ctx.cancel().clone());
    // The optimizer side runs the plan exactly like a one-shot traditional
    // execution: a single batch, attempted destructively once per slice.
    // Under the doubling schedule the failed attempts sum to at most the
    // final (successful) grant, so its total spend stays within a small
    // constant of a standalone traditional run — batching it would instead
    // pay the generic engine's per-invocation hash-build cost once per
    // batch and void that bound.
    let mut opt = OrderArms::new(
        query,
        &side_ctx,
        OrderArmsConfig {
            forced_order: Some(plan.order.clone()),
            learning: false,
            batches: 1,
            base_cap_units: u64::MAX,
            work_limit: u64::MAX,
            ..cfg.arms.clone()
        },
    );
    let mut learned = OrderArms::new(
        query,
        &side_ctx,
        OrderArmsConfig {
            forced_order: None,
            work_limit: u64::MAX,
            ..cfg.arms.clone()
        },
    );
    let mut race = HybridRace {
        optimizer_slices: 0,
        learned_slices: 0,
        switched_at_episode: 0,
        plan_cost_est: plan.cost_est.round() as u64,
    };

    // Pre-processing ran outside any slice grant; account for it now.
    let pre_work = opt.work_units() + learned.work_units();
    let over_budget = ctx.budget().charge(pre_work).is_err() || pre_work > work_limit;

    if !over_budget && learned.is_finished() {
        // Empty filtered table or always-false predicate: no race needed.
        let (ow, eps) = (opt.work_units(), opt.episodes() + learned.episodes());
        return deliver(ctx, learned, ow, WINNER_LEARNED, &race, eps, start);
    }

    let grant_slice = |side: &mut OrderArms<'_>, slice: u64, total_before: u64| -> bool {
        let grant = slice.min(work_limit.saturating_sub(total_before));
        if grant == 0 || !ctx.budget().try_consume(grant) {
            return false;
        }
        let before = side.work_units();
        side.run_units(grant);
        let used = side.work_units() - before;
        // Settle the reservation: keep what was spent (plus the bounded
        // overshoot of the episode that straddled the grant boundary),
        // refund the rest.
        if used >= grant {
            let _ = ctx.budget().charge(used - grant);
        } else {
            ctx.budget().refund(grant - used);
        }
        true
    };

    let mut switched = false;
    if !over_budget {
        for round in 0..cfg.max_rounds {
            let slice = cfg.slice_units.max(1).saturating_mul(1u64 << round.min(32));

            // (a) The optimizer's plan — unless permanently switched away.
            if !switched {
                let total = opt.work_units() + learned.work_units();
                if !grant_slice(&mut opt, slice, total) {
                    break;
                }
                race.optimizer_slices += 1;
                if opt.is_finished() {
                    let (lw, eps) = (learned.work_units(), opt.episodes() + learned.episodes());
                    return deliver(ctx, opt, lw, WINNER_OPTIMIZER, &race, eps, start);
                }
                if opt.is_failed() {
                    break; // interrupted mid-slice
                }
            }

            // (b) Learned execution for the same grant.
            let total = opt.work_units() + learned.work_units();
            if !grant_slice(&mut learned, slice, total) {
                break;
            }
            race.learned_slices += 1;
            if learned.is_finished() {
                let (ow, eps) = (opt.work_units(), opt.episodes() + learned.episodes());
                return deliver(ctx, learned, ow, WINNER_LEARNED, &race, eps, start);
            }
            if learned.is_failed() {
                break;
            }

            // Switchover: permanent once the learned side's reward rate
            // dominates — its projected total cost (work so far scaled to
            // all batches) is a `switch_margin`-th of what the optimizer
            // side has already sunk without finishing.
            if !switched && learned.completed_batches() >= cfg.min_learned_batches {
                let projected = learned.work_units() as f64 * cfg.arms.batches.max(1) as f64
                    / learned.completed_batches() as f64;
                if projected * cfg.switch_margin <= opt.work_units() as f64 {
                    switched = true;
                    race.switched_at_episode = learned.episodes();
                }
            }

            if ctx.interrupted() || opt.work_units() + learned.work_units() > work_limit {
                break;
            }
        }
    }

    // Out of rounds, budget, or interrupted: well-formed timeout outcome.
    // All side work was already settled against the session budget.
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let total_work = opt.work_units() + learned.work_units();
    let episodes = opt.episodes() + learned.episodes();
    ExecOutcome::timeout(columns, total_work, start.elapsed()).with_metrics(race.metrics(
        None,
        episodes,
        Vec::new(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkinnerGConfig;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..60 {
            a.push_row(&[Value::Int(i), Value::Int(i % 6)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..90 {
            b.push_row(&[Value::Int(i % 60), Value::Int(i % 12)]);
        }
        cat.register(b.finish());
        let udfs = UdfRegistry::new();
        // A UDF the optimizer cannot see through; always true here.
        udfs.register("opaque_true", |_| Value::from(true));
        (cat, udfs)
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn traditional_side_wins_easy_queries() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let out = run_skinner_h(&q, &ExecContext::default(), &SkinnerHConfig::default());
        assert!(!out.timed_out);
        assert_eq!(out.metrics.winner, Some(WINNER_TRADITIONAL));
        assert!(out.metrics.counter("rounds").unwrap() >= 1);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn learned_side_can_win_with_tiny_traditional_budget() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND opaque_true(a.g, b.w)",
            &cat,
            &udfs,
        );
        // Base timeout so small the traditional side cannot finish early,
        // while the learner accumulates progress across rounds.
        let cfg = SkinnerHConfig {
            learner: SkinnerGConfig {
                base_timeout_units: 300,
                batches: 10,
                ..Default::default()
            },
            max_doublings: 30,
        };
        let out = run_skinner_h(&q, &ExecContext::default(), &cfg);
        assert!(!out.timed_out);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
        assert!(out.metrics.counter("rounds").unwrap() >= 1);
    }

    #[test]
    fn global_limit_reports_timeout() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let cfg = SkinnerHConfig {
            learner: SkinnerGConfig {
                work_limit: 200,
                base_timeout_units: 50,
                ..Default::default()
            },
            max_doublings: 3,
        };
        let out = run_skinner_h(&q, &ExecContext::default(), &cfg);
        // Either some side finished within 3 rounds, or we report timeout.
        if out.timed_out {
            assert_eq!(out.metrics.winner, None);
        }
    }

    #[test]
    fn empty_result_query() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 999",
            &cat,
            &udfs,
        );
        let out = run_skinner_h(&q, &ExecContext::default(), &SkinnerHConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
    }

    #[test]
    fn sliced_hybrid_matches_reference_and_reports_counters() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let out = run_sliced_hybrid(&q, &ExecContext::default(), &SlicedHybridConfig::default());
        assert!(!out.timed_out);
        assert!(out.metrics.winner.is_some());
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
        for c in [
            "optimizer_slices",
            "learned_slices",
            "switched_at_episode",
            "plan_cost_est",
        ] {
            assert!(out.metrics.counter(c).is_some(), "missing {c}");
        }
        assert!(out.metrics.counter("optimizer_slices").unwrap() >= 1);
    }

    #[test]
    fn sliced_hybrid_is_deterministic() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND opaque_true(a.g, b.w)",
            &cat,
            &udfs,
        );
        let cfg = SlicedHybridConfig {
            slice_units: 500,
            ..Default::default()
        };
        let run = || {
            let out = run_sliced_hybrid(&q, &ExecContext::default(), &cfg);
            (
                out.result.canonical_rows(),
                out.work_units,
                out.metrics.counter("switched_at_episode"),
                out.metrics.winner,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sliced_hybrid_empty_result_short_circuits() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 999",
            &cat,
            &udfs,
        );
        let out = run_sliced_hybrid(&q, &ExecContext::default(), &SlicedHybridConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
        assert_eq!(out.metrics.winner, Some(WINNER_LEARNED));
    }

    #[test]
    fn sliced_hybrid_respects_work_limit() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let cfg = SlicedHybridConfig {
            work_limit: 300,
            slice_units: 50,
            max_rounds: 3,
            ..Default::default()
        };
        let out = run_sliced_hybrid(&q, &ExecContext::default(), &cfg);
        if out.timed_out {
            assert_eq!(out.metrics.winner, None);
            assert_eq!(out.result.num_rows(), 0);
        }
    }

    #[test]
    fn sliced_hybrid_session_budget_settles_to_actual_work() {
        use skinner_exec::WorkBudget;
        use std::sync::Arc;
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let budget = Arc::new(WorkBudget::unlimited());
        let ctx = ExecContext::default().with_budget(budget.clone());
        let out = run_sliced_hybrid(&q, &ctx, &SlicedHybridConfig::default());
        assert!(!out.timed_out);
        // Reservations must be fully settled: what the session budget saw
        // is exactly what the hybrid reports.
        assert_eq!(budget.used(), out.work_units);
    }
}
