//! Skinner-H: the hybrid strategy (paper Section 4.4, Figure 4).
//!
//! Alternates between (a) executing the traditional optimizer's plan with a
//! doubling timeout `2^i` and (b) running Skinner-G's learning loop for the
//! same amount of time, preserving UCT state across rounds. Whichever side
//! finishes first delivers the result. This bounds regret both against the
//! optimum (Theorem 5.7) and against pure traditional execution — at most
//! 4/5 additional time (Theorem 5.8).

use std::time::Instant;

use skinner_exec::{run_traditional, ExecContext, ExecMetrics, ExecOutcome, TraditionalConfig};
use skinner_query::JoinQuery;

use crate::config::SkinnerHConfig;
use crate::skinner_g::SkinnerG;

/// Metric value when the traditional side delivered the result.
pub const WINNER_TRADITIONAL: &str = "traditional";
/// Metric value when the learned (Skinner-G) side delivered the result.
pub const WINNER_LEARNED: &str = "learned";

fn hybrid_metrics(winner: Option<&'static str>, rounds: u32) -> ExecMetrics {
    ExecMetrics {
        winner,
        ..ExecMetrics::default()
    }
    .with_counter("rounds", rounds as u64)
}

/// Evaluate `query` with Skinner-H. The outcome's metrics report the
/// `winner` side and a `rounds` counter.
pub fn run_skinner_h(query: &JoinQuery, ctx: &ExecContext, cfg: &SkinnerHConfig) -> ExecOutcome {
    let start = Instant::now();
    let work_limit = ctx.effective_limit(cfg.learner.work_limit);
    let mut learner = SkinnerG::new(query, ctx, cfg.learner.clone());
    let mut traditional_work = 0u64;
    let mut rounds = 0u32;

    // The learner may finish during setup (empty filtered table).
    if learner.is_finished() {
        let out = learner.into_outcome();
        return ExecOutcome {
            result: out.result,
            work_units: out.work_units,
            wall: start.elapsed(),
            timed_out: out.timed_out,
            metrics: hybrid_metrics(Some(WINNER_LEARNED), rounds),
        };
    }

    for i in 0..cfg.max_doublings {
        rounds = i + 1;
        let timeout_units = cfg
            .learner
            .base_timeout_units
            .saturating_mul(1u64 << i.min(62));

        // (a) Traditional plan with the current timeout. Both halves share
        // `ctx`, so the session budget and cancellation token apply to each.
        let trad = run_traditional(
            query,
            ctx,
            &TraditionalConfig {
                profile: cfg.learner.engine_profile,
                forced_order: None,
                work_limit: timeout_units,
                preprocess_threads: cfg.learner.preprocess_threads,
            },
        );
        traditional_work += trad.work_units;
        if !trad.timed_out {
            ctx.absorb_work(learner.work_units());
            return ExecOutcome {
                result: trad.result,
                work_units: traditional_work + learner.work_units(),
                wall: start.elapsed(),
                timed_out: false,
                metrics: hybrid_metrics(Some(WINNER_TRADITIONAL), rounds),
            };
        }

        // (b) Learned plans for the same amount of time.
        if learner.run_units(timeout_units) {
            // into_outcome() includes the post-processing work it charges
            // to the shared budget, so report that total, not a snapshot.
            let out = learner.into_outcome();
            return ExecOutcome {
                result: out.result,
                work_units: traditional_work + out.work_units,
                wall: start.elapsed(),
                timed_out: out.timed_out,
                metrics: hybrid_metrics(Some(WINNER_LEARNED), rounds),
            };
        }

        if ctx.interrupted() || traditional_work + learner.work_units() > work_limit {
            break;
        }
    }

    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let learner_work = learner.work_units();
    ctx.absorb_work(learner_work);
    ExecOutcome::timeout(columns, traditional_work + learner_work, start.elapsed())
        .with_metrics(hybrid_metrics(None, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkinnerGConfig;
    use skinner_exec::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..60 {
            a.push_row(&[Value::Int(i), Value::Int(i % 6)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..90 {
            b.push_row(&[Value::Int(i % 60), Value::Int(i % 12)]);
        }
        cat.register(b.finish());
        let udfs = UdfRegistry::new();
        // A UDF the optimizer cannot see through; always true here.
        udfs.register("opaque_true", |_| Value::from(true));
        (cat, udfs)
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn traditional_side_wins_easy_queries() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let out = run_skinner_h(&q, &ExecContext::default(), &SkinnerHConfig::default());
        assert!(!out.timed_out);
        assert_eq!(out.metrics.winner, Some(WINNER_TRADITIONAL));
        assert!(out.metrics.counter("rounds").unwrap() >= 1);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
    }

    #[test]
    fn learned_side_can_win_with_tiny_traditional_budget() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND opaque_true(a.g, b.w)",
            &cat,
            &udfs,
        );
        // Base timeout so small the traditional side cannot finish early,
        // while the learner accumulates progress across rounds.
        let cfg = SkinnerHConfig {
            learner: SkinnerGConfig {
                base_timeout_units: 300,
                batches: 10,
                ..Default::default()
            },
            max_doublings: 30,
        };
        let out = run_skinner_h(&q, &ExecContext::default(), &cfg);
        assert!(!out.timed_out);
        let expected = run_reference(&q);
        assert_eq!(out.result.canonical_rows(), expected.canonical_rows());
        assert!(out.metrics.counter("rounds").unwrap() >= 1);
    }

    #[test]
    fn global_limit_reports_timeout() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let cfg = SkinnerHConfig {
            learner: SkinnerGConfig {
                work_limit: 200,
                base_timeout_units: 50,
                ..Default::default()
            },
            max_doublings: 3,
        };
        let out = run_skinner_h(&q, &ExecContext::default(), &cfg);
        // Either some side finished within 3 rounds, or we report timeout.
        if out.timed_out {
            assert_eq!(out.metrics.winner, None);
        }
    }

    #[test]
    fn empty_result_query() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id > 999",
            &cat,
            &udfs,
        );
        let out = run_skinner_h(&q, &ExecContext::default(), &SkinnerHConfig::default());
        assert_eq!(out.result.num_rows(), 0);
        assert!(!out.timed_out);
    }
}
