//! [`ExecutionStrategy`] implementations for the Skinner engines, so they
//! plug into the shared registry alongside the baselines and any external
//! engine.

use skinner_exec::{ExecContext, ExecOutcome, ExecutionStrategy};
use skinner_query::JoinQuery;

use crate::config::{
    OrderArmsConfig, SkinnerCConfig, SkinnerGConfig, SkinnerHConfig, SlicedHybridConfig,
};
use crate::skinner_c::engine::run_skinner_c;
use crate::skinner_g::{OrderArms, SkinnerG};
use crate::skinner_h::{run_skinner_h, run_sliced_hybrid};

/// Skinner-C: the customized engine (paper Section 4.5).
#[derive(Debug, Clone, Default)]
pub struct SkinnerCStrategy(pub SkinnerCConfig);

impl ExecutionStrategy for SkinnerCStrategy {
    fn name(&self) -> &str {
        "Skinner-C"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_skinner_c(query, ctx, &self.0)
    }
}

/// Skinner-G on the generic engine (Section 4.3).
#[derive(Debug, Clone, Default)]
pub struct SkinnerGStrategy(pub SkinnerGConfig);

impl ExecutionStrategy for SkinnerGStrategy {
    fn name(&self) -> &str {
        "Skinner-G"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        SkinnerG::new(query, ctx, self.0.clone()).run_to_completion()
    }
}

/// Skinner-H hybrid (Section 4.4).
#[derive(Debug, Clone, Default)]
pub struct SkinnerHStrategy(pub SkinnerHConfig);

impl ExecutionStrategy for SkinnerHStrategy {
    fn name(&self) -> &str {
        "Skinner-H"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_skinner_h(query, ctx, &self.0)
    }
}

/// `skinner_g`: whole join orders as UCT arms under a doubling episode cap
/// (the optimizer-vs-RL bakeoff's learned contender).
#[derive(Debug, Clone, Default)]
pub struct OrderArmsStrategy(pub OrderArmsConfig);

impl ExecutionStrategy for OrderArmsStrategy {
    fn name(&self) -> &str {
        "skinner_g"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        OrderArms::new(query, ctx, self.0.clone()).run_to_completion()
    }
}

/// `skinner_h`: the optimizer's plan raced against learned execution in
/// alternating regret-bounded slices with a one-way switchover.
#[derive(Debug, Clone, Default)]
pub struct SlicedHybridStrategy(pub SlicedHybridConfig);

impl ExecutionStrategy for SlicedHybridStrategy {
    fn name(&self) -> &str {
        "skinner_h"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_sliced_hybrid(query, ctx, &self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_exec::ReferenceStrategy;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn trait_objects_run_all_three_engines() {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int)]);
        let mut b = cat.builder("b", schema![("aid", Int)]);
        for i in 0..25 {
            a.push_row(&[Value::Int(i)]);
            b.push_row(&[Value::Int(i % 10)]);
        }
        cat.register(a.finish());
        cat.register(b.finish());
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let ctx = ExecContext::default();
        let expected = ReferenceStrategy.execute(&q, &ctx).result.canonical_rows();
        let strategies: Vec<Box<dyn ExecutionStrategy>> = vec![
            Box::new(SkinnerCStrategy::default()),
            Box::new(SkinnerGStrategy::default()),
            Box::new(SkinnerHStrategy::default()),
            Box::new(OrderArmsStrategy::default()),
            Box::new(SlicedHybridStrategy::default()),
        ];
        for s in strategies {
            let out = s.execute(&q, &ctx);
            assert!(!out.timed_out, "{}", s.name());
            assert_eq!(out.result.canonical_rows(), expected, "{}", s.name());
        }
    }
}
