//! Property tests for the on-disk prior format (hostile-input side).
//!
//! The learning cache's persistence layer must treat the priors sidecar as
//! untrusted input: any corruption, truncation or version skew is
//! *detected and refused* — never served, never a crash, never a partial
//! load. These tests hammer the real files a [`TreeCache`] flushes through
//! a real [`DiskStore`], plus the `TreePrior` wire encoding directly.

use std::sync::Arc;

use proptest::prelude::*;

use skinner_core::{QuerySig, RunFeedback, TreeCache, TreeCacheConfig};
use skinner_query::TemplateFeatures;
use skinner_storage::DiskStore;
use skinner_uct::{PriorEntry, TreePrior};

fn sig(k: u64) -> QuerySig {
    QuerySig {
        key: format!("template-{k}"),
        uids: vec![k, k + 1],
        fingerprints: vec![k * 7919 + 1, k * 7919 + 2],
        buckets: vec![(k % 12) as u8, ((k + 3) % 12) as u8],
        features: TemplateFeatures {
            tables: vec![format!("fact{k}"), format!("dim{k}")],
            unary_counts: vec![(k % 3) as u16, 0],
            n_equi: 1,
            n_theta: (k % 2) as u16,
            n_select: 1,
            has_group: k.is_multiple_of(2),
            has_order: k.is_multiple_of(3),
            distinct: false,
            limited: false,
        },
    }
}

fn prior(visits: u64) -> TreePrior {
    TreePrior {
        num_tables: 2,
        entries: vec![
            PriorEntry {
                prefix: vec![],
                visits,
                reward_sum: visits as f64 * 0.25,
            },
            PriorEntry {
                prefix: vec![1],
                visits: visits / 2,
                reward_sum: visits as f64 * 0.125,
            },
        ],
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skinner_priorprop_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flush `n` templates through a fresh store and return the store plus the
/// sidecar path.
fn flushed_store(tag: &str, n: u64) -> (Arc<DiskStore>, std::path::PathBuf, std::path::PathBuf) {
    let dir = fresh_dir(tag);
    let store = DiskStore::open(&dir).unwrap();
    let cache = TreeCache::new(TreeCacheConfig::default());
    cache.attach_store(store.clone());
    for k in 0..n {
        cache.publish(&sig(k), prior(10 + k), RunFeedback::cold(5 + k));
    }
    assert!(cache.flush());
    let side = dir.join("learned_priors.side");
    assert!(side.is_file());
    (store, side, dir)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The `TreePrior` wire encoding roundtrips exactly for arbitrary
    /// valid priors, at any cursor offset.
    #[test]
    fn tree_prior_encoding_roundtrips(
        num_tables in 1usize..10,
        visits in proptest::collection::vec(0u64..1_000_000, 1..20),
        lead in 0usize..5,
    ) {
        let p = TreePrior {
            num_tables,
            entries: visits
                .iter()
                .enumerate()
                .map(|(i, &v)| PriorEntry {
                    // Distinct in-range prefixes: entry i covers the first
                    // i % (num_tables + 1) tables in ascending order.
                    prefix: (0..(i % (num_tables + 1)).min(num_tables))
                        .map(|t| t as u8)
                        .collect(),
                    visits: v,
                    reward_sum: v as f64 * 0.5,
                })
                .collect(),
        };
        let mut buf = vec![0xAAu8; lead];
        p.encode_into(&mut buf);
        let mut pos = lead;
        let back = TreePrior::decode_from(&buf, &mut pos).expect("valid payload decodes");
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back.num_tables, p.num_tables);
        prop_assert_eq!(back.entries.len(), p.entries.len());
        for (a, b) in back.entries.iter().zip(&p.entries) {
            prop_assert_eq!(&a.prefix, &b.prefix);
            prop_assert_eq!(a.visits, b.visits);
            prop_assert!((a.reward_sum - b.reward_sum).abs() < 1e-12);
        }
    }

    /// Entries written by a real cache through a real store roundtrip:
    /// a fresh cache on the same store serves every template with the
    /// same root visits, drift state intact.
    #[test]
    fn cache_flush_and_reload_roundtrips(n in 1u64..12) {
        let (store, _side, dir) = flushed_store("rt", n);
        let cache2 = TreeCache::new(TreeCacheConfig::default());
        prop_assert_eq!(cache2.attach_store(store), n as usize);
        for k in 0..n {
            let w = cache2.lookup(&sig(k)).expect("persisted template serves");
            prop_assert!(!w.generalized, "exact key must win over neighbors");
            prop_assert_eq!(w.prior.root_visits(), 10 + k);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ANY single bit flip anywhere in the sidecar is detected: the load
    /// is refused whole, nothing is served. (Covers header, payload and
    /// checksum trailer corruption alike.)
    #[test]
    fn any_bit_flip_is_detected_not_served(n in 1u64..6, byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (store, side, dir) = flushed_store("flip", n);
        let mut bytes = std::fs::read(&side).unwrap();
        let ix = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[ix] ^= 1 << bit;
        std::fs::write(&side, &bytes).unwrap();
        let cache2 = TreeCache::new(TreeCacheConfig::default());
        prop_assert_eq!(cache2.attach_store(store), 0);
        let s = cache2.stats();
        prop_assert_eq!(s.load_rejected, 1);
        prop_assert_eq!(s.entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncation at EVERY possible length is refused (a torn write the
    /// rename discipline should prevent, but the reader must not trust
    /// that).
    #[test]
    fn any_truncation_is_refused(n in 1u64..4, cut_frac in 0.0f64..1.0) {
        let (store, side, dir) = flushed_store("trunc", n);
        let bytes = std::fs::read(&side).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&side, &bytes[..cut]).unwrap();
        let cache2 = TreeCache::new(TreeCacheConfig::default());
        prop_assert_eq!(cache2.attach_store(store), 0);
        prop_assert_eq!(cache2.stats().load_rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary garbage under the right magic-and-length framing still
    /// cannot smuggle entries in: the payload decoder validates every
    /// field and refuses the whole file.
    #[test]
    fn fuzzed_payloads_never_crash_or_partially_load(payload in proptest::collection::vec(0u8..=255u8, 0..200)) {
        let dir = fresh_dir("fuzz");
        let store = DiskStore::open(&dir).unwrap();
        // Envelope is valid (magic, version, checksum) — only the payload
        // is hostile.
        store.write_sidecar("learned_priors", 1, &payload).unwrap();
        let cache = TreeCache::new(TreeCacheConfig::default());
        let loaded = cache.attach_store(store);
        let s = cache.stats();
        // Either the payload happened to be a valid encoding (then every
        // loaded entry is fully validated) or the whole file was refused.
        if loaded == 0 && s.load_rejected == 1 {
            prop_assert_eq!(s.entries, 0);
        } else {
            prop_assert_eq!(s.load_rejected, 0);
            prop_assert_eq!(s.entries, loaded);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A future format version is refused on load (never misinterpreted), and
/// the refusal is visible in stats.
#[test]
fn version_mismatch_is_refused() {
    let dir = fresh_dir("ver");
    let store = DiskStore::open(&dir).unwrap();
    // A well-formed sidecar claiming format version 999.
    store
        .write_sidecar("learned_priors", 999, &[0, 0, 0, 0])
        .unwrap();
    let cache = TreeCache::new(TreeCacheConfig::default());
    assert_eq!(cache.attach_store(store), 0);
    let s = cache.stats();
    assert_eq!(s.load_rejected, 1);
    assert_eq!(s.entries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A table re-created with different content is refused at lookup even
/// when the persisted entry predates the process: content fingerprints
/// are the identity, not uids.
#[test]
fn recreated_table_with_different_content_is_rejected() {
    let dir = fresh_dir("refp");
    let store = DiskStore::open(&dir).unwrap();
    let cache = TreeCache::new(TreeCacheConfig::default());
    cache.attach_store(store.clone());
    cache.publish(&sig(3), prior(42), RunFeedback::cold(5));
    cache.flush();

    // "Restart": fresh cache, same store — but the table's content hash
    // changed (drop + recreate with different rows between processes).
    let cache2 = TreeCache::new(TreeCacheConfig::default());
    assert_eq!(cache2.attach_store(store), 1);
    let mut changed = sig(3);
    changed.fingerprints = vec![0xDEAD, 0xBEEF];
    assert!(
        cache2.lookup(&changed).is_none(),
        "stale prior served against re-created table"
    );
    assert_eq!(cache2.stats().invalidations, 1);
    assert_eq!(cache2.len(), 0, "stale entry purged, not retried");
    let _ = std::fs::remove_dir_all(&dir);
}
