//! Property tests for the progress tracker's restore/backup contract —
//! the mechanism behind Skinner-C's "no progress loss" guarantee.
//!
//! Invariants checked on random backup/restore interleavings:
//! 1. *Monotonicity*: restoring an order never yields a state lexicographically
//!    behind the best state previously backed up for that exact order.
//! 2. *Offset dominance*: the restored cursor at the restore depth is never
//!    below the global offset of its table.
//! 3. *Donor validity*: every restored state's fixed prefix comes verbatim
//!    from some backed-up state with the same prefix sequence (never invented).

use proptest::prelude::*;

use skinner_core::skinner_c::state::{JoinState, ProgressTracker};
use skinner_storage::RowId;

#[derive(Debug, Clone)]
struct Op {
    /// Which of the fixed order set to use.
    order_idx: usize,
    s: Vec<RowId>,
    depth: usize,
}

const M: usize = 4;

fn orders() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1, 2, 3],
        vec![0, 1, 3, 2],
        vec![1, 0, 2, 3],
        vec![3, 2, 1, 0],
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..orders().len(),
        proptest::collection::vec(0u32..50, M..=M),
        0usize..M,
    )
        .prop_map(|(order_idx, s, depth)| Op {
            order_idx,
            s,
            depth,
        })
}

fn resume_vec(order: &[usize], st: &JoinState, offsets: &[RowId]) -> Vec<RowId> {
    order
        .iter()
        .enumerate()
        .map(|(i, &t)| if i <= st.depth { st.s[t] } else { offsets[t] })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn restore_is_monotone_and_offset_dominant(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        offsets in proptest::collection::vec(0u32..20, M..=M),
    ) {
        let all = orders();
        let mut tracker = ProgressTracker::new(M, true);
        // Best backed-up resume vector per order index.
        let mut best: Vec<Option<Vec<RowId>>> = vec![None; all.len()];
        for op in &ops {
            let order = &all[op.order_idx];
            let st = JoinState { s: op.s.clone(), depth: op.depth };
            tracker.backup(order, &st);
            let v = resume_vec(order, &st, &offsets);
            let slot = &mut best[op.order_idx];
            if slot.as_ref().is_none_or(|b| v > *b) {
                *slot = Some(v);
            }
            // After every backup, every order restores to something at least
            // as advanced as its own best backup (prefix sharing can only
            // help), and never below the offsets at the restore depth.
            for (oi, order) in all.iter().enumerate() {
                let r = tracker.restore(order, &offsets);
                let rv = resume_vec(order, &r, &offsets);
                if let Some(b) = &best[oi] {
                    prop_assert!(
                        rv >= *b,
                        "order {order:?} restored {rv:?} behind own best {b:?}"
                    );
                }
                let t = order[r.depth];
                prop_assert!(
                    r.s[t] >= offsets[t],
                    "candidate below offset: {:?} at depth {}",
                    r.s,
                    r.depth
                );
            }
        }
    }

    #[test]
    fn restored_fixed_prefix_comes_from_a_donor(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        let all = orders();
        let offsets = vec![0u32; M];
        let mut tracker = ProgressTracker::new(M, true);
        let mut backed: Vec<(usize, Vec<RowId>, usize)> = Vec::new();
        for op in &ops {
            let order = &all[op.order_idx];
            let st = JoinState { s: op.s.clone(), depth: op.depth };
            tracker.backup(order, &st);
            backed.push((op.order_idx, op.s.clone(), op.depth));
        }
        for order in &all {
            let r = tracker.restore(order, &offsets);
            if r == JoinState::fresh(&offsets) {
                continue;
            }
            // The fixed rows (positions < depth) must match some backed-up
            // state whose order shares the prefix sequence up to r.depth and
            // whose own depth covers it.
            let ok = backed.iter().any(|(oi, s, depth)| {
                let donor = &all[*oi];
                donor[..r.depth.min(donor.len())] == order[..r.depth]
                    && *depth + 1 >= r.depth
                    && order[..r.depth].iter().all(|&t| s[t] == r.s[t])
            });
            prop_assert!(ok, "restored {:?}@{} has no donor", r.s, r.depth);
        }
    }
}
