//! Deterministic work accounting with hard budgets.

use std::sync::atomic::{AtomicU64, Ordering};

/// Error signalled when a budget is exhausted mid-execution. For the generic
/// engine this is a *destructive* timeout: intermediate results are lost,
/// as the paper assumes for black-box engines (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work budget exhausted")
    }
}

impl std::error::Error for Timeout {}

/// A shared counter of *work units* with an optional hard limit.
///
/// One work unit is one elementary operation: a tuple scanned, a hash-table
/// probe step, a predicate evaluation, or a tuple produced. All engines in
/// the repository charge through this type with the same conventions, which
/// makes their unit totals comparable (the simulation-time metric used by
/// the benchmark harness alongside wall-clock time).
#[derive(Debug)]
pub struct WorkBudget {
    used: AtomicU64,
    limit: u64,
    /// Intermediate-result tuples produced (the paper's "Total Card."
    /// optimizer-quality metric in Tables 1–2).
    tuples: AtomicU64,
}

/// The default budget is unlimited (a zero limit would reject all work).
impl Default for WorkBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl WorkBudget {
    /// A budget allowing `limit` units.
    pub fn with_limit(limit: u64) -> Self {
        WorkBudget {
            used: AtomicU64::new(0),
            limit,
            tuples: AtomicU64::new(0),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self::with_limit(u64::MAX)
    }

    /// Charge `n` units. Returns `Err(Timeout)` if the limit is exceeded
    /// (the charge is still recorded, so `used()` reflects actual work).
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), Timeout> {
        let before = self.used.fetch_add(n, Ordering::Relaxed);
        if before.saturating_add(n) > self.limit {
            Err(Timeout)
        } else {
            Ok(())
        }
    }

    /// Atomically reserve `n` units if — and only if — the whole amount
    /// still fits under the limit. Returns `false` (leaving `used`
    /// untouched) otherwise.
    ///
    /// Unlike [`WorkBudget::charge`], which records the work it rejects
    /// (work already done must be accounted), `try_consume` reserves work
    /// *before* it happens: concurrent consumers can never collectively
    /// overspend the limit, which makes it the right primitive for handing
    /// out per-worker quotas from a shared budget.
    #[inline]
    pub fn try_consume(&self, n: u64) -> bool {
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let after = used.checked_add(n)?;
                (after <= self.limit).then_some(after)
            })
            .is_ok()
    }

    /// Return `n` previously consumed units to the budget (saturating at
    /// zero). Pairs with [`WorkBudget::try_consume`]: reserve a worst-case
    /// amount up front, then refund what went unused once the actual
    /// consumption is known.
    #[inline]
    pub fn refund(&self, n: u64) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                Some(used.saturating_sub(n))
            });
    }

    /// Reserve `n` units as an RAII [`WorkPermit`] that refunds them on
    /// drop, or `None` if they don't fit under the limit. This turns the
    /// budget into a concurrency gate: a budget with limit K and
    /// `acquire(1)` per task admits at most K tasks at a time (the server's
    /// admission control is exactly this).
    pub fn acquire(self: &std::sync::Arc<Self>, n: u64) -> Option<WorkPermit> {
        self.try_consume(n).then(|| WorkPermit {
            budget: self.clone(),
            units: n,
        })
    }

    /// Record `n` intermediate tuples produced (also charges `n` units).
    #[inline]
    pub fn produce_tuples(&self, n: u64) -> Result<(), Timeout> {
        self.tuples.fetch_add(n, Ordering::Relaxed);
        self.charge(n)
    }

    /// Units consumed so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Intermediate tuples produced so far.
    pub fn tuples_produced(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    /// Remaining units (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used())
    }

    /// True if the budget has been exceeded.
    pub fn exhausted(&self) -> bool {
        self.used() > self.limit
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// An RAII reservation of work units from a shared [`WorkBudget`]: the
/// units return to the budget when the permit drops. Obtained via
/// [`WorkBudget::acquire`].
#[derive(Debug)]
pub struct WorkPermit {
    budget: std::sync::Arc<WorkBudget>,
    units: u64,
}

impl WorkPermit {
    /// The number of units this permit holds.
    pub fn units(&self) -> u64 {
        self.units
    }
}

impl Drop for WorkPermit {
    fn drop(&mut self) {
        self.budget.refund(self.units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_limit() {
        let b = WorkBudget::with_limit(10);
        assert!(b.charge(6).is_ok());
        assert!(b.charge(4).is_ok());
        assert_eq!(b.remaining(), 0);
        assert!(b.charge(1).is_err());
        assert!(b.exhausted());
        assert_eq!(b.used(), 11);
    }

    #[test]
    fn unlimited_never_times_out() {
        let b = WorkBudget::unlimited();
        assert!(b.charge(u64::MAX / 2).is_ok());
        assert!(!b.exhausted());
    }

    #[test]
    fn tuple_production_counts_twice() {
        let b = WorkBudget::with_limit(100);
        b.produce_tuples(5).unwrap();
        assert_eq!(b.tuples_produced(), 5);
        assert_eq!(b.used(), 5);
    }

    #[test]
    fn try_consume_never_overspends() {
        let b = WorkBudget::with_limit(10);
        assert!(b.try_consume(6));
        assert!(!b.try_consume(5), "6 + 5 exceeds the limit");
        assert_eq!(b.used(), 6, "failed reservation must not be recorded");
        assert!(b.try_consume(4));
        assert!(!b.try_consume(1));
        assert!(!b.exhausted(), "reservations stop at the limit exactly");
    }

    #[test]
    fn refund_returns_reserved_units() {
        let b = WorkBudget::with_limit(10);
        assert!(b.try_consume(8));
        assert!(!b.try_consume(4));
        b.refund(5); // only 3 of the reservation were actually used
        assert_eq!(b.used(), 3);
        assert!(b.try_consume(7));
        b.refund(100); // over-refund saturates at zero
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn try_consume_handles_huge_requests() {
        let b = WorkBudget::unlimited();
        assert!(b.try_consume(u64::MAX - 1));
        assert!(!b.try_consume(2), "checked_add overflow must fail cleanly");
        assert!(b.try_consume(1));
    }

    #[test]
    fn permits_gate_concurrency_and_refund_on_drop() {
        let b = std::sync::Arc::new(WorkBudget::with_limit(2));
        let p1 = b.acquire(1).expect("first slot");
        let _p2 = b.acquire(1).expect("second slot");
        assert!(b.acquire(1).is_none(), "gate is full");
        drop(p1);
        let p3 = b.acquire(1).expect("slot freed by drop");
        assert_eq!(p3.units(), 1);
        assert_eq!(b.used(), 2);
    }

    #[test]
    fn concurrent_charging_is_exact() {
        let b = std::sync::Arc::new(WorkBudget::unlimited());
        let mut handles = vec![];
        for _ in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    b.charge(1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.used(), 4000);
    }
}
