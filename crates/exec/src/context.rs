//! Per-execution context shared by every strategy.
//!
//! An [`ExecContext`] bundles what used to be loose parameters (the stats
//! cache, the UDF registry) with two new cross-cutting controls:
//!
//! * a shared [`WorkBudget`] spanning a whole script or session, so a
//!   multi-statement script cannot exceed its caller's total work limit
//!   even though each engine also enforces its own per-query limit, and
//! * a cooperative [`CancelToken`] with an optional deadline, checked in
//!   every engine's slice loop: when it trips, the engine abandons the run
//!   and reports a timed-out [`crate::ExecOutcome`]. No threads are killed
//!   — cancellation is cooperative, like the paper's timeout discipline.
//!
//! Contexts are cheap to clone (everything is behind an `Arc`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skinner_query::UdfRegistry;
use skinner_stats::StatsCache;
use skinner_telemetry::Trace;

use crate::budget::WorkBudget;

/// Cooperative cancellation flag with an optional deadline.
///
/// Clones share the flag: cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel explicitly).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// A token that fires at `deadline`.
    pub fn deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancelled or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// Everything a strategy needs besides the bound query itself.
#[derive(Clone, Default)]
pub struct ExecContext {
    stats: Arc<StatsCache>,
    udfs: Arc<UdfRegistry>,
    budget: Arc<WorkBudget>,
    cancel: CancelToken,
    /// Worker threads parallel strategies may use; `0` = unset, resolved to
    /// the machine's available parallelism by [`ExecContext::threads`].
    threads: usize,
    /// Cross-query learning cache, type-erased because the concrete
    /// `TreeCache` lives above this crate (in `skinner_core`, which
    /// depends on `skinner_exec`). `None` = cross-query learning off —
    /// the default, preserving the paper's per-query discipline.
    learning_cache: Option<Arc<dyn std::any::Any + Send + Sync>>,
    /// Per-query trace span ring. `None` (the default) makes every span
    /// site a no-op; attaching one is always-on cheap (see
    /// [`skinner_telemetry::Trace`]).
    trace: Option<Arc<Trace>>,
}

impl ExecContext {
    /// Fresh context: empty stats/UDFs, unlimited budget, no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_stats(mut self, stats: Arc<StatsCache>) -> Self {
        self.stats = stats;
        self
    }

    pub fn with_udfs(mut self, udfs: Arc<UdfRegistry>) -> Self {
        self.udfs = udfs;
        self
    }

    pub fn with_budget(mut self, budget: Arc<WorkBudget>) -> Self {
        self.budget = budget;
        self
    }

    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Set the worker-thread count parallel strategies should use
    /// (clamped to at least 1; the session/database `threads` knob lands
    /// here).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads for parallel strategies: the configured knob, or the
    /// machine's available parallelism when unset.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// Statistics for cost-based strategies (SkinnerDB itself never reads
    /// them — the paper's "no statistics" discipline).
    pub fn stats(&self) -> &StatsCache {
        &self.stats
    }

    pub fn stats_arc(&self) -> &Arc<StatsCache> {
        &self.stats
    }

    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// The shared (script/session scope) work budget.
    pub fn budget(&self) -> &WorkBudget {
        &self.budget
    }

    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Cheap check engines make once per slice: cancelled or past deadline?
    #[inline]
    pub fn interrupted(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Attach a cross-query learning cache (the session/database
    /// `learning_cache` knob lands here). The value is type-erased; learned
    /// strategies downcast it back via [`ExecContext::learning_cache`].
    pub fn with_learning_cache(mut self, cache: Arc<dyn std::any::Any + Send + Sync>) -> Self {
        self.learning_cache = Some(cache);
        self
    }

    /// The attached cross-query learning cache, downcast to its concrete
    /// type; `None` when the knob is off or the type does not match.
    pub fn learning_cache<T: std::any::Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.learning_cache.clone()?.downcast::<T>().ok()
    }

    /// Attach a per-query trace so engines record stage spans into it.
    pub fn with_trace(mut self, trace: Arc<Trace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached per-query trace, if any. Engines call
    /// `ctx.trace()` at stage boundaries; `None` means don't record.
    #[inline]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_deref()
    }

    /// The trace behind its `Arc`, for handing to worker threads.
    pub fn trace_arc(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// The per-run work limit an engine should enforce: its own configured
    /// limit capped by what remains of the shared budget.
    pub fn effective_limit(&self, configured: u64) -> u64 {
        configured.min(self.budget.remaining())
    }

    /// Fold a finished run's consumption back into the shared budget (the
    /// over-limit error is irrelevant here — the run already ended).
    pub fn absorb_work(&self, used: u64) {
        let _ = self.budget.charge(used);
    }
}

/// The machine's available parallelism (the default for the `threads`
/// knob on databases and sessions).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("budget_used", &self.budget.used())
            .field("budget_limit", &self.budget.limit())
            .field("cancelled", &self.cancel.is_cancelled())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_flag_and_clone_sharing() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }

    #[test]
    fn threads_knob_defaults_to_available_parallelism() {
        let ctx = ExecContext::new();
        assert_eq!(ctx.threads(), default_threads());
        assert!(ctx.threads() >= 1);
        let ctx = ctx.with_threads(4);
        assert_eq!(ctx.threads(), 4);
        // Zero is clamped rather than re-enabling the default.
        assert_eq!(ExecContext::new().with_threads(0).threads(), 1);
    }

    #[test]
    fn learning_cache_slot_roundtrips_by_type() {
        let ctx = ExecContext::new();
        assert!(ctx.learning_cache::<String>().is_none());
        let ctx = ctx.with_learning_cache(Arc::new(String::from("cache")));
        assert_eq!(*ctx.learning_cache::<String>().unwrap(), "cache");
        assert!(ctx.learning_cache::<u64>().is_none(), "wrong type is None");
    }

    #[test]
    fn trace_slot_is_optional_and_shared() {
        let ctx = ExecContext::new();
        assert!(ctx.trace().is_none());
        let trace = Trace::new(8);
        let ctx = ctx.with_trace(trace.clone());
        ctx.trace().unwrap().record("preprocess", 0, 3);
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].detail, 3);
    }

    #[test]
    fn shared_budget_caps_effective_limit() {
        let ctx = ExecContext::new().with_budget(Arc::new(WorkBudget::with_limit(100)));
        assert_eq!(ctx.effective_limit(u64::MAX), 100);
        assert_eq!(ctx.effective_limit(30), 30);
        ctx.absorb_work(80);
        assert_eq!(ctx.effective_limit(u64::MAX), 20);
        ctx.absorb_work(80); // over-limit absorption is not an error
        assert_eq!(ctx.effective_limit(u64::MAX), 0);
    }
}
