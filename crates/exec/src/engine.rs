//! Blocking left-deep join execution with materialized intermediates.
//!
//! This is the "existing DBMS" execution model of paper Section 4.3: a join
//! order is executed as a sequence of binary joins (hash join when equality
//! predicates connect the next table, nested loops otherwise), each join
//! materializing its full intermediate result. If the work budget runs out
//! mid-way, **everything is lost** — there is no partial-state backup, which
//! is precisely the handicap Skinner-G's pyramid timeout scheme works
//! around and Skinner-C's custom engine eliminates.
//!
//! Two profiles model the paper's engines: a *row store* (Postgres-like,
//! higher per-tuple constant) and a *column store* (MonetDB-like, vectorized,
//! lower per-tuple constant, optional parallel probes).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use skinner_query::expr::EvalCtx;
use skinner_query::query::GenericPred;
use skinner_query::{EquiPred, JoinQuery, TableSet};
use skinner_storage::{RowId, Table};

use crate::budget::{Timeout, WorkBudget};
use crate::TupleIxs;

/// Execution-engine profile.
#[derive(Debug, Clone, Copy)]
pub struct ExecProfile {
    /// Vectorized column-at-a-time engine (MonetDB-like) vs row-at-a-time
    /// iterator engine (Postgres-like). Modelled as a per-tuple work-unit
    /// constant: 1 for vectorized, 3 for row-at-a-time.
    pub vectorized: bool,
    /// Probe-phase parallelism (>1 splits probes across threads).
    pub threads: usize,
}

impl ExecProfile {
    /// Postgres-like profile.
    pub fn row_store() -> Self {
        ExecProfile {
            vectorized: false,
            threads: 1,
        }
    }

    /// MonetDB-like single-threaded profile.
    pub fn column_store() -> Self {
        ExecProfile {
            vectorized: true,
            threads: 1,
        }
    }

    /// MonetDB-like multi-threaded profile.
    pub fn column_store_parallel(threads: usize) -> Self {
        ExecProfile {
            vectorized: true,
            threads: threads.max(1),
        }
    }

    #[inline]
    fn tuple_cost(&self) -> u64 {
        if self.vectorized {
            1
        } else {
            3
        }
    }
}

/// Join output: materialized tuples or (for the cardinality oracle) a count.
#[derive(Debug)]
pub enum JoinOutput {
    Tuples(Vec<TupleIxs>),
    Count(u64),
}

impl JoinOutput {
    pub fn len(&self) -> u64 {
        match self {
            JoinOutput::Tuples(v) => v.len() as u64,
            JoinOutput::Count(c) => *c,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn into_tuples(self) -> Vec<TupleIxs> {
        match self {
            JoinOutput::Tuples(v) => v,
            JoinOutput::Count(_) => panic!("count-only join output"),
        }
    }
}

/// Execute join `order` over (already filtered) `tables`.
///
/// * `leftmost_range` restricts the first table of the order to a row range —
///   Skinner-G's batches; pass `0..n` for full execution.
/// * `floors[t]` excludes rows `< floors[t]` of every table — batches already
///   processed and removed (paper Section 4.3).
/// * `count_only` skips materializing the final result (cardinality oracle).
///
/// `order` may cover a subset of the query's tables; only predicates fully
/// contained in the covered set are applied.
#[allow(clippy::too_many_arguments)]
pub fn execute_join(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    order: &[usize],
    leftmost_range: Range<RowId>,
    floors: &[RowId],
    profile: &ExecProfile,
    budget: &WorkBudget,
    count_only: bool,
) -> Result<JoinOutput, Timeout> {
    assert!(!order.is_empty(), "empty join order");
    let m = query.num_tables();
    let tc = profile.tuple_cost();
    let interner = tables[0].interner().clone();

    // Leftmost scan.
    let t0 = order[0];
    let lo = leftmost_range.start.max(floors[t0]);
    let hi = leftmost_range.end.min(tables[t0].cardinality());
    let mut current: Vec<TupleIxs> = Vec::with_capacity(hi.saturating_sub(lo) as usize);
    for row in lo..hi {
        budget.charge(tc)?;
        let mut t = vec![0 as RowId; m].into_boxed_slice();
        t[t0] = row;
        current.push(t);
    }

    let mut prefix = TableSet::singleton(t0);
    for (k, &tk) in order.iter().enumerate().skip(1) {
        let is_last = k + 1 == order.len();
        let step_set = prefix.with(tk);
        // Predicates newly applicable at this step.
        let equi: Vec<&EquiPred> = query
            .equi_preds
            .iter()
            .filter(|p| p.table_set().is_subset_of(&step_set) && p.side_on(tk).is_some())
            .collect();
        let generic: Vec<&GenericPred> = query
            .generic_preds
            .iter()
            .filter(|p| p.tables.is_subset_of(&step_set) && p.tables.contains(tk))
            .collect();

        let produced = if equi.is_empty() {
            nested_loop_step(
                tables,
                query,
                &current,
                tk,
                floors[tk],
                &generic,
                profile,
                budget,
                &interner,
                is_last && count_only,
            )?
        } else {
            hash_join_step(
                tables,
                query,
                &current,
                tk,
                floors[tk],
                &equi,
                &generic,
                profile,
                budget,
                &interner,
                is_last && count_only,
            )?
        };
        match produced {
            StepOutput::Tuples(v) => current = v,
            StepOutput::Count(c) => return Ok(JoinOutput::Count(c)),
        }
        prefix = step_set;
        if current.is_empty() {
            break;
        }
    }
    if count_only {
        Ok(JoinOutput::Count(current.len() as u64))
    } else {
        Ok(JoinOutput::Tuples(current))
    }
}

/// Join `current` (tuples over the `prefix` tables) with one more table
/// `tk`, materializing the extended tuples. Public for step-at-a-time
/// consumers (the re-optimizer baseline re-plans between steps).
#[allow(clippy::too_many_arguments)]
pub fn join_step(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    current: &[TupleIxs],
    prefix: TableSet,
    tk: usize,
    floors: &[RowId],
    profile: &ExecProfile,
    budget: &WorkBudget,
) -> Result<Vec<TupleIxs>, Timeout> {
    let interner = tables[0].interner().clone();
    let step_set = prefix.with(tk);
    let equi: Vec<&EquiPred> = query
        .equi_preds
        .iter()
        .filter(|p| p.table_set().is_subset_of(&step_set) && p.side_on(tk).is_some())
        .collect();
    let generic: Vec<&GenericPred> = query
        .generic_preds
        .iter()
        .filter(|p| p.tables.is_subset_of(&step_set) && p.tables.contains(tk))
        .collect();
    let out = if equi.is_empty() {
        nested_loop_step(
            tables, query, current, tk, floors[tk], &generic, profile, budget, &interner, false,
        )?
    } else {
        hash_join_step(
            tables, query, current, tk, floors[tk], &equi, &generic, profile, budget, &interner,
            false,
        )?
    };
    match out {
        StepOutput::Tuples(v) => Ok(v),
        StepOutput::Count(_) => unreachable!("count_only was false"),
    }
}

enum StepOutput {
    Tuples(Vec<TupleIxs>),
    Count(u64),
}

/// FxHash-style combination of canonical `u64` keys.
#[inline]
fn combine_keys(h: u64, k: u64) -> u64 {
    (h.rotate_left(5) ^ k).wrapping_mul(0x517c_c1b7_2722_0a95)
}

#[allow(clippy::too_many_arguments)]
fn hash_join_step(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    current: &[TupleIxs],
    tk: usize,
    floor: RowId,
    equi: &[&EquiPred],
    generic: &[&GenericPred],
    profile: &ExecProfile,
    budget: &WorkBudget,
    interner: &Arc<skinner_storage::Interner>,
    count_only: bool,
) -> Result<StepOutput, Timeout> {
    let tc = profile.tuple_cost();
    let table = &tables[tk];
    let n = table.cardinality();
    // Build side: hash all (remaining) rows of tk on the combined key of its
    // equality columns. Rebuilt per invocation — real engines executing a
    // one-shot SQL statement do the same, which is exactly why Skinner-G's
    // slices are expensive on black-box engines.
    let cols: Vec<usize> = equi
        .iter()
        .map(|p| p.side_on(tk).expect("pred must touch tk").col)
        .collect();
    let mut build: HashMap<u64, Vec<RowId>> = HashMap::new();
    for row in floor..n {
        budget.charge(tc)?;
        let mut key = 0u64;
        for &c in &cols {
            key = combine_keys(key, table.column(c).key_at(row));
        }
        build.entry(key).or_default().push(row);
    }

    // Probe side.
    let probe_one = |tuple: &TupleIxs,
                     out: &mut Vec<TupleIxs>,
                     count: &mut u64,
                     scratch: &mut Vec<RowId>|
     -> Result<(), Timeout> {
        budget.charge(tc)?;
        let mut key = 0u64;
        for p in equi {
            let other = p.other_side(tk).expect("two-sided pred");
            let row = tuple[other.table];
            key = combine_keys(key, tables[other.table].column(other.col).key_at(row));
        }
        let Some(matches) = build.get(&key) else {
            return Ok(());
        };
        scratch.clear();
        scratch.extend_from_slice(tuple);
        for &row in matches {
            budget.charge(1)?;
            // Verify against combined-key collisions.
            let verified = equi.iter().all(|p| {
                let mine = p.side_on(tk).unwrap();
                let other = p.other_side(tk).unwrap();
                tables[tk].column(mine.col).key_at(row)
                    == tables[other.table]
                        .column(other.col)
                        .key_at(tuple[other.table])
            });
            if !verified {
                continue;
            }
            scratch[tk] = row;
            budget.charge(generic.len() as u64)?;
            let ctx = EvalCtx::new(tables, scratch, interner);
            if generic.iter().all(|p| p.expr.eval_bool(&ctx)) {
                budget.produce_tuples(1)?;
                budget.charge(tc.saturating_sub(1))?;
                if count_only {
                    *count += 1;
                } else {
                    out.push(scratch.clone().into_boxed_slice());
                }
            }
        }
        Ok(())
    };

    run_probe(current, profile, probe_one, count_only, query.num_tables())
}

#[allow(clippy::too_many_arguments)]
fn nested_loop_step(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    current: &[TupleIxs],
    tk: usize,
    floor: RowId,
    generic: &[&GenericPred],
    profile: &ExecProfile,
    budget: &WorkBudget,
    interner: &Arc<skinner_storage::Interner>,
    count_only: bool,
) -> Result<StepOutput, Timeout> {
    let tc = profile.tuple_cost();
    let n = tables[tk].cardinality();
    let probe_one = |tuple: &TupleIxs,
                     out: &mut Vec<TupleIxs>,
                     count: &mut u64,
                     scratch: &mut Vec<RowId>|
     -> Result<(), Timeout> {
        scratch.clear();
        scratch.extend_from_slice(tuple);
        for row in floor..n {
            budget.charge(1)?;
            scratch[tk] = row;
            budget.charge(generic.len() as u64)?;
            let ctx = EvalCtx::new(tables, scratch, interner);
            if generic.iter().all(|p| p.expr.eval_bool(&ctx)) {
                budget.produce_tuples(1)?;
                budget.charge(tc.saturating_sub(1))?;
                if count_only {
                    *count += 1;
                } else {
                    out.push(scratch.clone().into_boxed_slice());
                }
            }
        }
        Ok(())
    };
    run_probe(current, profile, probe_one, count_only, query.num_tables())
}

/// Drive a per-tuple probe closure, optionally in parallel across threads.
fn run_probe<F>(
    current: &[TupleIxs],
    profile: &ExecProfile,
    probe_one: F,
    count_only: bool,
    width: usize,
) -> Result<StepOutput, Timeout>
where
    F: Fn(&TupleIxs, &mut Vec<TupleIxs>, &mut u64, &mut Vec<RowId>) -> Result<(), Timeout> + Sync,
{
    let threads = profile.threads;
    if threads <= 1 || current.len() < 1024 {
        let mut out = Vec::new();
        let mut count = 0u64;
        let mut scratch = vec![0 as RowId; width];
        for tuple in current {
            probe_one(tuple, &mut out, &mut count, &mut scratch)?;
        }
        return Ok(if count_only {
            StepOutput::Count(count)
        } else {
            StepOutput::Tuples(out)
        });
    }
    let chunk = current.len().div_ceil(threads);
    let results: Vec<Result<(Vec<TupleIxs>, u64), Timeout>> = crossbeam::thread::scope(|scope| {
        let probe_one = &probe_one;
        let mut handles = Vec::new();
        for part in current.chunks(chunk) {
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                let mut count = 0u64;
                let mut scratch = vec![0 as RowId; width];
                for tuple in part {
                    probe_one(tuple, &mut out, &mut count, &mut scratch)?;
                }
                Ok((out, count))
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("probe thread panicked");
    let mut out = Vec::new();
    let mut count = 0u64;
    for r in results {
        let (v, c) = r?;
        out.extend(v);
        count += c;
    }
    Ok(if count_only {
        StepOutput::Count(count)
    } else {
        StepOutput::Tuples(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..20 {
            a.push_row(&[Value::Int(i), Value::Int(i % 4)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..30 {
            b.push_row(&[Value::Int(i % 20), Value::Int(i)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..10 {
            c.push_row(&[Value::Int(i * 3)]);
        }
        cat.register(c.finish());
        (cat, UdfRegistry::new())
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    fn full_run(q: &JoinQuery, order: &[usize], profile: &ExecProfile) -> Vec<TupleIxs> {
        let budget = WorkBudget::unlimited();
        let floors = vec![0; q.num_tables()];
        let n0 = q.tables[order[0]].cardinality();
        execute_join(&q.tables, q, order, 0..n0, &floors, profile, &budget, false)
            .unwrap()
            .into_tuples()
    }

    #[test]
    fn two_table_hash_join() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let res = full_run(&q, &[0, 1], &ExecProfile::row_store());
        // Every b row matches exactly one a row → 30 results.
        assert_eq!(res.len(), 30);
        // Order invariance.
        let res2 = full_run(&q, &[1, 0], &ExecProfile::column_store());
        assert_eq!(res.len(), res2.len());
    }

    #[test]
    fn three_table_chain_and_count_only() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
            &udfs,
        );
        let res = full_run(&q, &[0, 1, 2], &ExecProfile::row_store());
        let budget = WorkBudget::unlimited();
        let floors = vec![0; 3];
        let cnt = execute_join(
            &q.tables,
            &q,
            &[2, 1, 0],
            0..q.tables[2].cardinality(),
            &floors,
            &ExecProfile::column_store(),
            &budget,
            true,
        )
        .unwrap();
        assert_eq!(res.len() as u64, cnt.len());
    }

    #[test]
    fn nested_loop_for_theta_join() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, c WHERE a.id < c.bw", &cat, &udfs);
        let res = full_run(&q, &[0, 1], &ExecProfile::row_store());
        // Count manually: pairs (i, 3j) with i < 3j, i in 0..20, j in 0..10.
        let expected: usize = (0..20)
            .map(|i| (0..10).filter(|&j| i < 3 * j).count())
            .sum();
        assert_eq!(res.len(), expected);
    }

    #[test]
    fn batch_range_and_floors() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let budget = WorkBudget::unlimited();
        let floors = vec![0, 0];
        // Only a-rows 0..5 as the batch.
        let res = execute_join(
            &q.tables,
            &q,
            &[0, 1],
            0..5,
            &floors,
            &ExecProfile::row_store(),
            &budget,
            false,
        )
        .unwrap()
        .into_tuples();
        // b has 30 rows over aid = i % 20; aids 0..5 are hit twice each
        // (i and i+20 for i<10).
        assert_eq!(res.len(), 10);
        // Floor on b excludes its first 20 rows.
        let floors = vec![0, 20];
        let res = execute_join(
            &q.tables,
            &q,
            &[0, 1],
            0..20,
            &floors,
            &ExecProfile::row_store(),
            &budget,
            false,
        )
        .unwrap()
        .into_tuples();
        assert_eq!(res.len(), 10); // rows 20..30 of b → aids 0..10
    }

    #[test]
    fn timeout_propagates() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let budget = WorkBudget::with_limit(10);
        let floors = vec![0, 0];
        let r = execute_join(
            &q.tables,
            &q,
            &[0, 1],
            0..20,
            &floors,
            &ExecProfile::row_store(),
            &budget,
            false,
        );
        assert!(matches!(r, Err(Timeout)));
    }

    #[test]
    fn parallel_probe_matches_serial() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
            &udfs,
        );
        let serial = full_run(&q, &[0, 1, 2], &ExecProfile::column_store());
        let parallel = full_run(&q, &[0, 1, 2], &ExecProfile::column_store_parallel(4));
        let key = |v: &Vec<TupleIxs>| {
            let mut k: Vec<Vec<RowId>> = v.iter().map(|t| t.to_vec()).collect();
            k.sort();
            k
        };
        assert_eq!(key(&serial.clone()), key(&parallel.clone()));
    }

    #[test]
    fn empty_table_short_circuits() {
        let (cat, udfs) = setup();
        let mut e = cat.builder("empty_t", schema![("x", Int)]);
        let _ = &mut e;
        cat.register(e.finish());
        let q = bind(
            "SELECT a.id FROM a, empty_t WHERE a.id = empty_t.x",
            &cat,
            &udfs,
        );
        let res = full_run(&q, &[1, 0], &ExecProfile::row_store());
        assert!(res.is_empty());
    }

    #[test]
    fn row_store_charges_more_than_column_store() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat, &udfs);
        let floors = vec![0, 0];
        let b_row = WorkBudget::unlimited();
        let b_col = WorkBudget::unlimited();
        execute_join(
            &q.tables,
            &q,
            &[0, 1],
            0..20,
            &floors,
            &ExecProfile::row_store(),
            &b_row,
            false,
        )
        .unwrap();
        execute_join(
            &q.tables,
            &q,
            &[0, 1],
            0..20,
            &floors,
            &ExecProfile::column_store(),
            &b_col,
            false,
        )
        .unwrap();
        assert!(b_row.used() > b_col.used());
        assert_eq!(b_row.tuples_produced(), b_col.tuples_produced());
    }
}
