//! Generic query execution engine and shared pipeline stages.
//!
//! This crate provides everything the paper treats as "an existing DBMS":
//!
//! * [`budget`] — deterministic *work units* with hard budgets. Work units
//!   count elementary operations (tuples scanned, hash probes, predicate
//!   evaluations, tuples produced) identically across every engine in this
//!   repository, so simulated "time" is comparable between SkinnerDB and the
//!   baselines — the hardware-independent counterpart of the paper's wall
//!   clock, mirroring its cardinality columns (Tables 1–2) and
//!   "#evaluations" (Figure 11).
//! * [`preprocess`](mod@preprocess) — unary filtering into materialized filtered tables
//!   (optionally parallel), shared by all engines (paper Section 3's
//!   pre-processor).
//! * [`engine`] — a blocking left-deep join executor (hash joins on equality
//!   predicates, nested loops otherwise) that materializes intermediate
//!   results per binary join and **loses all progress on timeout** — exactly
//!   the black-box behaviour Skinner-G must cope with (Section 4.3).
//! * [`postprocess`](mod@postprocess) — grouping, aggregation, ordering, limit, distinct
//!   (Section 3's post-processor), plus [`postprocess_parallel`]: the same
//!   pipeline split across the worker pool (per-worker partial aggregation
//!   or local sort, coordinator hash-/k-way merge) with identical results
//!   at every thread count.
//! * [`traditional`] — the full traditional-DBMS query path (statistics →
//!   DP optimizer → execution), configurable between a row-at-a-time profile
//!   (Postgres-like) and a vectorized column profile (MonetDB-like).
//! * [`reference`](mod@reference) — a naive nested-loop executor used as ground truth in
//!   correctness tests.
//! * [`oracle`] — exact join-cardinality counting, which defines the
//!   *optimal* join orders replayed in the paper's Tables 3 and 4.
//!
//! It also defines the **execution API** every engine in the workspace
//! (and external crates) plugs into:
//!
//! * [`strategy`] — the object-safe [`ExecutionStrategy`] trait and the
//!   [`StrategyRegistry`] for name-based registration,
//! * [`context`] — [`ExecContext`]: stats, UDFs, a shared [`WorkBudget`],
//!   and a cooperative [`CancelToken`] threaded through the slice loops,
//! * [`outcome`] — the one shared [`ExecOutcome`] / [`ExecMetrics`] pair
//!   all strategies report,
//! * [`pool`] — the persistent [`WorkerPool`] plus tuple-range partitioning
//!   and metric merging used by data-parallel strategies such as
//!   `parallel_skinner`.

pub mod budget;
pub mod context;
pub mod engine;
pub mod oracle;
pub mod outcome;
pub mod pool;
pub mod postprocess;
pub mod preprocess;
pub mod reference;
pub mod result;
pub mod strategy;
pub mod traditional;
pub mod zonescan;

pub use budget::{Timeout, WorkBudget, WorkPermit};
pub use context::{default_threads, CancelToken, ExecContext};
pub use engine::{execute_join, join_step, ExecProfile, JoinOutput};
pub use outcome::{ExecMetrics, ExecOutcome};
pub use pool::{merge_worker_metrics, partition_tuples, CompletionPool, TupleRange, WorkerPool};
pub use postprocess::{postprocess, postprocess_parallel};
pub use preprocess::{preprocess, Preprocessed};
pub use result::QueryResult;
pub use strategy::{ExecutionStrategy, ReferenceStrategy, StrategyRegistry, TraditionalStrategy};
pub use traditional::{run_traditional, TraditionalConfig};
pub use zonescan::{plan_scan, ScanPlan};

// Telemetry rides through the execution API (the trace slot on
// [`ExecContext`]); re-export the types engines and callers touch so
// downstream crates need no direct `skinner_telemetry` dependency.
pub use skinner_telemetry::{Span, SpanTimer, Trace};

/// A join-result tuple: one row id per query table, in table-position order.
pub type TupleIxs = Box<[skinner_storage::RowId]>;
