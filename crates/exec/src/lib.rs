//! Generic query execution engine and shared pipeline stages.
//!
//! This crate provides everything the paper treats as "an existing DBMS":
//!
//! * [`budget`] — deterministic *work units* with hard budgets. Work units
//!   count elementary operations (tuples scanned, hash probes, predicate
//!   evaluations, tuples produced) identically across every engine in this
//!   repository, so simulated "time" is comparable between SkinnerDB and the
//!   baselines — the hardware-independent counterpart of the paper's wall
//!   clock, mirroring its cardinality columns (Tables 1–2) and
//!   "#evaluations" (Figure 11).
//! * [`preprocess`] — unary filtering into materialized filtered tables
//!   (optionally parallel), shared by all engines (paper Section 3's
//!   pre-processor).
//! * [`engine`] — a blocking left-deep join executor (hash joins on equality
//!   predicates, nested loops otherwise) that materializes intermediate
//!   results per binary join and **loses all progress on timeout** — exactly
//!   the black-box behaviour Skinner-G must cope with (Section 4.3).
//! * [`postprocess`] — grouping, aggregation, ordering, limit, distinct
//!   (Section 3's post-processor).
//! * [`traditional`] — the full traditional-DBMS query path (statistics →
//!   DP optimizer → execution), configurable between a row-at-a-time profile
//!   (Postgres-like) and a vectorized column profile (MonetDB-like).
//! * [`reference`] — a naive nested-loop executor used as ground truth in
//!   correctness tests.
//! * [`oracle`] — exact join-cardinality counting, which defines the
//!   *optimal* join orders replayed in the paper's Tables 3 and 4.

pub mod budget;
pub mod engine;
pub mod oracle;
pub mod postprocess;
pub mod preprocess;
pub mod reference;
pub mod result;
pub mod traditional;

pub use budget::{Timeout, WorkBudget};
pub use engine::{execute_join, join_step, ExecProfile, JoinOutput};
pub use postprocess::postprocess;
pub use preprocess::{preprocess, Preprocessed};
pub use result::QueryResult;
pub use traditional::{run_traditional, TraditionalConfig, TraditionalOutcome};

/// A join-result tuple: one row id per query table, in table-position order.
pub type TupleIxs = Box<[skinner_storage::RowId]>;
