//! Exact join-cardinality oracle.
//!
//! The paper's Tables 3 and 4 replay "optimal" join orders — optimal under
//! the `C_out` metric with *true* cardinalities. This oracle computes those
//! true cardinalities by actually executing sub-joins (count-only) over the
//! filtered tables, memoizing per table subset, with a work cap so that
//! pathological subsets report a saturated sentinel instead of running
//! forever (the optimum never goes through such subsets anyway).

use std::collections::HashMap;
use std::sync::Arc;

use skinner_optimizer::best_left_deep;
use skinner_query::{JoinGraph, JoinQuery, TableSet};
use skinner_storage::Table;

use crate::budget::WorkBudget;
use crate::engine::{execute_join, ExecProfile};

/// Sentinel cardinality for subsets whose exact count exceeded the cap.
pub const SATURATED_CARD: f64 = 1e18;

/// Memoizing exact-cardinality oracle over one query's filtered tables.
pub struct CardOracle<'q> {
    query: &'q JoinQuery,
    tables: Vec<Arc<Table>>,
    graph: JoinGraph,
    cache: HashMap<u64, f64>,
    /// Per-subset work cap.
    cap_units: u64,
}

impl<'q> CardOracle<'q> {
    /// `tables` must be the *filtered* tables of the query (unary predicates
    /// already applied).
    pub fn new(query: &'q JoinQuery, tables: Vec<Arc<Table>>, cap_units: u64) -> Self {
        let graph = query.join_graph();
        CardOracle {
            query,
            tables,
            graph,
            cache: HashMap::new(),
            cap_units,
        }
    }

    /// Exact cardinality of the join of `set` (all contained predicates
    /// applied), or [`SATURATED_CARD`] when counting exceeded the cap.
    pub fn card(&mut self, set: TableSet) -> f64 {
        if let Some(&c) = self.cache.get(&set.mask()) {
            return c;
        }
        let c = self.count(set);
        self.cache.insert(set.mask(), c);
        c
    }

    fn count(&mut self, set: TableSet) -> f64 {
        if set.len() == 1 {
            let t = set.iter().next().unwrap();
            return self.tables[t].num_rows() as f64;
        }
        let order = self.cheap_order_within(set);
        let budget = WorkBudget::with_limit(self.cap_units);
        let floors = vec![0; self.query.num_tables()];
        let n0 = self.tables[order[0]].cardinality();
        match execute_join(
            &self.tables,
            self.query,
            &order,
            0..n0,
            &floors,
            &ExecProfile::column_store(),
            &budget,
            true,
        ) {
            Ok(out) => out.len() as f64,
            Err(_) => SATURATED_CARD,
        }
    }

    /// A reasonable execution order within `set`: greedily pick the smallest
    /// already-known-cardinality extension, preferring connected tables.
    fn cheap_order_within(&mut self, set: TableSet) -> Vec<usize> {
        let mut order = Vec::with_capacity(set.len());
        // Start from the smallest table in the set.
        let first = set
            .iter()
            .min_by_key(|&t| self.tables[t].num_rows())
            .expect("non-empty set");
        order.push(first);
        let mut selected = TableSet::singleton(first);
        while selected != set {
            let remaining = set.difference(&selected);
            let eligible = self.graph.eligible_next(selected);
            let mut pool: Vec<usize> = eligible.intersection(&remaining).iter().collect();
            if pool.is_empty() {
                pool = remaining.iter().collect();
            }
            let next = pool
                .into_iter()
                .min_by_key(|&t| self.tables[t].num_rows())
                .unwrap();
            order.push(next);
            selected.insert(next);
        }
        order
    }

    /// Number of distinct subsets counted so far.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }
}

/// The true-`C_out`-optimal left-deep join order of `query` over its
/// filtered `tables`, with its cost. This is the "Optimal" row generator for
/// the replay experiments.
pub fn optimal_order(
    query: &JoinQuery,
    tables: Vec<Arc<Table>>,
    cap_units: u64,
) -> (Vec<usize>, f64) {
    let graph = query.join_graph();
    let mut oracle = CardOracle::new(query, tables, cap_units);
    best_left_deep(&graph, |s| oracle.card(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        // "huge" 200 rows, "mid" 50, "tiny" 2; chain tiny–mid–huge.
        let mut tiny = cat.builder("tiny", schema![("id", Int)]);
        for i in 0..2 {
            tiny.push_row(&[Value::Int(i)]);
        }
        cat.register(tiny.finish());
        let mut mid = cat.builder("mid", schema![("tid", Int), ("hid", Int)]);
        for i in 0..50 {
            mid.push_row(&[Value::Int(i % 2), Value::Int(i)]);
        }
        cat.register(mid.finish());
        let mut huge = cat.builder("huge", schema![("mid_id", Int)]);
        for i in 0..200 {
            huge.push_row(&[Value::Int(i % 50)]);
        }
        cat.register(huge.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn exact_counts_match_execution() {
        let cat = setup();
        let q = bind(
            "SELECT tiny.id FROM tiny, mid, huge \
             WHERE tiny.id = mid.tid AND mid.hid = huge.mid_id",
            &cat,
        );
        let budget = WorkBudget::unlimited();
        let pre = preprocess(&q, &budget, 1).unwrap();
        let mut oracle = CardOracle::new(&q, pre.tables.clone(), u64::MAX);
        assert_eq!(oracle.card(TableSet::from_iter([0, 1])), 50.0);
        assert_eq!(oracle.card(TableSet::from_iter([1, 2])), 200.0);
        assert_eq!(oracle.card(TableSet::from_iter([0, 1, 2])), 200.0);
        // Memoized.
        assert_eq!(oracle.cache_size(), 3);
    }

    #[test]
    fn optimal_order_starts_from_selective_side() {
        let cat = setup();
        let q = bind(
            "SELECT tiny.id FROM tiny, mid, huge \
             WHERE tiny.id = mid.tid AND mid.hid = huge.mid_id AND tiny.id = 0",
            &cat,
        );
        let budget = WorkBudget::unlimited();
        let pre = preprocess(&q, &budget, 1).unwrap();
        let (order, cost) = optimal_order(&q, pre.tables, u64::MAX);
        assert_eq!(order[0], 0, "{order:?}");
        assert!(cost > 0.0);
    }

    #[test]
    fn cap_saturates_instead_of_hanging() {
        let cat = setup();
        let q = bind(
            "SELECT mid.hid FROM mid, huge WHERE mid.hid = huge.mid_id",
            &cat,
        );
        let budget = WorkBudget::unlimited();
        let pre = preprocess(&q, &budget, 1).unwrap();
        let mut oracle = CardOracle::new(&q, pre.tables, 5);
        assert_eq!(oracle.card(TableSet::from_iter([0, 1])), SATURATED_CARD);
    }
}
