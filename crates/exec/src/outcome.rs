//! The shared outcome type every execution strategy returns.
//!
//! Before the `ExecutionStrategy` redesign each engine declared its own
//! per-engine outcome struct and the facade hand-copied the common fields.
//! Now there is exactly one shape:
//! the four fields every caller needs, plus an [`ExecMetrics`] block for
//! the per-engine instrumentation the benchmark harness reads (the paper's
//! convergence, memory and cardinality experiments).

use std::time::Duration;

use crate::result::QueryResult;

/// Normalized result of executing one bound query under any strategy.
#[derive(Debug)]
pub struct ExecOutcome {
    pub result: QueryResult,
    /// Deterministic work units consumed (comparable across strategies).
    pub work_units: u64,
    pub wall: Duration,
    /// The run hit its work limit, deadline, or cancellation token; the
    /// result is empty (destructive-timeout semantics).
    pub timed_out: bool,
    /// Engine-specific instrumentation; empty where an engine has nothing
    /// to report.
    pub metrics: ExecMetrics,
}

impl ExecOutcome {
    /// A successful run with no extra instrumentation.
    pub fn completed(result: QueryResult, work_units: u64, wall: Duration) -> Self {
        ExecOutcome {
            result,
            work_units,
            wall,
            timed_out: false,
            metrics: ExecMetrics::default(),
        }
    }

    /// A timed-out run: empty result over the query's output columns.
    pub fn timeout(columns: Vec<String>, work_units: u64, wall: Duration) -> Self {
        ExecOutcome {
            result: QueryResult::empty(columns),
            work_units,
            wall,
            timed_out: true,
            metrics: ExecMetrics::default(),
        }
    }

    /// Attach instrumentation (builder style).
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = metrics;
        self
    }
}

/// Instrumentation shared across engines. Strategy implementations fill in
/// what applies to them and leave the rest at the defaults; scalar metrics
/// without a dedicated field go into [`ExecMetrics::counters`].
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// The join order executed (traditional: the planned order; Skinner-C:
    /// the most-visited order at termination, replayed in Tables 3/4;
    /// re-optimizer: the order actually materialized).
    pub order: Vec<usize>,
    /// Intermediate tuples produced — the paper's "Total Card."
    /// optimizer-quality metric (Tables 1–2).
    pub intermediate_tuples: u64,
    /// Deduplicated join-result tuples (Skinner-C).
    pub result_tuples: u64,
    /// Time slices / iterations executed by learning engines.
    pub slices: u64,
    /// UCT search-tree nodes (Figure 8a).
    pub uct_nodes: usize,
    /// Progress-tracker trie nodes (Figure 8b).
    pub tracker_nodes: usize,
    /// Result-set bytes (Figure 8c).
    pub result_set_bytes: usize,
    /// UCT + tracker + result-set + index bytes (Figure 8d).
    pub total_aux_bytes: usize,
    /// (slice, UCT nodes) samples (Figure 7a).
    pub tree_growth: Vec<(u64, usize)>,
    /// Slice counts per join order, most-used first (Figure 7b).
    pub order_slice_counts: Vec<(Vec<usize>, u64)>,
    /// Per-shard learner counters `(first_table, visits, cas_retries)`
    /// from sharded-tree strategies (`parallel_skinner`); a single entry
    /// for single-root trees. The `thread_scaling` benchmark serializes
    /// these into `BENCH_thread_scaling.json`.
    pub shard_stats: Vec<(usize, u64, u64)>,
    /// Zone-mapped pages whose rows were evaluated during pre-processing
    /// (0 for purely in-memory tables, which carry no zone maps).
    pub pages_read: u64,
    /// Zone-mapped pages skipped outright via min/max bounds.
    pub pages_skipped: u64,
    /// Named scalar metrics: `routings` (eddy), `replans` (re-optimizer),
    /// `rounds` (Skinner-H), `timeout_levels` (Skinner-G), ….
    pub counters: Vec<(&'static str, u64)>,
    /// Which side produced a hybrid strategy's result (`"traditional"` or
    /// `"learned"`).
    pub winner: Option<&'static str>,
}

impl ExecMetrics {
    /// Look up a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Set (or overwrite) a named counter, builder style.
    pub fn with_counter(mut self, name: &'static str, value: u64) -> Self {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.counters.push((name, value)),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_counters() {
        let ok = ExecOutcome::completed(
            QueryResult::empty(vec!["x".into()]),
            42,
            Duration::from_millis(1),
        );
        assert!(!ok.timed_out);
        assert_eq!(ok.work_units, 42);

        let to = ExecOutcome::timeout(vec!["x".into()], 7, Duration::ZERO).with_metrics(
            ExecMetrics::default()
                .with_counter("rounds", 3)
                .with_counter("rounds", 5)
                .with_counter("replans", 1),
        );
        assert!(to.timed_out);
        assert_eq!(to.result.num_rows(), 0);
        assert_eq!(to.metrics.counter("rounds"), Some(5));
        assert_eq!(to.metrics.counter("replans"), Some(1));
        assert_eq!(to.metrics.counter("missing"), None);
    }
}
