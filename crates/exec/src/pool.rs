//! A persistent worker pool for data-parallel episode execution.
//!
//! The paper's multi-threaded SkinnerC splits each time slice's tuple
//! batches across threads. [`WorkerPool`] is the engine-agnostic half of
//! that design: N long-lived threads fed per-episode tasks over channels,
//! with a scatter/gather call per episode. [`partition_tuples`] cuts an
//! input-tuple range into near-equal contiguous chunks, and
//! [`merge_worker_metrics`] folds the per-worker [`ExecMetrics`] back into
//! the single block an [`crate::ExecOutcome`] carries.
//!
//! The pool is deliberately dumb: it knows nothing about joins, budgets or
//! learning. Strategies (e.g. `parallel_skinner` in `skinner_core`) own the
//! episode loop and ship self-contained tasks — everything a worker touches
//! travels inside the task, typically behind `Arc`s.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::outcome::ExecMetrics;

/// A half-open range `[start, end)` of tuple indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleRange {
    pub start: u64,
    pub end: u64,
}

impl TupleRange {
    pub fn new(start: u64, end: u64) -> Self {
        debug_assert!(start <= end, "inverted range {start}..{end}");
        TupleRange { start, end }
    }

    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `[start, end)` into at most `parts` contiguous non-empty ranges of
/// near-equal size (sizes differ by at most one tuple). Deterministic, and
/// empty for an empty input range.
pub fn partition_tuples(start: u64, end: u64, parts: usize) -> Vec<TupleRange> {
    if start >= end || parts == 0 {
        return Vec::new();
    }
    let total = end - start;
    let parts = (parts as u64).min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut lo = start;
    for i in 0..parts {
        let size = base + u64::from(i < extra);
        out.push(TupleRange::new(lo, lo + size));
        lo += size;
    }
    debug_assert_eq!(lo, end);
    out
}

/// Named counters that are *shared snapshots*, not per-worker
/// contributions: every worker's block replicates the same value (a
/// cache-probe fact, a configuration constant, a convergence index), so
/// the merge takes the maximum. Summing them — the treatment every other
/// counter gets — would multiply the shared fact by the worker count.
const SNAPSHOT_COUNTERS: &[&str] = &[
    "cache_hit",
    "warm_start_visits",
    "warm_start_generalized",
    "last_order_switch",
    "order_switches",
    "threads",
    "uct_shards",
];

/// Merge per-worker metric blocks into the single block a sequential run
/// over the same work would report: additive counts (tuples, slices,
/// pages) sum; sizes describing shared structures (the UCT tree, the
/// result set) take the maximum; per-order slice counts and per-shard
/// stats merge by key; named counters sum per name except the snapshot
/// counters listed in `SNAPSHOT_COUNTERS`, which are replicated across
/// workers and merge by maximum so each shared fact is counted exactly
/// once.
pub fn merge_worker_metrics(parts: impl IntoIterator<Item = ExecMetrics>) -> ExecMetrics {
    let mut merged = ExecMetrics::default();
    for m in parts {
        merged.intermediate_tuples += m.intermediate_tuples;
        merged.result_tuples += m.result_tuples;
        merged.slices += m.slices;
        merged.pages_read += m.pages_read;
        merged.pages_skipped += m.pages_skipped;
        merged.uct_nodes = merged.uct_nodes.max(m.uct_nodes);
        merged.tracker_nodes = merged.tracker_nodes.max(m.tracker_nodes);
        merged.result_set_bytes = merged.result_set_bytes.max(m.result_set_bytes);
        merged.total_aux_bytes = merged.total_aux_bytes.max(m.total_aux_bytes);
        // Growth samples describe one shared tree; keep the densest curve.
        if m.tree_growth.len() > merged.tree_growth.len() {
            merged.tree_growth = m.tree_growth;
        }
        for (order, n) in m.order_slice_counts {
            match merged
                .order_slice_counts
                .iter_mut()
                .find(|(o, _)| *o == order)
            {
                Some(slot) => slot.1 += n,
                None => merged.order_slice_counts.push((order, n)),
            }
        }
        for (shard, visits, cas_retries) in m.shard_stats {
            match merged.shard_stats.iter_mut().find(|(s, _, _)| *s == shard) {
                Some(slot) => {
                    slot.1 += visits;
                    slot.2 += cas_retries;
                }
                None => merged.shard_stats.push((shard, visits, cas_retries)),
            }
        }
        for (name, value) in m.counters {
            let prior = merged.counter(name).unwrap_or(0);
            let next = if SNAPSHOT_COUNTERS.contains(&name) {
                prior.max(value)
            } else {
                prior + value
            };
            merged = merged.with_counter(name, next);
        }
        if merged.order.is_empty() {
            merged.order = m.order;
        }
        if merged.winner.is_none() {
            merged.winner = m.winner;
        }
    }
    // Restore the most-used-first invariant after per-order summing.
    merged
        .order_slice_counts
        .sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    merged
}

/// N persistent worker threads processing tasks of type `T` into results of
/// type `R`.
///
/// Tasks are scattered round-robin over per-worker channels;
/// [`WorkerPool::scatter_gather`] blocks until every task of the call has
/// reported back. Dropping the pool closes the task channels and joins all
/// workers.
pub struct WorkerPool<T, R> {
    task_txs: Vec<mpsc::Sender<T>>,
    result_rx: mpsc::Receiver<(usize, Result<R, ()>)>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawn `threads` workers (at least one), each running
    /// `worker(worker_id, task)` per received task.
    pub fn new<F>(threads: usize, worker: F) -> Self
    where
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let worker = Arc::new(worker);
        let (result_tx, result_rx) = mpsc::channel();
        let mut task_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for id in 0..threads {
            let (task_tx, task_rx) = mpsc::channel::<T>();
            task_txs.push(task_tx);
            let worker = worker.clone();
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                // Exits when the pool drops its sender.
                while let Ok(task) = task_rx.recv() {
                    // A panicking task (a user UDF, say) must still produce
                    // a result message: with 2+ workers the other senders
                    // stay alive, so a silently dropped result would leave
                    // `scatter_gather` blocked forever. The coordinator
                    // re-raises the panic instead.
                    let r =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(id, task)))
                            .map_err(drop);
                    if result_tx.send((id, r)).is_err() {
                        return; // pool gone
                    }
                }
            }));
        }
        WorkerPool {
            task_txs,
            result_rx,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.task_txs.len()
    }

    /// Dispatch `tasks` round-robin across the workers and collect exactly
    /// one result per task (in completion order, tagged with the worker id
    /// that produced it). Panics if any task panicked on its worker.
    pub fn scatter_gather(&self, tasks: Vec<T>) -> Vec<(usize, R)> {
        let n = tasks.len();
        for (i, task) in tasks.into_iter().enumerate() {
            self.task_txs[i % self.task_txs.len()]
                .send(task)
                .expect("worker thread exited while the pool is alive");
        }
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let (id, r) = self
                .result_rx
                .recv()
                .expect("worker thread exited while the pool is alive");
            match r {
                Ok(r) => results.push((id, r)),
                Err(()) => panic!("worker {id} panicked mid-episode"),
            }
        }
        results
    }
}

impl<T, R> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        self.task_txs.clear(); // close the channels → workers exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---- completion-hook pool ----------------------------------------------

struct CompletionQueue<T> {
    state: std::sync::Mutex<CompletionQueueState<T>>,
    ready: std::sync::Condvar,
}

struct CompletionQueueState<T> {
    tasks: std::collections::VecDeque<T>,
    closed: bool,
}

/// The asynchronous sibling of [`WorkerPool`]: N persistent threads pull
/// tasks from one shared queue, and each finished task's result is handed
/// to a *completion hook* on the worker thread instead of being gathered
/// by the submitter.
///
/// Where [`WorkerPool::scatter_gather`] is a blocking barrier (submit a
/// batch, wait for all of it), [`CompletionPool::submit`] never blocks:
/// an event loop can hand work over and keep multiplexing sockets while
/// the hook routes each result back (e.g. into a per-shard completion
/// queue followed by a poller wake-up). The shared queue also means no
/// head-of-line blocking behind a slow task on a round-robin channel —
/// any idle worker picks up the next task.
///
/// The hook runs on the worker thread; keep it cheap (push + notify). A
/// panicking task is swallowed and produces *no* completion — callers
/// that need exactly-one-completion semantics must catch panics inside
/// `worker` and return an error-shaped `R`. Dropping the pool closes the
/// queue, lets workers drain what was already submitted, and joins them.
pub struct CompletionPool<T> {
    queue: Arc<CompletionQueue<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> CompletionPool<T> {
    /// Spawn `threads` workers (at least one). Each task runs as
    /// `complete(id, worker(id, task))` on whichever worker dequeues it.
    pub fn new<R, W, H>(threads: usize, worker: W, complete: H) -> Self
    where
        R: Send + 'static,
        W: Fn(usize, T) -> R + Send + Sync + 'static,
        H: Fn(usize, R) + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let queue = Arc::new(CompletionQueue {
            state: std::sync::Mutex::new(CompletionQueueState {
                tasks: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
        });
        let worker = Arc::new(worker);
        let complete = Arc::new(complete);
        let mut handles = Vec::with_capacity(threads);
        for id in 0..threads {
            let queue = queue.clone();
            let worker = worker.clone();
            let complete = complete.clone();
            handles.push(std::thread::spawn(move || loop {
                let task = {
                    let mut state = queue.state.lock().unwrap();
                    loop {
                        if let Some(task) = state.tasks.pop_front() {
                            break task;
                        }
                        if state.closed {
                            return;
                        }
                        state = queue.ready.wait(state).unwrap();
                    }
                };
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(id, task)));
                if let Ok(r) = r {
                    complete(id, r);
                }
            }));
        }
        CompletionPool { queue, handles }
    }

    /// Enqueue a task without blocking; some worker will run it and feed
    /// the result to the completion hook. Tasks submitted after the pool
    /// started dropping are silently discarded (shutdown race).
    pub fn submit(&self, task: T) {
        let mut state = self.queue.state.lock().unwrap();
        if state.closed {
            return;
        }
        state.tasks.push_back(task);
        drop(state);
        self.queue.ready.notify_one();
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Tasks waiting in the queue (not yet claimed by a worker).
    pub fn pending(&self) -> usize {
        self.queue.state.lock().unwrap().tasks.len()
    }
}

impl<T> Drop for CompletionPool<T> {
    fn drop(&mut self) {
        self.queue.state.lock().unwrap().closed = true;
        self.queue.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_range_without_overlap() {
        for (lo, hi, parts) in [(0u64, 100, 4), (7, 12, 3), (0, 3, 8), (5, 6, 2), (0, 97, 5)] {
            let ranges = partition_tuples(lo, hi, parts);
            assert!(ranges.len() <= parts);
            assert!(!ranges.iter().any(|r| r.is_empty()));
            assert_eq!(ranges.first().unwrap().start, lo);
            assert_eq!(ranges.last().unwrap().end, hi);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap or overlap");
            }
            let min = ranges.iter().map(TupleRange::len).min().unwrap();
            let max = ranges.iter().map(TupleRange::len).max().unwrap();
            assert!(max - min <= 1, "imbalanced: {ranges:?}");
        }
    }

    #[test]
    fn empty_and_degenerate_partitions() {
        assert!(partition_tuples(5, 5, 4).is_empty());
        assert!(partition_tuples(9, 3, 4).is_empty());
        assert!(partition_tuples(0, 10, 0).is_empty());
    }

    #[test]
    fn pool_processes_all_tasks() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, |_, x| x * 2);
        let results = pool.scatter_gather((0..100).collect());
        assert_eq!(results.len(), 100);
        let sum: u64 = results.iter().map(|&(_, r)| r).sum();
        assert_eq!(sum, (0..100u64).map(|x| x * 2).sum());
        // The pool is reusable across episodes.
        let again = pool.scatter_gather(vec![21]);
        assert_eq!(again[0].1, 42);
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, |_, x| {
            assert!(x != 3, "poison task");
            x
        });
        // One poisoned task among many: gather must raise, not hang.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scatter_gather((0..8).collect())
        }));
        assert!(r.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        let pool: WorkerPool<(), usize> = WorkerPool::new(0, |id, ()| id);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.scatter_gather(vec![(), ()]), vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn completion_pool_delivers_every_result_through_the_hook() {
        use std::sync::Mutex;
        let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let done2 = done.clone();
        let pool: CompletionPool<u64> = CompletionPool::new(
            4,
            |_, x: u64| x * 2,
            move |_, r| done2.lock().unwrap().push(r),
        );
        for x in 0..100u64 {
            pool.submit(x);
        }
        // submit() never blocks; completions drain asynchronously and the
        // drop below joins the workers, so everything is delivered.
        drop(pool);
        let mut got = done.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn completion_pool_survives_a_panicking_task() {
        use std::sync::Mutex;
        let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let done2 = done.clone();
        let pool: CompletionPool<u64> = CompletionPool::new(
            2,
            |_, x: u64| {
                assert!(x != 3, "poison task");
                x
            },
            move |_, r| done2.lock().unwrap().push(r),
        );
        for x in 0..8u64 {
            pool.submit(x);
        }
        drop(pool); // joins — a panicked worker iteration must not wedge the queue
        let mut got = done.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn completion_pool_clamps_to_one_thread() {
        let pool: CompletionPool<()> = CompletionPool::new(0, |_, ()| (), |_, ()| ());
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn metrics_merge_sums_and_maxes() {
        let a = ExecMetrics {
            result_tuples: 3,
            slices: 2,
            result_set_bytes: 100,
            ..ExecMetrics::default()
        }
        .with_counter("probes", 5);
        let b = ExecMetrics {
            result_tuples: 4,
            slices: 1,
            result_set_bytes: 40,
            ..ExecMetrics::default()
        }
        .with_counter("probes", 7)
        .with_counter("skips", 1);
        let m = merge_worker_metrics([a, b]);
        assert_eq!(m.result_tuples, 7);
        assert_eq!(m.slices, 3);
        assert_eq!(m.result_set_bytes, 100);
        assert_eq!(m.counter("probes"), Some(12));
        assert_eq!(m.counter("skips"), Some(1));
    }

    /// Shared-snapshot counters (cache probe facts, convergence indexes)
    /// appear identically in every worker block and must merge to the
    /// shared value — summing them once per worker was the drift this
    /// guards against.
    #[test]
    fn metrics_merge_counts_shared_snapshots_once() {
        let worker = |slices: u64| {
            ExecMetrics {
                slices,
                ..ExecMetrics::default()
            }
            .with_counter("cache_hit", 1)
            .with_counter("warm_start_visits", 250)
            .with_counter("last_order_switch", 7)
            .with_counter("chunks", 3)
        };
        let m = merge_worker_metrics([worker(5), worker(6), worker(7)]);
        assert_eq!(m.slices, 18);
        assert_eq!(m.counter("cache_hit"), Some(1), "not 3");
        assert_eq!(m.counter("warm_start_visits"), Some(250), "not 750");
        assert_eq!(m.counter("last_order_switch"), Some(7), "not 21");
        assert_eq!(m.counter("chunks"), Some(9), "additive counters still sum");
    }

    #[test]
    fn metrics_merge_keeps_structured_fields() {
        let a = ExecMetrics {
            order_slice_counts: vec![(vec![0, 1], 5), (vec![1, 0], 2)],
            shard_stats: vec![(0, 10, 1), (1, 4, 0)],
            tree_growth: vec![(1, 2), (2, 5)],
            winner: Some("learned"),
            ..ExecMetrics::default()
        };
        let b = ExecMetrics {
            order_slice_counts: vec![(vec![1, 0], 9)],
            shard_stats: vec![(1, 6, 2)],
            tree_growth: vec![(1, 3)],
            ..ExecMetrics::default()
        };
        let m = merge_worker_metrics([a, b]);
        // Per-order sums, most-used first.
        assert_eq!(
            m.order_slice_counts,
            vec![(vec![1, 0], 11), (vec![0, 1], 5)]
        );
        // Per-shard sums.
        let mut shards = m.shard_stats.clone();
        shards.sort_unstable();
        assert_eq!(shards, vec![(0, 10, 1), (1, 10, 2)]);
        assert_eq!(m.tree_growth, vec![(1, 2), (2, 5)], "densest curve kept");
        assert_eq!(m.winner, Some("learned"));
    }
}
