//! Post-processing: projection, aggregation, grouping, ordering, limit.
//!
//! The paper's post-processor (Section 3) consumes join-result tuples —
//! index vectors into the filtered base tables — and produces the final
//! materialized result. Shared by every evaluation strategy, so result
//! comparison across strategies exercises identical code.
//!
//! Two entry points produce identical results:
//!
//! * [`postprocess`] — the single-threaded pipeline every sequential
//!   strategy uses;
//! * [`postprocess_parallel`] — the same pipeline with the scan split
//!   across a [`crate::WorkerPool`]: each worker does **partial
//!   aggregation** (its own hash of group accumulators) or **projection +
//!   local sort** over a contiguous tuple chunk, and the coordinator
//!   finishes with a hash-merge (GROUP BY — accumulators merge pairwise)
//!   or a k-way merge (ORDER BY — ties resolve to the earlier chunk, which
//!   reproduces the sequential stable sort exactly). Parallel strategies
//!   (`parallel_skinner`) call this so grouping/ordering no longer
//!   serializes on the coordinator thread after the join finishes.
//!
//! Floating-point aggregates (`SUM` over floats, `AVG`) fall back to the
//! sequential scan even under [`postprocess_parallel`]: float addition is
//! not associative, so merging per-worker partial sums could differ from
//! the sequential result in the last ulp — and "identical results at every
//! thread count" is a contract here, not an aspiration.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use skinner_query::expr::EvalCtx;
use skinner_query::{AggFunc, JoinQuery, SelectItem};
use skinner_storage::{DataType, Interner, Table, Value};

use crate::budget::{Timeout, WorkBudget};
use crate::pool::{partition_tuples, WorkerPool};
use crate::result::QueryResult;
use crate::TupleIxs;

/// Below this many join tuples the parallel path is pure overhead and
/// [`postprocess_parallel`] delegates to the sequential pipeline.
const PARALLEL_MIN_TUPLES: usize = 256;

/// Accumulated groups: group key → (representative tuple — the first seen,
/// used to evaluate non-aggregate select items — and one accumulator per
/// select position).
type GroupMap = HashMap<Vec<u64>, (TupleIxs, Vec<AggAcc>)>;

/// Materialize the final result from join tuples (single-threaded).
pub fn postprocess(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: &[TupleIxs],
    budget: &WorkBudget,
) -> Result<QueryResult, Timeout> {
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let interner = tables
        .first()
        .map(|t| t.interner().clone())
        .unwrap_or_default();

    let mut rows: Vec<Vec<Value>> = if query.has_aggregates() || !query.group_by.is_empty() {
        let groups = partial_groups(tables, query, tuples, budget, &interner)?;
        finish_groups(tables, query, groups, budget, &interner)?
    } else {
        project_rows(tables, query, tuples, budget, &interner)?
    };

    finalize(query, &mut rows, budget, false);
    Ok(QueryResult { columns, rows })
}

/// Materialize the final result from join tuples, splitting the
/// per-tuple scan across `threads` workers. Produces exactly the same
/// rows as [`postprocess`] — thread count is a performance knob, never a
/// correctness knob (see the module docs for how the merges preserve
/// sequential semantics, and why float aggregation opts out).
pub fn postprocess_parallel(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: Vec<TupleIxs>,
    budget: &WorkBudget,
    threads: usize,
) -> Result<QueryResult, Timeout> {
    let aggregating = query.has_aggregates() || !query.group_by.is_empty();
    let fp_sensitive = aggregating
        && make_accs(query)
            .iter()
            .any(|acc| matches!(acc, AggAcc::SumF(_) | AggAcc::Avg { .. }));
    if threads <= 1 || tuples.len() < PARALLEL_MIN_TUPLES || fp_sensitive {
        return postprocess(tables, query, &tuples, budget);
    }

    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let interner = tables
        .first()
        .map(|t| t.interner().clone())
        .unwrap_or_default();

    let ranges = partition_tuples(0, tuples.len() as u64, threads);
    let nparts = ranges.len().max(1) as u64;
    // Reserve the workers' budget up front (`try_consume` never
    // overspends): one unit per tuple of each chunk — exactly what the
    // scan charges today — plus an equal share of the budget's slack as
    // headroom, so a query that fits the budget sequentially always fits
    // in parallel too. The reservation (≤ `remaining` by construction) is
    // released after the gather and the actual consumption recorded
    // instead — the same discipline as the episode loop.
    let total = tuples.len() as u64;
    let remaining = budget.remaining();
    if total > remaining {
        return Err(Timeout); // the sequential scan would exhaust it too
    }
    let slack = (remaining - total) / nparts;
    let caps: Vec<u64> = ranges.iter().map(|r| r.len() + slack).collect();
    let reserve: u64 = caps.iter().sum();
    if !budget.try_consume(reserve) {
        return Err(Timeout);
    }

    // Workers pre-sort their chunk only when the coordinator can finish
    // with a pure merge: DISTINCT must see rows in input order first (it
    // keeps first occurrences), so with DISTINCT the sort stays sequential.
    let local_sort = !query.order_by.is_empty() && !query.distinct && !aggregating;

    struct PostTask {
        tuples: Arc<Vec<TupleIxs>>,
        tables: Arc<Vec<Arc<Table>>>,
        query: Arc<JoinQuery>,
        interner: Arc<Interner>,
        range: crate::pool::TupleRange,
        chunk: usize,
        cap: u64,
        aggregating: bool,
        local_sort: bool,
    }

    enum PostBody {
        Groups(GroupMap),
        Rows(Vec<Vec<Value>>),
    }

    struct PostReport {
        chunk: usize,
        body: PostBody,
        used: u64,
        capped: bool,
    }

    fn run_post_chunk(task: PostTask) -> PostReport {
        let budget = WorkBudget::with_limit(task.cap);
        let slice = &task.tuples[task.range.start as usize..task.range.end as usize];
        let mut capped = false;
        let body = if task.aggregating {
            match partial_groups(&task.tables, &task.query, slice, &budget, &task.interner) {
                Ok(groups) => PostBody::Groups(groups),
                Err(_) => {
                    capped = true;
                    PostBody::Groups(HashMap::new())
                }
            }
        } else {
            match project_rows(&task.tables, &task.query, slice, &budget, &task.interner) {
                Ok(mut rows) => {
                    if task.local_sort {
                        rows.sort_by(|a, b| order_cmp(&task.query, a, b));
                    }
                    PostBody::Rows(rows)
                }
                Err(_) => {
                    capped = true;
                    PostBody::Rows(Vec::new())
                }
            }
        };
        PostReport {
            chunk: task.chunk,
            body,
            used: budget.used(),
            capped,
        }
    }

    let shared_tuples = Arc::new(tuples);
    let shared_tables: Arc<Vec<Arc<Table>>> = Arc::new(tables.to_vec());
    let shared_query = Arc::new(query.clone());
    let pool: WorkerPool<PostTask, PostReport> =
        WorkerPool::new(ranges.len(), |_, task| run_post_chunk(task));
    let tasks: Vec<PostTask> = ranges
        .iter()
        .enumerate()
        .map(|(chunk, &range)| PostTask {
            tuples: shared_tuples.clone(),
            tables: shared_tables.clone(),
            query: shared_query.clone(),
            interner: interner.clone(),
            range,
            chunk,
            cap: caps[chunk],
            aggregating,
            local_sort,
        })
        .collect();
    let mut reports: Vec<PostReport> = pool
        .scatter_gather(tasks)
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    // Completion order is arbitrary; merges below must see chunk order
    // (group representatives and concatenation both depend on it).
    reports.sort_by_key(|r| r.chunk);

    budget.refund(reserve);
    let mut timed_out = false;
    for r in &reports {
        let _ = budget.charge(r.used);
        timed_out |= r.capped;
    }
    if timed_out {
        return Err(Timeout);
    }

    let mut rows: Vec<Vec<Value>> = if aggregating {
        // Hash-merge in chunk order: first-seen representatives win, so the
        // representative of each group is the globally earliest tuple —
        // exactly what the sequential scan picks.
        let mut merged = GroupMap::new();
        for r in reports {
            let PostBody::Groups(groups) = r.body else {
                unreachable!("aggregating workers report groups")
            };
            for (key, (repr, accs)) in groups {
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((repr, accs));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (mine, theirs) in e.get_mut().1.iter_mut().zip(accs) {
                            mine.merge(theirs);
                        }
                    }
                }
            }
        }
        finish_groups(tables, query, merged, budget, &interner)?
    } else if local_sort {
        let chunks: Vec<Vec<Vec<Value>>> = reports
            .into_iter()
            .map(|r| {
                let PostBody::Rows(rows) = r.body else {
                    unreachable!("projecting workers report rows")
                };
                rows
            })
            .collect();
        kway_merge_sorted(query, chunks)
    } else {
        let mut rows = Vec::new();
        for r in reports {
            let PostBody::Rows(mut chunk_rows) = r.body else {
                unreachable!("projecting workers report rows")
            };
            rows.append(&mut chunk_rows);
        }
        rows
    };

    finalize(query, &mut rows, budget, local_sort);
    Ok(QueryResult { columns, rows })
}

/// Project one output row per join tuple (the non-aggregate pipeline).
fn project_rows(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: &[TupleIxs],
    budget: &WorkBudget,
    interner: &Arc<Interner>,
) -> Result<Vec<Vec<Value>>, Timeout> {
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        budget.charge(1)?;
        let ctx = EvalCtx::new(tables, t, interner);
        let row: Vec<Value> = query
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => expr.eval(&ctx),
                SelectItem::Agg { .. } => unreachable!(),
            })
            .collect();
        out.push(row);
    }
    Ok(out)
}

/// Scan `tuples` into per-group accumulators: the partial-aggregation
/// kernel both the sequential pipeline (over all tuples) and each parallel
/// worker (over its chunk) run. Group representatives are the first tuple
/// seen per group.
fn partial_groups(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: &[TupleIxs],
    budget: &WorkBudget,
    interner: &Arc<Interner>,
) -> Result<GroupMap, Timeout> {
    let mut groups = GroupMap::new();
    for t in tuples {
        budget.charge(1)?;
        let ctx = EvalCtx::new(tables, t, interner);
        let key: Vec<u64> = query.group_by.iter().map(|g| g.eval_key(&ctx)).collect();
        let entry = groups
            .entry(key)
            .or_insert_with(|| (t.clone(), make_accs(query)));
        for (item, acc) in query.select.iter().zip(entry.1.iter_mut()) {
            if let SelectItem::Agg { arg, .. } = item {
                let v = arg.as_ref().map(|a| a.eval(&ctx));
                acc.update(v);
            }
        }
    }
    Ok(groups)
}

/// Turn accumulated groups into output rows (plus the scalar-aggregate
/// empty-input row).
fn finish_groups(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    groups: GroupMap,
    budget: &WorkBudget,
    interner: &Arc<Interner>,
) -> Result<Vec<Vec<Value>>, Timeout> {
    // Scalar aggregate over empty input still yields one row.
    if query.group_by.is_empty() && groups.is_empty() {
        let accs = make_accs(query);
        let row = accs.into_iter().map(AggAcc::finish).collect();
        return Ok(vec![row]);
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (_key, (repr, accs)) in groups {
        budget.charge(1)?;
        let ctx = EvalCtx::new(tables, &repr, interner);
        let mut accs = accs.into_iter();
        let row: Vec<Value> = query
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => {
                    let _ = accs.next();
                    expr.eval(&ctx)
                }
                SelectItem::Agg { .. } => accs.next().unwrap().finish(),
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

/// The shared tail: DISTINCT (keeps first occurrences, in row order), then
/// ORDER BY (stable; skipped when the rows arrive already merged-sorted),
/// then LIMIT.
fn finalize(query: &JoinQuery, rows: &mut Vec<Vec<Value>>, budget: &WorkBudget, sorted: bool) {
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| {
            budget.charge(1).ok();
            seen.insert(row_key(r))
        });
    }

    if !query.order_by.is_empty() && !sorted {
        rows.sort_by(|a, b| order_cmp(query, a, b));
    }

    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
}

/// Compare two output rows under the query's ORDER BY keys.
fn order_cmp(query: &JoinQuery, a: &[Value], b: &[Value]) -> Ordering {
    for k in &query.order_by {
        let ord = a[k.output_col]
            .compare(&b[k.output_col])
            .unwrap_or(Ordering::Equal);
        let ord = if k.asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Merge per-chunk sorted runs into one sorted vector in
/// `O(rows · log chunks)`. Ties on the ORDER BY keys go to the earlier
/// chunk, which makes the merge byte-identical to a stable sort of the
/// chunk concatenation — i.e. to what the sequential pipeline returns.
fn kway_merge_sorted(query: &JoinQuery, chunks: Vec<Vec<Vec<Value>>>) -> Vec<Vec<Value>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// One chunk's current head row, ordered by (ORDER BY keys, chunk).
    struct Head<'q> {
        query: &'q JoinQuery,
        chunk: usize,
        row: Vec<Value>,
    }
    impl PartialEq for Head<'_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Head<'_> {}
    impl PartialOrd for Head<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head<'_> {
        fn cmp(&self, other: &Self) -> Ordering {
            // The chunk-index tiebreaker is the stability rule: equal keys
            // emit the earlier chunk's row first.
            order_cmp(self.query, &self.row, &other.row).then(self.chunk.cmp(&other.chunk))
        }
    }

    let total = chunks.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Vec<Value>>> =
        chunks.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<Head>> = iters
        .iter_mut()
        .enumerate()
        .filter_map(|(chunk, it)| it.next().map(|row| Reverse(Head { query, chunk, row })))
        .collect();
    let mut out: Vec<Vec<Value>> = Vec::with_capacity(total);
    while let Some(Reverse(head)) = heap.pop() {
        if let Some(row) = iters[head.chunk].next() {
            heap.push(Reverse(Head {
                query,
                chunk: head.chunk,
                row,
            }));
        }
        out.push(head.row);
    }
    out
}

fn make_accs(query: &JoinQuery) -> Vec<AggAcc> {
    query
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Expr { .. } => AggAcc::Passthrough,
            SelectItem::Agg { func, arg, .. } => {
                let float = arg
                    .as_ref()
                    .map(|a| a.dtype() == DataType::Float)
                    .unwrap_or(false);
                match func {
                    AggFunc::Count => AggAcc::Count(0),
                    AggFunc::Sum => {
                        if float {
                            AggAcc::SumF(0.0)
                        } else {
                            AggAcc::SumI(0)
                        }
                    }
                    AggFunc::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
                    AggFunc::Min => AggAcc::Min(None),
                    AggFunc::Max => AggAcc::Max(None),
                }
            }
        })
        .collect()
}

/// One aggregate accumulator.
///
/// Divergence from SQL: there are no NULLs in this system, so empty
/// `SUM`/`MIN`/`MAX`/`AVG` groups finish to 0 (respectively 0.0) instead of
/// NULL. Only scalar aggregates over empty inputs can observe this.
#[derive(Debug, Clone)]
enum AggAcc {
    Passthrough,
    Count(u64),
    SumI(i64),
    SumF(f64),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn update(&mut self, v: Option<Value>) {
        match self {
            AggAcc::Passthrough => {}
            AggAcc::Count(c) => *c += 1,
            AggAcc::SumI(s) => {
                *s = s.wrapping_add(v.and_then(|x| x.as_i64()).unwrap_or(0));
            }
            AggAcc::SumF(s) => {
                *s += v.and_then(|x| x.as_f64()).unwrap_or(0.0);
            }
            AggAcc::Avg { sum, n } => {
                *sum += v.and_then(|x| x.as_f64()).unwrap_or(0.0);
                *n += 1;
            }
            AggAcc::Min(m) => {
                if let Some(v) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Less),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
            AggAcc::Max(m) => {
                if let Some(v) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Greater),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
        }
    }

    /// Fold another partial accumulator of the same kind into this one
    /// (the hash-merge step of parallel aggregation). Kinds always match:
    /// both sides were built by `make_accs` for the same select position.
    fn merge(&mut self, other: AggAcc) {
        match (self, other) {
            (AggAcc::Passthrough, AggAcc::Passthrough) => {}
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::SumI(a), AggAcc::SumI(b)) => *a = a.wrapping_add(b),
            // Float accumulators never reach the merge: float addition is
            // not associative, so `postprocess_parallel`'s fp_sensitive
            // gate routes them through the sequential scan. Reaching this
            // arm means that gate broke — fail loudly rather than diverge
            // from the sequential result in the last ulp.
            (AggAcc::SumF(_), AggAcc::SumF(_)) | (AggAcc::Avg { .. }, AggAcc::Avg { .. }) => {
                unreachable!("float accumulators must take the sequential path")
            }
            (AggAcc::Min(m), AggAcc::Min(other)) => {
                if let Some(v) = other {
                    let replace = match &m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Less),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
            (AggAcc::Max(m), AggAcc::Max(other)) => {
                if let Some(v) = other {
                    let replace = match &m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Greater),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
            _ => unreachable!("merging accumulators of different kinds"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggAcc::Passthrough => Value::Int(0),
            AggAcc::Count(c) => Value::Int(c as i64),
            AggAcc::SumI(s) => Value::Int(s),
            AggAcc::SumF(s) => Value::Float(s),
            AggAcc::Avg { sum, n } => Value::Float(if n == 0 { 0.0 } else { sum / n as f64 }),
            AggAcc::Min(m) => m.unwrap_or(Value::Int(0)),
            AggAcc::Max(m) => m.unwrap_or(Value::Int(0)),
        }
    }
}

fn row_key(row: &[Value]) -> String {
    let mut s = String::new();
    for v in row {
        match v {
            Value::Float(x) => s.push_str(&format!("{x:.9}|")),
            other => {
                s.push_str(&other.to_string());
                s.push('|');
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("g", Int), ("x", Int), ("f", Float)]);
        for i in 0..10 {
            a.push_row(&[
                Value::Int(i % 3),
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
            ]);
        }
        cat.register(a.finish());
        cat
    }

    /// A catalog big enough that `postprocess_parallel` actually splits.
    fn big_setup(n: i64) -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("g", Int), ("x", Int), ("f", Float)]);
        for i in 0..n {
            a.push_row(&[
                Value::Int(i % 7),
                Value::Int((i * 37) % 1000),
                Value::Float(i as f64 * 0.25),
            ]);
        }
        cat.register(a.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    fn all_tuples(n: u32) -> Vec<TupleIxs> {
        (0..n).map(|i| vec![i].into_boxed_slice()).collect()
    }

    #[test]
    fn plain_projection() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 10);
        assert_eq!(r.columns, vec!["a.x"]);
    }

    #[test]
    fn group_by_with_all_aggregates() {
        let cat = setup();
        let q = bind(
            "SELECT a.g, COUNT(*) c, SUM(a.x) s, MIN(a.x) mn, MAX(a.x) mx, AVG(a.f) av \
             FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
        // Group 0: x ∈ {0,3,6,9} → count 4, sum 18, min 0, max 9, avg f 2.25.
        let row0 = &r.rows[0];
        assert_eq!(row0[0], Value::Int(0));
        assert_eq!(row0[1], Value::Int(4));
        assert_eq!(row0[2], Value::Int(18));
        assert_eq!(row0[3], Value::Int(0));
        assert_eq!(row0[4], Value::Int(9));
        assert!((row0[5].as_f64().unwrap() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let cat = setup();
        let q = bind("SELECT COUNT(*) c, SUM(a.x) s FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &[], &budget).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Int(0));
    }

    #[test]
    fn order_desc_and_limit() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a ORDER BY a.x DESC LIMIT 3", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.rows[0][0], Value::Int(9));
        assert_eq!(r.rows[2][0], Value::Int(7));
    }

    #[test]
    fn distinct_dedupes() {
        let cat = setup();
        let q = bind("SELECT DISTINCT a.g FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn budget_applies_to_postprocessing() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a", &cat);
        let budget = WorkBudget::with_limit(3);
        assert!(postprocess(&q.tables, &q, &all_tuples(10), &budget).is_err());
    }

    #[test]
    fn parallel_matches_sequential_on_every_query_shape() {
        let cat = big_setup(1000);
        for sql in [
            "SELECT a.x FROM a",
            "SELECT a.x FROM a ORDER BY a.x",
            // Heavy cross-chunk ties (7 distinct g over 1000 rows): pins
            // the merge's stability rule — equal keys emit in chunk order.
            "SELECT a.g, a.x FROM a ORDER BY a.g",
            "SELECT a.x, a.g FROM a ORDER BY a.g DESC, a.x",
            "SELECT a.x FROM a ORDER BY a.x LIMIT 17",
            "SELECT DISTINCT a.g FROM a",
            "SELECT DISTINCT a.x FROM a ORDER BY a.x",
            "SELECT a.g, COUNT(*) c, SUM(a.x) s, MIN(a.x) mn, MAX(a.x) mx \
             FROM a GROUP BY a.g ORDER BY a.g",
            "SELECT COUNT(*) c FROM a",
        ] {
            let q = bind(sql, &cat);
            let tuples = all_tuples(1000);
            let seq = postprocess(&q.tables, &q, &tuples, &WorkBudget::unlimited()).unwrap();
            for threads in [2, 3, 4, 8] {
                let par = postprocess_parallel(
                    &q.tables,
                    &q,
                    tuples.clone(),
                    &WorkBudget::unlimited(),
                    threads,
                )
                .unwrap();
                assert_eq!(par.columns, seq.columns, "{sql} ({threads} threads)");
                // Exact row order must match where the query pins it
                // (ORDER BY) — and also where it doesn't but the pipeline
                // is deterministic (projection without sort).
                if !q.order_by.is_empty() || (q.group_by.is_empty() && !q.has_aggregates()) {
                    assert_eq!(par.rows, seq.rows, "{sql} ({threads} threads)");
                } else {
                    assert_eq!(
                        par.canonical_rows(),
                        seq.canonical_rows(),
                        "{sql} ({threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_float_aggregates_fall_back_to_sequential_bits() {
        let cat = big_setup(1000);
        // AVG/SUM(float) must be bit-identical at any thread count: the
        // parallel path detects float accumulators and runs sequentially.
        let q = bind(
            "SELECT a.g, AVG(a.f) av, SUM(a.f) s FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let tuples = all_tuples(1000);
        let seq = postprocess(&q.tables, &q, &tuples, &WorkBudget::unlimited()).unwrap();
        for threads in [2, 8] {
            let par = postprocess_parallel(
                &q.tables,
                &q,
                tuples.clone(),
                &WorkBudget::unlimited(),
                threads,
            )
            .unwrap();
            assert_eq!(par.rows, seq.rows, "float rows must match bit-for-bit");
        }
    }

    #[test]
    fn parallel_budget_reservation_times_out() {
        let cat = big_setup(1000);
        let q = bind("SELECT a.x FROM a", &cat);
        let budget = WorkBudget::with_limit(10);
        assert!(postprocess_parallel(&q.tables, &q, all_tuples(1000), &budget, 4).is_err());
        // The scan could never fit, so nothing was reserved or charged.
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn parallel_exact_fit_budget_succeeds_like_sequential() {
        // 1001 tuples at 4 threads → chunks of 251/250/250/250. A flat
        // remaining/nparts cap would floor to 250 and spuriously time out
        // the 251-tuple chunk; per-chunk caps must let a budget that fits
        // the sequential scan exactly fit the parallel one too.
        let cat = big_setup(1001);
        let q = bind("SELECT a.x FROM a", &cat);
        let tuples = all_tuples(1001);
        let seq_budget = WorkBudget::with_limit(1001);
        let seq = postprocess(&q.tables, &q, &tuples, &seq_budget).unwrap();
        for threads in [2, 3, 4, 8] {
            let budget = WorkBudget::with_limit(1001);
            let par = postprocess_parallel(&q.tables, &q, tuples.clone(), &budget, threads)
                .unwrap_or_else(|_| panic!("exact-fit budget timed out at {threads} threads"));
            assert_eq!(par.rows, seq.rows);
            assert_eq!(budget.used(), 1001, "actual work recorded, not caps");
        }
    }

    #[test]
    fn parallel_small_inputs_delegate_to_sequential() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a ORDER BY a.x", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess_parallel(&q.tables, &q, all_tuples(10), &budget, 8).unwrap();
        assert_eq!(r.num_rows(), 10);
        assert_eq!(r.rows[0][0], Value::Int(0));
    }
}
