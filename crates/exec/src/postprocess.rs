//! Post-processing: projection, aggregation, grouping, ordering, limit.
//!
//! The paper's post-processor (Section 3) consumes join-result tuples —
//! index vectors into the filtered base tables — and produces the final
//! materialized result. Shared by every evaluation strategy, so result
//! comparison across strategies exercises identical code.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use skinner_query::expr::EvalCtx;
use skinner_query::{AggFunc, JoinQuery, SelectItem};
use skinner_storage::{DataType, Table, Value};

use crate::budget::{Timeout, WorkBudget};
use crate::result::QueryResult;
use crate::TupleIxs;

/// Materialize the final result from join tuples.
pub fn postprocess(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: &[TupleIxs],
    budget: &WorkBudget,
) -> Result<QueryResult, Timeout> {
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let interner = tables
        .first()
        .map(|t| t.interner().clone())
        .unwrap_or_default();

    let mut rows: Vec<Vec<Value>> = if query.has_aggregates() || !query.group_by.is_empty() {
        aggregate(tables, query, tuples, budget, &interner)?
    } else {
        let mut out = Vec::with_capacity(tuples.len());
        for t in tuples {
            budget.charge(1)?;
            let ctx = EvalCtx::new(tables, t, &interner);
            let row: Vec<Value> = query
                .select
                .iter()
                .map(|item| match item {
                    SelectItem::Expr { expr, .. } => expr.eval(&ctx),
                    SelectItem::Agg { .. } => unreachable!(),
                })
                .collect();
            out.push(row);
        }
        out
    };

    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| {
            budget.charge(1).ok();
            seen.insert(row_key(r))
        });
    }

    if !query.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for k in &query.order_by {
                let ord = a[k.output_col]
                    .compare(&b[k.output_col])
                    .unwrap_or(Ordering::Equal);
                let ord = if k.asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    Ok(QueryResult { columns, rows })
}

fn aggregate(
    tables: &[Arc<Table>],
    query: &JoinQuery,
    tuples: &[TupleIxs],
    budget: &WorkBudget,
    interner: &Arc<skinner_storage::Interner>,
) -> Result<Vec<Vec<Value>>, Timeout> {
    // Group key → (representative tuple, accumulators per select item).
    let mut groups: HashMap<Vec<u64>, (TupleIxs, Vec<AggAcc>)> = HashMap::new();
    let scalar = query.group_by.is_empty();
    for t in tuples {
        budget.charge(1)?;
        let ctx = EvalCtx::new(tables, t, interner);
        let key: Vec<u64> = query.group_by.iter().map(|g| g.eval_key(&ctx)).collect();
        let entry = groups
            .entry(key)
            .or_insert_with(|| (t.clone(), make_accs(query)));
        for (item, acc) in query.select.iter().zip(entry.1.iter_mut()) {
            if let SelectItem::Agg { arg, .. } = item {
                let v = arg.as_ref().map(|a| a.eval(&ctx));
                acc.update(v);
            }
        }
    }
    // Scalar aggregate over empty input still yields one row.
    if scalar && groups.is_empty() {
        let accs = make_accs(query);
        let row = accs.into_iter().map(AggAcc::finish).collect();
        return Ok(vec![row]);
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (_key, (repr, accs)) in groups {
        budget.charge(1)?;
        let ctx = EvalCtx::new(tables, &repr, interner);
        let mut accs = accs.into_iter();
        let row: Vec<Value> = query
            .select
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => {
                    let _ = accs.next();
                    expr.eval(&ctx)
                }
                SelectItem::Agg { .. } => accs.next().unwrap().finish(),
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

fn make_accs(query: &JoinQuery) -> Vec<AggAcc> {
    query
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Expr { .. } => AggAcc::Passthrough,
            SelectItem::Agg { func, arg, .. } => {
                let float = arg
                    .as_ref()
                    .map(|a| a.dtype() == DataType::Float)
                    .unwrap_or(false);
                match func {
                    AggFunc::Count => AggAcc::Count(0),
                    AggFunc::Sum => {
                        if float {
                            AggAcc::SumF(0.0)
                        } else {
                            AggAcc::SumI(0)
                        }
                    }
                    AggFunc::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
                    AggFunc::Min => AggAcc::Min(None),
                    AggFunc::Max => AggAcc::Max(None),
                }
            }
        })
        .collect()
}

/// One aggregate accumulator.
///
/// Divergence from SQL: there are no NULLs in this system, so empty
/// `SUM`/`MIN`/`MAX`/`AVG` groups finish to 0 (respectively 0.0) instead of
/// NULL. Only scalar aggregates over empty inputs can observe this.
#[derive(Debug, Clone)]
enum AggAcc {
    Passthrough,
    Count(u64),
    SumI(i64),
    SumF(f64),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAcc {
    fn update(&mut self, v: Option<Value>) {
        match self {
            AggAcc::Passthrough => {}
            AggAcc::Count(c) => *c += 1,
            AggAcc::SumI(s) => {
                *s = s.wrapping_add(v.and_then(|x| x.as_i64()).unwrap_or(0));
            }
            AggAcc::SumF(s) => {
                *s += v.and_then(|x| x.as_f64()).unwrap_or(0.0);
            }
            AggAcc::Avg { sum, n } => {
                *sum += v.and_then(|x| x.as_f64()).unwrap_or(0.0);
                *n += 1;
            }
            AggAcc::Min(m) => {
                if let Some(v) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Less),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
            AggAcc::Max(m) => {
                if let Some(v) = v {
                    let replace = match m {
                        None => true,
                        Some(cur) => v.compare(cur) == Some(Ordering::Greater),
                    };
                    if replace {
                        *m = Some(v);
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggAcc::Passthrough => Value::Int(0),
            AggAcc::Count(c) => Value::Int(c as i64),
            AggAcc::SumI(s) => Value::Int(s),
            AggAcc::SumF(s) => Value::Float(s),
            AggAcc::Avg { sum, n } => Value::Float(if n == 0 { 0.0 } else { sum / n as f64 }),
            AggAcc::Min(m) => m.unwrap_or(Value::Int(0)),
            AggAcc::Max(m) => m.unwrap_or(Value::Int(0)),
        }
    }
}

fn row_key(row: &[Value]) -> String {
    let mut s = String::new();
    for v in row {
        match v {
            Value::Float(x) => s.push_str(&format!("{x:.9}|")),
            other => {
                s.push_str(&other.to_string());
                s.push('|');
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("g", Int), ("x", Int), ("f", Float)]);
        for i in 0..10 {
            a.push_row(&[
                Value::Int(i % 3),
                Value::Int(i),
                Value::Float(i as f64 * 0.5),
            ]);
        }
        cat.register(a.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    fn all_tuples(n: u32) -> Vec<TupleIxs> {
        (0..n).map(|i| vec![i].into_boxed_slice()).collect()
    }

    #[test]
    fn plain_projection() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 10);
        assert_eq!(r.columns, vec!["a.x"]);
    }

    #[test]
    fn group_by_with_all_aggregates() {
        let cat = setup();
        let q = bind(
            "SELECT a.g, COUNT(*) c, SUM(a.x) s, MIN(a.x) mn, MAX(a.x) mx, AVG(a.f) av \
             FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
        // Group 0: x ∈ {0,3,6,9} → count 4, sum 18, min 0, max 9, avg f 2.25.
        let row0 = &r.rows[0];
        assert_eq!(row0[0], Value::Int(0));
        assert_eq!(row0[1], Value::Int(4));
        assert_eq!(row0[2], Value::Int(18));
        assert_eq!(row0[3], Value::Int(0));
        assert_eq!(row0[4], Value::Int(9));
        assert!((row0[5].as_f64().unwrap() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let cat = setup();
        let q = bind("SELECT COUNT(*) c, SUM(a.x) s FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &[], &budget).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Int(0));
    }

    #[test]
    fn order_desc_and_limit() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a ORDER BY a.x DESC LIMIT 3", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.rows[0][0], Value::Int(9));
        assert_eq!(r.rows[2][0], Value::Int(7));
    }

    #[test]
    fn distinct_dedupes() {
        let cat = setup();
        let q = bind("SELECT DISTINCT a.g FROM a", &cat);
        let budget = WorkBudget::unlimited();
        let r = postprocess(&q.tables, &q, &all_tuples(10), &budget).unwrap();
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn budget_applies_to_postprocessing() {
        let cat = setup();
        let q = bind("SELECT a.x FROM a", &cat);
        let budget = WorkBudget::with_limit(3);
        assert!(postprocess(&q.tables, &q, &all_tuples(10), &budget).is_err());
    }
}
