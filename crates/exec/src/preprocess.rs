//! Pre-processing: apply unary predicates, materialize filtered tables.
//!
//! Every evaluation strategy in the paper starts here (Section 3): unary
//! predicates are applied once, up front, producing filtered base tables so
//! the join phase works on dense row ids. Pre-processing is the only phase
//! SkinnerDB parallelizes (Section 6.1); `threads > 1` splits each table
//! scan across crossbeam scoped threads.
//!
//! Tables decoded from disk segments carry zone maps; the scan plan
//! (see [`crate::zonescan`]) is computed once, on the coordinator, before
//! any thread split — so the filtered output and the work charged are
//! identical at every thread count, zone maps or not.

use std::sync::Arc;

use skinner_query::expr::EvalCtx;
use skinner_query::JoinQuery;
use skinner_storage::{RowId, Table};

use crate::budget::{Timeout, WorkBudget};
use crate::zonescan::{plan_scan, split_ranges, ScanPlan};

/// Output of pre-processing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Filtered tables, parallel to `query.tables`. Tables without unary
    /// predicates are shared, not copied.
    pub tables: Vec<Arc<Table>>,
    /// Original (unfiltered) row counts, for reporting.
    pub base_rows: Vec<usize>,
    /// Pages whose rows were evaluated (zone-mapped tables only).
    pub pages_read: u64,
    /// Pages skipped outright via zone-map bounds.
    pub pages_skipped: u64,
}

impl Preprocessed {
    /// Cardinality of filtered table `t`.
    pub fn cardinality(&self, t: usize) -> RowId {
        self.tables[t].cardinality()
    }
}

/// Apply all unary predicates of `query`. Charges one work unit per
/// (row, predicate) evaluation plus one per surviving row; zone-mapped
/// tables additionally charge one unit per page bound consulted — and in
/// exchange skip the per-row charges of every pruned page.
pub fn preprocess(
    query: &JoinQuery,
    budget: &WorkBudget,
    threads: usize,
) -> Result<Preprocessed, Timeout> {
    let mut tables = Vec::with_capacity(query.tables.len());
    let mut base_rows = Vec::with_capacity(query.tables.len());
    let mut pages_read = 0u64;
    let mut pages_skipped = 0u64;
    for (t, table) in query.tables.iter().enumerate() {
        base_rows.push(table.num_rows());
        if query.unary[t].is_empty() {
            tables.push(table.clone());
            continue;
        }
        // Scan plan on the coordinator: deterministic across thread counts.
        let plan = plan_scan(table, t, &query.unary[t]);
        budget.charge(plan.pages_read + plan.pages_skipped)?;
        pages_read += plan.pages_read;
        pages_skipped += plan.pages_skipped;
        let rows = if threads > 1 {
            filter_parallel(query, t, budget, threads, &plan)?
        } else {
            filter_serial(query, t, budget, &plan.ranges)?
        };
        budget.charge(rows.len() as u64)?;
        let filtered = table.gather(&rows, format!("{}#f", table.name()));
        tables.push(Arc::new(filtered));
    }
    Ok(Preprocessed {
        tables,
        base_rows,
        pages_read,
        pages_skipped,
    })
}

fn filter_serial(
    query: &JoinQuery,
    t: usize,
    budget: &WorkBudget,
    ranges: &[(RowId, RowId)],
) -> Result<Vec<RowId>, Timeout> {
    let table = &query.tables[t];
    let interner = table.interner().clone();
    let preds = &query.unary[t];
    let mut rows_vec = Vec::new();
    let mut probe: Vec<RowId> = vec![0; query.tables.len()];
    for &(lo, hi) in ranges {
        for row in lo..hi {
            probe[t] = row;
            budget.charge(preds.len() as u64)?;
            let ctx = EvalCtx::new(&query.tables, &probe, &interner);
            if preds.iter().all(|p| p.eval_bool(&ctx)) {
                rows_vec.push(row);
            }
        }
    }
    Ok(rows_vec)
}

fn filter_parallel(
    query: &JoinQuery,
    t: usize,
    budget: &WorkBudget,
    threads: usize,
    plan: &ScanPlan,
) -> Result<Vec<RowId>, Timeout> {
    let preds = &query.unary[t];
    let table = &query.tables[t];
    let interner = table.interner().clone();
    let chunks = split_ranges(&plan.ranges, threads);
    let results: Vec<Result<Vec<RowId>, Timeout>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            let interner = &interner;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                let mut probe: Vec<RowId> = vec![0; query.tables.len()];
                for &(lo, hi) in chunk {
                    for row in lo..hi {
                        probe[t] = row;
                        budget.charge(preds.len() as u64)?;
                        let ctx = EvalCtx::new(&query.tables, &probe, interner);
                        if preds.iter().all(|p| p.eval_bool(&ctx)) {
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("preprocessing thread panicked");
    let mut rows = Vec::new();
    for r in results {
        rows.extend(r?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("x", Int), ("y", Int)]);
        for i in 0..100 {
            a.push_row(&[Value::Int(i), Value::Int(i % 7)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("z", Int)]);
        for i in 0..50 {
            b.push_row(&[Value::Int(i)]);
        }
        cat.register(b.finish());
        (cat, UdfRegistry::new())
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn filters_apply_and_unfiltered_tables_are_shared() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.x FROM a, b WHERE a.x < 10 AND a.y = 1",
            &cat,
            &udfs,
        );
        let budget = WorkBudget::unlimited();
        let p = preprocess(&q, &budget, 1).unwrap();
        // x < 10 and x % 7 == 1 → x ∈ {1, 8}.
        assert_eq!(p.tables[0].num_rows(), 2);
        assert_eq!(p.tables[0].value(0, 0), Value::Int(1));
        assert_eq!(p.tables[0].value(1, 0), Value::Int(8));
        // b untouched → same allocation.
        assert!(Arc::ptr_eq(&p.tables[1], &q.tables[1]));
        assert_eq!(p.base_rows, vec![100, 50]);
        // In-memory tables have no zone maps, so no page accounting.
        assert_eq!((p.pages_read, p.pages_skipped), (0, 0));
    }

    #[test]
    fn parallel_matches_serial() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.y = 3", &cat, &udfs);
        let b1 = WorkBudget::unlimited();
        let b4 = WorkBudget::unlimited();
        let serial = preprocess(&q, &b1, 1).unwrap();
        let parallel = preprocess(&q, &b4, 4).unwrap();
        assert_eq!(serial.tables[0].num_rows(), parallel.tables[0].num_rows());
        for r in 0..serial.tables[0].cardinality() {
            assert_eq!(serial.tables[0].value(r, 0), parallel.tables[0].value(r, 0));
        }
        // Same predicate-evaluation work.
        assert_eq!(b1.used(), b4.used());
    }

    #[test]
    fn budget_exhaustion_aborts() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.y = 3", &cat, &udfs);
        let budget = WorkBudget::with_limit(10);
        assert!(matches!(preprocess(&q, &budget, 1), Err(Timeout)));
    }

    #[test]
    fn empty_filter_result_is_fine() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.x > 1000", &cat, &udfs);
        let budget = WorkBudget::unlimited();
        let p = preprocess(&q, &budget, 1).unwrap();
        assert_eq!(p.tables[0].num_rows(), 0);
    }

    #[test]
    fn zone_maps_skip_pages_and_save_work() {
        use skinner_storage::disk::DiskStore;
        // Build a disk-backed table so preprocessing sees zone maps.
        let dir = std::env::temp_dir().join(format!("skinner_prep_zones_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cat = Catalog::new();
        cat.attach_disk(&dir).unwrap();
        let store: Arc<DiskStore> = cat.disk_store().unwrap();
        store
            .create_table_with("a", schema![("x", Int), ("y", Int)], 16, |w| {
                for i in 0..100 {
                    w.push_row(&[Value::Int(i), Value::Int(i % 7)])?;
                }
                Ok(())
            })
            .unwrap();
        let opened = store.load_table("a", cat.interner()).unwrap();
        cat.register(opened.table);
        let udfs = UdfRegistry::new();
        let q = bind("SELECT a.x FROM a WHERE a.x < 20", &cat, &udfs);
        let zoned_budget = WorkBudget::unlimited();
        let p1 = preprocess(&q, &zoned_budget, 1).unwrap();
        // 100 rows / 16-row pages = 7 pages; x < 20 keeps pages 0 and 1.
        assert_eq!(p1.pages_read, 2);
        assert_eq!(p1.pages_skipped, 5);
        assert_eq!(p1.tables[0].num_rows(), 20);
        // Same result and same work at 4 threads.
        let b4 = WorkBudget::unlimited();
        let p4 = preprocess(&q, &b4, 4).unwrap();
        assert_eq!(zoned_budget.used(), b4.used());
        for r in 0..p1.tables[0].cardinality() {
            assert_eq!(p1.tables[0].value(r, 0), p4.tables[0].value(r, 0));
        }
        // Zone maps must be a net work saving versus the full scan:
        // 7 page consults + 32 row evals + 20 survivors < 100 + 20.
        let cat2 = Catalog::new();
        let mut a = cat2.builder("a", schema![("x", Int), ("y", Int)]);
        for i in 0..100 {
            a.push_row(&[Value::Int(i), Value::Int(i % 7)]);
        }
        cat2.register(a.finish());
        let q2 = bind("SELECT a.x FROM a WHERE a.x < 20", &cat2, &udfs);
        let flat_budget = WorkBudget::unlimited();
        preprocess(&q2, &flat_budget, 1).unwrap();
        assert!(
            zoned_budget.used() < flat_budget.used(),
            "zoned {} !< flat {}",
            zoned_budget.used(),
            flat_budget.used()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
