//! Pre-processing: apply unary predicates, materialize filtered tables.
//!
//! Every evaluation strategy in the paper starts here (Section 3): unary
//! predicates are applied once, up front, producing filtered base tables so
//! the join phase works on dense row ids. Pre-processing is the only phase
//! SkinnerDB parallelizes (Section 6.1); `threads > 1` splits each table
//! scan across crossbeam scoped threads.

use std::sync::Arc;

use skinner_query::expr::EvalCtx;
use skinner_query::JoinQuery;
use skinner_storage::{RowId, Table};

use crate::budget::{Timeout, WorkBudget};

/// Output of pre-processing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Filtered tables, parallel to `query.tables`. Tables without unary
    /// predicates are shared, not copied.
    pub tables: Vec<Arc<Table>>,
    /// Original (unfiltered) row counts, for reporting.
    pub base_rows: Vec<usize>,
}

impl Preprocessed {
    /// Cardinality of filtered table `t`.
    pub fn cardinality(&self, t: usize) -> RowId {
        self.tables[t].cardinality()
    }
}

/// Apply all unary predicates of `query`. Charges one work unit per
/// (row, predicate) evaluation plus one per surviving row.
pub fn preprocess(
    query: &JoinQuery,
    budget: &WorkBudget,
    threads: usize,
) -> Result<Preprocessed, Timeout> {
    let mut tables = Vec::with_capacity(query.tables.len());
    let mut base_rows = Vec::with_capacity(query.tables.len());
    for (t, table) in query.tables.iter().enumerate() {
        base_rows.push(table.num_rows());
        if query.unary[t].is_empty() {
            tables.push(table.clone());
            continue;
        }
        let rows = if threads > 1 {
            filter_parallel(query, t, budget, threads)?
        } else {
            filter_serial(query, t, budget)?
        };
        budget.charge(rows.len() as u64)?;
        let filtered = table.gather(&rows, format!("{}#f", table.name()));
        tables.push(Arc::new(filtered));
    }
    Ok(Preprocessed { tables, base_rows })
}

fn filter_serial(query: &JoinQuery, t: usize, budget: &WorkBudget) -> Result<Vec<RowId>, Timeout> {
    let table = &query.tables[t];
    let interner = table.interner().clone();
    let n = table.cardinality();
    let preds = &query.unary[t];
    let mut rows_vec = Vec::new();
    let mut probe: Vec<RowId> = vec![0; query.tables.len()];
    for row in 0..n {
        probe[t] = row;
        budget.charge(preds.len() as u64)?;
        let ctx = EvalCtx::new(&query.tables, &probe, &interner);
        if preds.iter().all(|p| p.eval_bool(&ctx)) {
            rows_vec.push(row);
        }
    }
    Ok(rows_vec)
}

fn filter_parallel(
    query: &JoinQuery,
    t: usize,
    budget: &WorkBudget,
    threads: usize,
) -> Result<Vec<RowId>, Timeout> {
    let table = &query.tables[t];
    let n = table.cardinality() as usize;
    let chunk = n.div_ceil(threads).max(1);
    let preds = &query.unary[t];
    let interner = table.interner().clone();
    let results: Vec<Result<Vec<RowId>, Timeout>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..threads {
            let lo = (c * chunk).min(n) as RowId;
            let hi = ((c + 1) * chunk).min(n) as RowId;
            let interner = &interner;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                let mut probe: Vec<RowId> = vec![0; query.tables.len()];
                for row in lo..hi {
                    probe[t] = row;
                    budget.charge(preds.len() as u64)?;
                    let ctx = EvalCtx::new(&query.tables, &probe, interner);
                    if preds.iter().all(|p| p.eval_bool(&ctx)) {
                        out.push(row);
                    }
                }
                Ok(out)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("preprocessing thread panicked");
    let mut rows = Vec::new();
    for r in results {
        rows.extend(r?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("x", Int), ("y", Int)]);
        for i in 0..100 {
            a.push_row(&[Value::Int(i), Value::Int(i % 7)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("z", Int)]);
        for i in 0..50 {
            b.push_row(&[Value::Int(i)]);
        }
        cat.register(b.finish());
        (cat, UdfRegistry::new())
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> JoinQuery {
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn filters_apply_and_unfiltered_tables_are_shared() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.x FROM a, b WHERE a.x < 10 AND a.y = 1",
            &cat,
            &udfs,
        );
        let budget = WorkBudget::unlimited();
        let p = preprocess(&q, &budget, 1).unwrap();
        // x < 10 and x % 7 == 1 → x ∈ {1, 8}.
        assert_eq!(p.tables[0].num_rows(), 2);
        assert_eq!(p.tables[0].value(0, 0), Value::Int(1));
        assert_eq!(p.tables[0].value(1, 0), Value::Int(8));
        // b untouched → same allocation.
        assert!(Arc::ptr_eq(&p.tables[1], &q.tables[1]));
        assert_eq!(p.base_rows, vec![100, 50]);
    }

    #[test]
    fn parallel_matches_serial() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.y = 3", &cat, &udfs);
        let b1 = WorkBudget::unlimited();
        let b4 = WorkBudget::unlimited();
        let serial = preprocess(&q, &b1, 1).unwrap();
        let parallel = preprocess(&q, &b4, 4).unwrap();
        assert_eq!(serial.tables[0].num_rows(), parallel.tables[0].num_rows());
        for r in 0..serial.tables[0].cardinality() {
            assert_eq!(serial.tables[0].value(r, 0), parallel.tables[0].value(r, 0));
        }
        // Same predicate-evaluation work.
        assert_eq!(b1.used(), b4.used());
    }

    #[test]
    fn budget_exhaustion_aborts() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.y = 3", &cat, &udfs);
        let budget = WorkBudget::with_limit(10);
        assert!(matches!(preprocess(&q, &budget, 1), Err(Timeout)));
    }

    #[test]
    fn empty_filter_result_is_fine() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.x FROM a WHERE a.x > 1000", &cat, &udfs);
        let budget = WorkBudget::unlimited();
        let p = preprocess(&q, &budget, 1).unwrap();
        assert_eq!(p.tables[0].num_rows(), 0);
    }
}
