//! Naive reference executor — ground truth for correctness tests.
//!
//! Enumerates the full Cartesian product of the base tables and checks every
//! predicate on every combination. Exponential; only for test-sized data.
//! Deliberately shares *no* join code with the real engines (it bypasses
//! pre-processing, hash joins and the multi-way join entirely), so agreement
//! with them is meaningful evidence of correctness.

use skinner_query::expr::EvalCtx;
use skinner_query::JoinQuery;
use skinner_storage::RowId;

use crate::budget::WorkBudget;
use crate::context::CancelToken;
use crate::postprocess::postprocess;
use crate::result::QueryResult;
use crate::TupleIxs;

/// Execute `query` by brute force.
pub fn run_reference(query: &JoinQuery) -> QueryResult {
    run_reference_cancellable(query, &CancelToken::new()).expect("no cancellation")
}

/// Like [`run_reference`], but polls `cancel` in the outer-table loop and
/// returns `None` once it fires — so even the exponential ground-truth
/// executor honours session deadlines.
pub fn run_reference_cancellable(query: &JoinQuery, cancel: &CancelToken) -> Option<QueryResult> {
    let m = query.num_tables();
    let interner = query.tables[0].interner().clone();
    let mut tuples: Vec<TupleIxs> = Vec::new();
    if !query.always_false {
        let mut rows: Vec<RowId> = vec![0; m];
        if !enumerate(query, 0, &mut rows, &interner, cancel, &mut tuples) {
            return None;
        }
    }
    let budget = WorkBudget::unlimited();
    Some(postprocess(&query.tables, query, &tuples, &budget).expect("unlimited budget"))
}

/// Returns `false` if enumeration was cancelled.
fn enumerate(
    query: &JoinQuery,
    depth: usize,
    rows: &mut Vec<RowId>,
    interner: &std::sync::Arc<skinner_storage::Interner>,
    cancel: &CancelToken,
    out: &mut Vec<TupleIxs>,
) -> bool {
    let m = query.num_tables();
    if depth == m {
        out.push(rows.clone().into_boxed_slice());
        return true;
    }
    let n = query.tables[depth].cardinality();
    'next_row: for row in 0..n {
        if depth == 0 && cancel.is_cancelled() {
            return false;
        }
        rows[depth] = row;
        let ctx = EvalCtx::new(&query.tables, rows, interner);
        // Unary predicates of this table.
        for p in &query.unary[depth] {
            if !p.eval_bool(&ctx) {
                continue 'next_row;
            }
        }
        // Join predicates fully covered by tables 0..=depth.
        for p in &query.equi_preds {
            let hi = p.left.table.max(p.right.table);
            if hi == depth {
                let lk = query.tables[p.left.table]
                    .column(p.left.col)
                    .key_at(rows[p.left.table]);
                let rk = query.tables[p.right.table]
                    .column(p.right.col)
                    .key_at(rows[p.right.table]);
                if lk != rk {
                    continue 'next_row;
                }
            }
        }
        for p in &query.generic_preds {
            let hi = p.tables.iter().max().unwrap_or(0);
            if hi == depth && !p.expr.eval_bool(&ctx) {
                continue 'next_row;
            }
        }
        if !enumerate(query, depth + 1, rows, interner, cancel, out) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int)]);
        for i in 0..5 {
            a.push_row(&[Value::Int(i)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int)]);
        for i in 0..8 {
            b.push_row(&[Value::Int(i % 5)]);
        }
        cat.register(b.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn joins_and_filters() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.id < 3",
            &cat,
        );
        let r = run_reference(&q);
        // aid values: 0,1,2,3,4,0,1,2 → ids < 3 matched: 0(×2),1(×2),2(×2).
        assert_eq!(r.num_rows(), 6);
    }

    #[test]
    fn always_false_is_empty() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a WHERE 1 = 0", &cat);
        assert_eq!(run_reference(&q).num_rows(), 0);
    }

    #[test]
    fn cartesian_product_when_no_predicates() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b", &cat);
        assert_eq!(run_reference(&q).num_rows(), 40);
    }

    #[test]
    fn cancelled_token_stops_enumeration() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b", &cat);
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(run_reference_cancellable(&q, &cancel).is_none());
    }
}
