//! Materialized query results.

use skinner_storage::Value;

/// A fully materialized query result: named columns, row-major values.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn empty(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Stream the rows without copying (row-major slices).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Consume the result, streaming owned rows.
    pub fn into_rows(self) -> impl Iterator<Item = Vec<Value>> {
        self.rows.into_iter()
    }

    /// Position of a named output column (exact match first, then
    /// unqualified-suffix match: `name` finds `t.name`).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .or_else(|| {
                self.columns.iter().position(|c| {
                    c.rsplit('.')
                        .next()
                        .is_some_and(|base| base.eq_ignore_ascii_case(name))
                })
            })
    }

    /// Canonical string form of every row, sorted — used by tests to compare
    /// results of different evaluation strategies irrespective of row order
    /// (when the query itself has no ORDER BY).
    pub fn canonical_rows(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rows.iter().map(|r| row_string(r)).collect();
        v.sort();
        v
    }

    /// Row-order-sensitive string form (for ordered queries).
    pub fn ordered_rows(&self) -> Vec<String> {
        self.rows.iter().map(|r| row_string(r)).collect()
    }
}

fn row_string(row: &[Value]) -> String {
    let mut s = String::new();
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            s.push('|');
        }
        // Round floats so strategies differing only in summation order agree.
        match v {
            Value::Float(x) => s.push_str(&format!("{x:.6}")),
            other => s.push_str(&other.to_string()),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rows_sorted_and_order_insensitive() {
        let a = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        let b = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        assert_eq!(a.canonical_rows(), b.canonical_rows());
        assert_ne!(a.ordered_rows(), b.ordered_rows());
    }

    #[test]
    fn float_rounding_in_canonical_form() {
        let a = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(0.1 + 0.2)]],
        };
        let b = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(0.3)]],
        };
        assert_eq!(a.canonical_rows(), b.canonical_rows());
    }

    #[test]
    fn row_iteration_and_column_lookup() {
        let r = QueryResult {
            columns: vec!["t.id".into(), "n".into()],
            rows: vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        };
        let ids: Vec<i64> = r.iter_rows().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(r.column_index("n"), Some(1));
        assert_eq!(r.column_index("T.ID"), Some(0));
        assert_eq!(r.column_index("id"), Some(0));
        assert_eq!(r.column_index("missing"), None);
        let owned: Vec<Vec<Value>> = r.into_rows().collect();
        assert_eq!(owned.len(), 2);
    }
}
