//! The open execution-strategy API.
//!
//! SkinnerDB's engines — and any engine an external crate wants to plug in
//! — implement [`ExecutionStrategy`]: evaluate one bound [`JoinQuery`]
//! under an [`ExecContext`] and report an [`ExecOutcome`]. Strategies are
//! registered by name in a [`StrategyRegistry`], so new learned optimizers
//! (the RL-optimizer line of work this reproduction sits in keeps
//! producing them) slot in without touching the engine crates.
//!
//! This crate ships the two engine-agnostic implementations:
//! [`TraditionalStrategy`] (statistics → DP optimizer → generic engine)
//! and [`ReferenceStrategy`] (the naive nested-loop ground truth).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use skinner_query::JoinQuery;

use crate::context::ExecContext;
use crate::outcome::ExecOutcome;
use crate::traditional::{run_traditional, TraditionalConfig};

/// An execution engine that can evaluate bound join queries.
///
/// Object-safe by design: the facade and registry deal exclusively in
/// `Arc<dyn ExecutionStrategy>`.
pub trait ExecutionStrategy: Send + Sync {
    /// Display / registry name (matched case-insensitively on lookup).
    fn name(&self) -> &str;

    /// Evaluate `query` under `ctx`. Implementations must be cooperative:
    /// honour `ctx.effective_limit(...)` for work and poll
    /// `ctx.interrupted()` in their slice loops, reporting a timed-out
    /// outcome rather than running away.
    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome;
}

/// A concurrent name → strategy map; lookups are case-insensitive.
#[derive(Default)]
pub struct StrategyRegistry {
    inner: RwLock<HashMap<String, Arc<dyn ExecutionStrategy>>>,
}

impl StrategyRegistry {
    /// An empty registry (the facade crate populates the built-ins).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `strategy` under its own name, replacing and returning any
    /// previous holder of that name.
    pub fn register(
        &self,
        strategy: Arc<dyn ExecutionStrategy>,
    ) -> Option<Arc<dyn ExecutionStrategy>> {
        let key = strategy.name().to_ascii_lowercase();
        self.inner.write().insert(key, strategy)
    }

    /// Look up a strategy by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<Arc<dyn ExecutionStrategy>> {
        self.inner.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Registered names, sorted (display names as the strategies report
    /// them, not the lowercased keys).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .values()
            .map(|s| s.name().to_string())
            .collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl std::fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("strategies", &self.names())
            .finish()
    }
}

/// The traditional DBMS path as a pluggable strategy.
#[derive(Debug, Clone, Default)]
pub struct TraditionalStrategy(pub TraditionalConfig);

impl ExecutionStrategy for TraditionalStrategy {
    fn name(&self) -> &str {
        "Traditional"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        run_traditional(query, ctx, &self.0)
    }
}

/// The naive nested-loop reference executor (testing only; exponential).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceStrategy;

impl ExecutionStrategy for ReferenceStrategy {
    fn name(&self) -> &str {
        "Reference"
    }

    fn execute(&self, query: &JoinQuery, ctx: &ExecContext) -> ExecOutcome {
        let start = Instant::now();
        match crate::reference::run_reference_cancellable(query, ctx.cancel()) {
            Some(result) => ExecOutcome::completed(result, 0, start.elapsed()),
            None => {
                let columns = query.select.iter().map(|s| s.name().to_string()).collect();
                ExecOutcome::timeout(columns, 0, start.elapsed())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::QueryResult;

    struct Fake(&'static str);

    impl ExecutionStrategy for Fake {
        fn name(&self) -> &str {
            self.0
        }
        fn execute(&self, query: &JoinQuery, _ctx: &ExecContext) -> ExecOutcome {
            let columns = query.select.iter().map(|s| s.name().to_string()).collect();
            ExecOutcome::completed(QueryResult::empty(columns), 0, std::time::Duration::ZERO)
        }
    }

    #[test]
    fn registry_roundtrip_case_insensitive() {
        let reg = StrategyRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.register(Arc::new(Fake("My-Engine"))).is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.contains("my-engine"));
        assert!(reg.get("MY-ENGINE").is_some());
        assert!(reg.get("other").is_none());
        assert_eq!(reg.names(), vec!["My-Engine".to_string()]);
        // Re-registering the same name replaces the old strategy.
        let old = reg.register(Arc::new(Fake("my-engine")));
        assert_eq!(old.unwrap().name(), "My-Engine");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Arc::new(StrategyRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let name: &'static str = Box::leak(format!("engine-{i}").into_boxed_str());
                    reg.register(Arc::new(Fake(name)));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 4);
    }
}
