//! The traditional DBMS query path: statistics → DP optimizer → execution.
//!
//! This is the "Postgres" / "MonetDB" / "Optimizer" baseline of the paper's
//! experiments, and the engine Skinner-G/H drive with forced join orders
//! (via `forced_order`, our analogue of optimizer hints).

use std::time::Instant;

use skinner_optimizer::{plan_query, PlannerConfig};
use skinner_query::JoinQuery;

use crate::budget::WorkBudget;
use crate::context::ExecContext;
use crate::engine::{execute_join, ExecProfile};
use crate::outcome::{ExecMetrics, ExecOutcome};
use crate::postprocess::postprocess;
use crate::preprocess::preprocess;

/// Configuration of a traditional run.
#[derive(Debug, Clone)]
pub struct TraditionalConfig {
    pub profile: ExecProfile,
    /// Bypass the optimizer with an externally chosen join order — the
    /// paper's replay experiments (Tables 3/4) and Skinner-G's forced orders.
    pub forced_order: Option<Vec<usize>>,
    /// Hard work-unit limit; execution aborts (losing everything) beyond it.
    pub work_limit: u64,
    /// Threads for the pre-processing scan.
    pub preprocess_threads: usize,
    /// Planner DP table limit (greedy fallback beyond it).
    pub dp_table_limit: usize,
}

impl Default for TraditionalConfig {
    fn default() -> Self {
        TraditionalConfig {
            profile: ExecProfile::row_store(),
            forced_order: None,
            work_limit: u64::MAX,
            preprocess_threads: 1,
            dp_table_limit: PlannerConfig::default().dp_table_limit,
        }
    }
}

/// Run `query` the traditional way. The engine is a blocking black box, so
/// cancellation is checked between pipeline stages rather than per tuple.
pub fn run_traditional(
    query: &JoinQuery,
    ctx: &ExecContext,
    cfg: &TraditionalConfig,
) -> ExecOutcome {
    let start = Instant::now();
    let budget = WorkBudget::with_limit(ctx.effective_limit(cfg.work_limit));
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();

    // Plan first: the optimizer only looks at statistics, not data, so it is
    // charged no work units (planning overhead is negligible at our scales).
    let (order, plan_cost_est) = match &cfg.forced_order {
        Some(o) => (o.clone(), None),
        None => {
            let plan = plan_query(
                query,
                ctx.stats(),
                &PlannerConfig {
                    dp_table_limit: cfg.dp_table_limit,
                },
            );
            (plan.order, Some(plan.cost_est))
        }
    };

    let metrics = |order: Vec<usize>, budget: &WorkBudget, pages: (u64, u64)| {
        let m = ExecMetrics {
            order,
            intermediate_tuples: budget.tuples_produced(),
            pages_read: pages.0,
            pages_skipped: pages.1,
            ..ExecMetrics::default()
        };
        match plan_cost_est {
            Some(c) => m.with_counter("plan_cost_est", c.round() as u64),
            None => m,
        }
    };
    let timed_out_outcome =
        |order: Vec<usize>, budget: &WorkBudget, start: Instant, pages: (u64, u64)| {
            ctx.absorb_work(budget.used());
            ExecOutcome::timeout(columns.clone(), budget.used(), start.elapsed())
                .with_metrics(metrics(order, budget, pages))
        };

    if ctx.interrupted() {
        return timed_out_outcome(order, &budget, start, (0, 0));
    }
    let pre = match preprocess(query, &budget, cfg.preprocess_threads) {
        Ok(p) => p,
        Err(_) => return timed_out_outcome(order, &budget, start, (0, 0)),
    };
    let pages = (pre.pages_read, pre.pages_skipped);

    if ctx.interrupted() {
        return timed_out_outcome(order, &budget, start, pages);
    }
    let tuples = if query.always_false {
        Vec::new()
    } else {
        let floors = vec![0; query.num_tables()];
        let n0 = pre.tables[order[0]].cardinality();
        match execute_join(
            &pre.tables,
            query,
            &order,
            0..n0,
            &floors,
            &cfg.profile,
            &budget,
            false,
        ) {
            Ok(out) => out.into_tuples(),
            Err(_) => return timed_out_outcome(order, &budget, start, pages),
        }
    };

    if ctx.interrupted() {
        return timed_out_outcome(order, &budget, start, pages);
    }
    let result = match postprocess(&pre.tables, query, &tuples, &budget) {
        Ok(r) => r,
        Err(_) => return timed_out_outcome(order, &budget, start, pages),
    };

    ctx.absorb_work(budget.used());
    ExecOutcome::completed(result, budget.used(), start.elapsed())
        .with_metrics(metrics(order, &budget, pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_stats::StatsCache;
    use skinner_storage::{schema, Catalog, Value};

    fn ctx() -> ExecContext {
        ExecContext::new().with_stats(std::sync::Arc::new(StatsCache::new()))
    }

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int)]);
        for i in 0..40 {
            a.push_row(&[Value::Int(i), Value::Int(i % 5)]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..60 {
            b.push_row(&[Value::Int(i % 40), Value::Int(i % 9)]);
        }
        cat.register(b.finish());
        let mut c = cat.builder("c", schema![("bw", Int)]);
        for i in 0..9 {
            c.push_row(&[Value::Int(i)]);
        }
        cat.register(c.finish());
        cat
    }

    fn bind(sql: &str, cat: &Catalog) -> JoinQuery {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, cat, &udfs).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn matches_reference_executor() {
        let cat = setup();
        for sql in [
            "SELECT a.id, b.w FROM a, b WHERE a.id = b.aid AND a.g = 2",
            "SELECT a.g, COUNT(*) cnt FROM a, b, c \
             WHERE a.id = b.aid AND b.w = c.bw GROUP BY a.g ORDER BY a.g",
            "SELECT a.id FROM a WHERE a.id BETWEEN 5 AND 9",
        ] {
            let q = bind(sql, &cat);
            let out = run_traditional(&q, &ctx(), &TraditionalConfig::default());
            assert!(!out.timed_out);
            let expected = run_reference(&q);
            assert_eq!(
                out.result.canonical_rows(),
                expected.canonical_rows(),
                "{sql}"
            );
        }
    }

    #[test]
    fn forced_order_is_respected_and_equivalent() {
        let cat = setup();
        let q = bind(
            "SELECT a.id FROM a, b, c WHERE a.id = b.aid AND b.w = c.bw",
            &cat,
        );
        let ctx = ctx();
        let default = run_traditional(&q, &ctx, &TraditionalConfig::default());
        let forced = run_traditional(
            &q,
            &ctx,
            &TraditionalConfig {
                forced_order: Some(vec![2, 1, 0]),
                ..Default::default()
            },
        );
        assert_eq!(forced.metrics.order, vec![2, 1, 0]);
        assert_eq!(
            default.result.canonical_rows(),
            forced.result.canonical_rows()
        );
    }

    #[test]
    fn work_limit_times_out() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        let out = run_traditional(
            &q,
            &ctx(),
            &TraditionalConfig {
                work_limit: 5,
                ..Default::default()
            },
        );
        assert!(out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn always_false_short_circuit() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a WHERE 1 = 2", &cat);
        let out = run_traditional(&q, &ctx(), &TraditionalConfig::default());
        assert!(!out.timed_out);
        assert_eq!(out.result.num_rows(), 0);
    }

    #[test]
    fn single_table_query() {
        let cat = setup();
        let q = bind("SELECT a.id FROM a WHERE a.g = 0 ORDER BY a.id", &cat);
        let out = run_traditional(&q, &ctx(), &TraditionalConfig::default());
        assert_eq!(out.result.num_rows(), 8);
        assert_eq!(out.metrics.order, vec![0]);
    }
}
