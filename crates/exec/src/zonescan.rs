//! Zone-map scan planning: prove unary predicates false for whole pages.
//!
//! Tables decoded from disk segments carry per-page min/max bounds
//! ([`ZoneMap`]). Before pre-processing evaluates the unary predicates of a
//! table row by row, [`plan_scan`] walks the pages and drops every page on
//! which some predicate is **definitely false** given the bounds. Since
//! work units are this system's cost currency and pre-processing charges
//! one unit per (row, predicate) evaluation, a skipped page is a real
//! saving, not just an iterator trick.
//!
//! The refutation rules are deliberately conservative — a page is skipped
//! only when the bounds *prove* emptiness:
//!
//! - `Cmp` between a column of the scanned table and a literal, with the
//!   usual interval logic (`x = 7` is false on a page with `max < 7`, …).
//! - Float bounds cover the non-NaN rows of a page (NaN rows fail every
//!   comparison themselves; an all-NaN page carries the empty marker
//!   `min > max`, which refutes any comparison). A NaN literal refutes
//!   every comparison outright.
//! - An integer literal against a float column (or vice versa) is pruned
//!   only when the integers involved are exactly representable as `f64`
//!   (|v| ≤ 2⁵³); otherwise the page is scanned.
//! - String bounds are interner-code ranges. Codes are not ordered like
//!   the strings, so only `=` (code outside `[min, max]`) and `<>` (page
//!   constant and equal) prune; `<`/`>` never do.
//! - `AND` refutes when any conjunct refutes, `OR` when every disjunct
//!   refutes. `NOT`, `IN`, `LIKE`, UDFs and anything else never refute.

use skinner_query::expr::{CmpOp, Expr};
use skinner_storage::{RowId, Table, ZoneCol, ZoneMap};

/// Largest integer magnitude exactly representable in `f64`.
const F64_EXACT: i64 = 1 << 53;

/// The page-skip decision for one table's scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPlan {
    /// Row ranges to evaluate, ascending and non-overlapping. Contiguous
    /// surviving pages are merged.
    pub ranges: Vec<(RowId, RowId)>,
    /// Pages whose rows will be evaluated.
    pub pages_read: u64,
    /// Pages proven empty from the zone map alone.
    pub pages_skipped: u64,
}

impl ScanPlan {
    /// A plan that scans all `n` rows (tables without zone maps).
    pub fn full(n: RowId) -> ScanPlan {
        ScanPlan {
            ranges: if n > 0 { vec![(0, n)] } else { vec![] },
            pages_read: 0,
            pages_skipped: 0,
        }
    }

    /// Rows surviving the page skip (the number to be evaluated).
    pub fn kept_rows(&self) -> usize {
        self.ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).sum()
    }
}

/// Plan the scan of `table` (at query position `t`) under the conjunction
/// `preds`. Tables without a zone map scan everything.
pub fn plan_scan(table: &Table, t: usize, preds: &[Expr]) -> ScanPlan {
    let n = table.cardinality();
    let Some(zones) = table.zones() else {
        return ScanPlan::full(n);
    };
    let mut ranges: Vec<(RowId, RowId)> = Vec::new();
    let mut pages_read = 0u64;
    let mut pages_skipped = 0u64;
    for page in 0..zones.npages() {
        let skip = preds.iter().any(|p| refutes(p, t, zones, page));
        if skip {
            pages_skipped += 1;
            continue;
        }
        pages_read += 1;
        let (lo, hi) = zones.page_range(page);
        let (lo, hi) = (lo as RowId, hi as RowId);
        match ranges.last_mut() {
            Some(last) if last.1 == lo => last.1 = hi,
            _ => ranges.push((lo, hi)),
        }
    }
    ScanPlan {
        ranges,
        pages_read,
        pages_skipped,
    }
}

/// Literal operand of a prunable comparison.
#[derive(Clone, Copy)]
enum Lit {
    I(i64),
    F(f64),
    S(u32),
}

fn as_lit(e: &Expr) -> Option<Lit> {
    match e {
        Expr::LitInt(v) => Some(Lit::I(*v)),
        Expr::LitFloat(v) => Some(Lit::F(*v)),
        Expr::LitStr { code, .. } => Some(Lit::S(*code)),
        _ => None,
    }
}

/// Mirror a comparison so the column is on the left.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Neq => op,
    }
}

/// Is `e` definitely false for every row of `page`?
fn refutes(e: &Expr, t: usize, zones: &ZoneMap, page: usize) -> bool {
    match e {
        Expr::And(es) => es.iter().any(|c| refutes(c, t, zones, page)),
        Expr::Or(es) => !es.is_empty() && es.iter().all(|c| refutes(c, t, zones, page)),
        Expr::Cmp { op, left, right } => {
            let (col, op, lit) = match (&**left, &**right) {
                (Expr::Col(c, _), rhs) => match as_lit(rhs) {
                    Some(lit) => (c, *op, lit),
                    None => return false,
                },
                (lhs, Expr::Col(c, _)) => match as_lit(lhs) {
                    Some(lit) => (c, flip(*op), lit),
                    None => return false,
                },
                _ => return false,
            };
            if col.table != t || col.col >= zones.ncols() {
                return false;
            }
            cmp_refutes(zones.col(col.col), page, op, lit)
        }
        _ => false,
    }
}

fn cmp_refutes(zones: &ZoneCol, page: usize, op: CmpOp, lit: Lit) -> bool {
    match (zones, lit) {
        (ZoneCol::Int(z), Lit::I(v)) => {
            let (lo, hi) = z[page];
            interval_refutes(op, lo as i128, hi as i128, v as i128)
        }
        // Int column vs float literal: the engine compares as f64, so the
        // bounds must be exact in f64 before they can prove anything.
        (ZoneCol::Int(z), Lit::F(f)) => {
            let (lo, hi) = z[page];
            if lo.abs() > F64_EXACT || hi.abs() > F64_EXACT {
                return false;
            }
            float_refutes(op, lo as f64, hi as f64, f)
        }
        (ZoneCol::Float(z), Lit::F(f)) => {
            let (lo, hi) = z[page];
            float_refutes(op, lo, hi, f)
        }
        (ZoneCol::Float(z), Lit::I(v)) => {
            if v.abs() > F64_EXACT {
                return false;
            }
            let (lo, hi) = z[page];
            float_refutes(op, lo, hi, v as f64)
        }
        // Interner codes are unordered w.r.t. the strings: equality only.
        (ZoneCol::Str(z), Lit::S(code)) => {
            let (lo, hi) = z[page];
            match op {
                CmpOp::Eq => code < lo || code > hi,
                CmpOp::Neq => lo == hi && lo == code,
                _ => false,
            }
        }
        // Type mismatch the planner didn't fold away: don't prune.
        _ => false,
    }
}

/// Interval refutation over a totally ordered domain (exact integers).
fn interval_refutes(op: CmpOp, lo: i128, hi: i128, v: i128) -> bool {
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Neq => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

/// Float refutation. `lo > hi` is the all-NaN/empty page marker: every
/// comparison is false on such a page. A NaN literal fails every
/// comparison on any page.
fn float_refutes(op: CmpOp, lo: f64, hi: f64, v: f64) -> bool {
    if v.is_nan() || lo > hi {
        return true;
    }
    match op {
        CmpOp::Eq => v < lo || v > hi,
        CmpOp::Neq => lo == hi && lo == v,
        CmpOp::Lt => lo >= v,
        CmpOp::Le => lo > v,
        CmpOp::Gt => hi <= v,
        CmpOp::Ge => hi < v,
    }
}

/// Split `ranges` into `parts` contiguous chunks of near-equal row count,
/// preserving order — concatenating the per-chunk outputs reproduces the
/// serial scan order exactly, which is what keeps parallel pre-processing
/// bit-identical to serial.
pub fn split_ranges(ranges: &[(RowId, RowId)], parts: usize) -> Vec<Vec<(RowId, RowId)>> {
    let total: usize = ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
    let parts = parts.max(1);
    let chunk = total.div_ceil(parts).max(1);
    let mut out: Vec<Vec<(RowId, RowId)>> = vec![Vec::new(); parts];
    let mut part = 0usize;
    let mut filled = 0usize;
    for &(mut lo, hi) in ranges {
        while lo < hi {
            if part + 1 < parts && filled == chunk {
                part += 1;
                filled = 0;
            }
            let room = if part + 1 < parts {
                chunk - filled
            } else {
                usize::MAX
            };
            let take = ((hi - lo) as usize).min(room) as RowId;
            out[part].push((lo, lo + take));
            filled += take as usize;
            lo += take;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::expr::ColRef;
    use skinner_storage::{schema, Column, DataType, Interner};
    use std::sync::Arc;

    fn zoned_table(page_rows: usize) -> Table {
        // id: 0..40 ascending; v: id/2 as float; tag: "low" for id<20,
        // "high" after.
        let interner = Arc::new(Interner::new());
        let low = interner.intern("low");
        let high = interner.intern("high");
        let ids: Vec<i64> = (0..40).collect();
        let vs: Vec<f64> = (0..40).map(|i| i as f64 / 2.0).collect();
        let tags: Vec<u32> = (0..40).map(|i| if i < 20 { low } else { high }).collect();
        let columns = vec![Column::Int(ids), Column::Float(vs), Column::Str(tags)];
        let zones = Arc::new(ZoneMap::build(&columns, 40, page_rows));
        Table::from_columns(
            "t",
            schema![("id", Int), ("v", Float), ("tag", Str)],
            columns,
            interner,
        )
        .with_zones(zones)
    }

    fn col(c: usize, dt: DataType) -> Expr {
        Expr::Col(ColRef { table: 0, col: c }, dt)
    }

    fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn selective_int_predicate_skips_pages() {
        let t = zoned_table(10); // pages [0,10) [10,20) [20,30) [30,40)
        let p = cmp(CmpOp::Lt, col(0, DataType::Int), Expr::LitInt(12));
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(0, 20)]);
        assert_eq!(plan.pages_read, 2);
        assert_eq!(plan.pages_skipped, 2);
        // Mirrored literal-on-the-left form prunes identically.
        let p = cmp(CmpOp::Gt, Expr::LitInt(12), col(0, DataType::Int));
        assert_eq!(plan_scan(&t, 0, &[p]), plan);
    }

    #[test]
    fn equality_hits_one_page() {
        let t = zoned_table(10);
        let p = cmp(CmpOp::Eq, col(0, DataType::Int), Expr::LitInt(25));
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(20, 30)]);
        assert_eq!(plan.pages_skipped, 3);
    }

    #[test]
    fn string_equality_prunes_by_code_range() {
        let t = zoned_table(10);
        let code = t.interner().lookup("high").unwrap();
        let p = cmp(
            CmpOp::Eq,
            col(2, DataType::Str),
            Expr::LitStr {
                code,
                text: Arc::from("high"),
            },
        );
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(20, 40)]);
        // Ordering comparisons on strings never prune (codes unordered).
        let p = cmp(
            CmpOp::Lt,
            col(2, DataType::Str),
            Expr::LitStr {
                code,
                text: Arc::from("high"),
            },
        );
        assert_eq!(plan_scan(&t, 0, &[p]).pages_skipped, 0);
    }

    #[test]
    fn and_or_composition() {
        let t = zoned_table(10);
        let lt5 = cmp(CmpOp::Lt, col(0, DataType::Int), Expr::LitInt(5));
        let gt35 = cmp(CmpOp::Gt, col(0, DataType::Int), Expr::LitInt(35));
        // OR refutes only where both sides refute: pages 1 and 2.
        let either = Expr::Or(vec![lt5.clone(), gt35.clone()]);
        let plan = plan_scan(&t, 0, &[either]);
        assert_eq!(plan.ranges, vec![(0, 10), (30, 40)]);
        // AND refutes where either side refutes: everything (disjoint).
        let both = Expr::And(vec![lt5, gt35]);
        let plan = plan_scan(&t, 0, &[both]);
        assert!(plan.ranges.is_empty());
        assert_eq!(plan.pages_skipped, 4);
    }

    #[test]
    fn float_pruning_with_int_literal() {
        let t = zoned_table(10); // v spans [0, 19.5]
        let p = cmp(CmpOp::Ge, col(1, DataType::Float), Expr::LitInt(15));
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(30, 40)]);
    }

    #[test]
    fn nan_pages_and_nan_literals() {
        // A column with an all-NaN page: the empty marker refutes anything.
        let interner = Arc::new(Interner::new());
        let mut v: Vec<f64> = (0..4).map(f64::from).collect();
        v.extend([f64::NAN; 4]);
        let columns = vec![Column::Float(v)];
        let zones = Arc::new(ZoneMap::build(&columns, 8, 4));
        let t =
            Table::from_columns("t", schema![("v", Float)], columns, interner).with_zones(zones);
        let p = cmp(CmpOp::Ge, col(0, DataType::Float), Expr::LitFloat(0.0));
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(0, 4)], "all-NaN page skipped soundly");
        // NaN literal: nothing can ever match; every page refuted.
        let p = cmp(CmpOp::Eq, col(0, DataType::Float), Expr::LitFloat(f64::NAN));
        assert!(plan_scan(&t, 0, &[p]).ranges.is_empty());
    }

    #[test]
    fn unprunable_shapes_scan_everything() {
        let t = zoned_table(10);
        // NOT, and a column-column comparison: no pruning.
        let p = Expr::Not(Box::new(cmp(
            CmpOp::Lt,
            col(0, DataType::Int),
            Expr::LitInt(5),
        )));
        assert_eq!(plan_scan(&t, 0, &[p]).pages_skipped, 0);
        let p = cmp(CmpOp::Eq, col(0, DataType::Int), col(1, DataType::Float));
        assert_eq!(plan_scan(&t, 0, &[p]).pages_skipped, 0);
        // Huge ints near the f64-exactness cliff don't prune float columns.
        let p = cmp(
            CmpOp::Gt,
            col(1, DataType::Float),
            Expr::LitInt(F64_EXACT + 1),
        );
        assert_eq!(plan_scan(&t, 0, &[p]).pages_skipped, 0);
    }

    #[test]
    fn tables_without_zones_scan_fully() {
        let interner = Arc::new(Interner::new());
        let t = Table::from_columns(
            "m",
            schema![("x", Int)],
            vec![Column::Int((0..5).collect())],
            interner,
        );
        let p = cmp(CmpOp::Lt, col(0, DataType::Int), Expr::LitInt(-10));
        let plan = plan_scan(&t, 0, &[p]);
        assert_eq!(plan.ranges, vec![(0, 5)]);
        assert_eq!(plan.pages_read + plan.pages_skipped, 0);
    }

    #[test]
    fn split_ranges_preserves_order_and_rows() {
        let ranges = vec![(0u32, 10u32), (20, 25), (40, 60)];
        for parts in 1..=6 {
            let split = split_ranges(&ranges, parts);
            assert_eq!(split.len(), parts);
            let rows: Vec<RowId> = split
                .iter()
                .flatten()
                .flat_map(|&(lo, hi)| lo..hi)
                .collect();
            let expect: Vec<RowId> = ranges.iter().flat_map(|&(lo, hi)| lo..hi).collect();
            assert_eq!(rows, expect, "parts = {parts}");
        }
    }
}
