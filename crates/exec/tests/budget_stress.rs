//! Concurrency stress and property tests for the shared [`WorkBudget`].
//!
//! Many threads hammer `charge` and `try_consume` concurrently; the tests
//! assert the two accounting guarantees parallel execution relies on:
//!
//! * `charge` never loses an update — `used()` is exactly the sum of all
//!   charges, successful or not;
//! * `try_consume` never overspends — the sum of *successful* reservations
//!   never exceeds the limit, under any interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use skinner_exec::WorkBudget;

/// `threads` workers each attempt `attempts` reservations of size `amount`
/// against one budget; returns the total successfully reserved.
fn hammer_try_consume(limit: u64, threads: u64, attempts: u64, amount: u64) -> u64 {
    let budget = Arc::new(WorkBudget::with_limit(limit));
    let reserved = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let budget = budget.clone();
            let reserved = reserved.clone();
            std::thread::spawn(move || {
                for _ in 0..attempts {
                    if budget.try_consume(amount) {
                        reserved.fetch_add(amount, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = reserved.load(Ordering::Relaxed);
    assert_eq!(
        budget.used(),
        total,
        "used() must reflect exactly the successful reservations"
    );
    assert!(!budget.exhausted(), "try_consume must stop at the limit");
    total
}

#[test]
fn try_consume_under_contention_never_overspends() {
    for (limit, threads, attempts, amount) in [
        (1_000u64, 8u64, 500u64, 1u64),
        (999, 8, 500, 7),
        (64, 16, 64, 8),
        (10, 4, 1_000, 3),
    ] {
        let total = hammer_try_consume(limit, threads, attempts, amount);
        assert!(total <= limit, "overspent: {total} > {limit}");
        // With enough attempts the budget is driven to within one grant of
        // full: no spurious failures leave permanent headroom.
        if threads * attempts * amount >= limit + amount {
            assert!(
                total + amount > limit,
                "under-filled: {total} of {limit} with grants of {amount}"
            );
        }
    }
}

#[test]
fn concurrent_charges_are_never_lost() {
    let budget = Arc::new(WorkBudget::unlimited());
    let threads = 8u64;
    let per_thread = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let budget = budget.clone();
            std::thread::spawn(move || {
                for k in 0..per_thread {
                    // Mixed charge sizes to vary interleavings.
                    budget.charge(1 + (i + k) % 3).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected: u64 = (0..threads)
        .map(|i| (0..per_thread).map(|k| 1 + (i + k) % 3).sum::<u64>())
        .sum();
    assert_eq!(budget.used(), expected, "lost charge updates");
}

#[test]
fn mixed_charge_and_try_consume_accounting_is_exact() {
    let budget = Arc::new(WorkBudget::with_limit(u64::MAX));
    let granted = Arc::new(AtomicU64::new(0));
    let charged = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            let budget = budget.clone();
            let granted = granted.clone();
            let charged = charged.clone();
            std::thread::spawn(move || {
                for k in 0..1_000u64 {
                    if (i + k) % 2 == 0 {
                        if budget.try_consume(2) {
                            granted.fetch_add(2, Ordering::Relaxed);
                        }
                    } else {
                        budget.charge(3).unwrap();
                        charged.fetch_add(3, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        budget.used(),
        granted.load(Ordering::Relaxed) + charged.load(Ordering::Relaxed)
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Property: for random limits, thread counts and grant sizes, the sum
    /// of successful reservations fits the limit and the accounting is
    /// exact.
    #[test]
    fn reservations_fit_limit_for_random_shapes(
        limit in 1u64..5_000,
        threads in 2u64..8,
        attempts in 1u64..200,
        amount in 1u64..64,
    ) {
        let total = hammer_try_consume(limit, threads, attempts, amount);
        prop_assert!(total <= limit);
        prop_assert_eq!(total % amount, 0);
    }
}
