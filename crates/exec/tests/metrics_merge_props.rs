//! Property tests for [`merge_worker_metrics`]: merging per-worker metric
//! blocks must reproduce exactly the totals a sequential run over the same
//! work would report — additive fields summed exactly once, shared
//! snapshots (cache counters, convergence indexes, tree sizes) not
//! multiplied by the worker count.

use proptest::prelude::*;
use skinner_exec::{merge_worker_metrics, ExecMetrics};

/// One worker's additive contribution, drawn independently per worker.
#[derive(Debug, Clone)]
struct Part {
    intermediate_tuples: u64,
    result_tuples: u64,
    slices: u64,
    pages_read: u64,
    pages_skipped: u64,
    chunks: u64,
    uct_nodes: usize,
    order_a_slices: u64,
    order_b_slices: u64,
    shard_visits: u64,
}

fn part() -> impl Strategy<Value = Part> {
    (
        (0u64..1_000, 0u64..1_000, 0u64..1_000, 0u64..100),
        (0u64..100, 0u64..10, 0usize..5_000),
        (0u64..50, 0u64..50, 0u64..200),
    )
        .prop_map(|(a, b, c)| Part {
            intermediate_tuples: a.0,
            result_tuples: a.1,
            slices: a.2,
            pages_read: a.3,
            pages_skipped: b.0,
            chunks: b.1,
            uct_nodes: b.2,
            order_a_slices: c.0,
            order_b_slices: c.1,
            shard_visits: c.2,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Merged worker metrics equal the sequential totals: every additive
    /// field is the sum over workers, every replicated snapshot keeps its
    /// shared value, and keyed structures merge by key.
    #[test]
    fn merge_equals_sequential_totals(
        parts in proptest::collection::vec(part(), 1..9),
        cache_hit in 0u64..2,
        warm_start_visits in 0u64..5_000,
        last_order_switch in 0u64..10_000,
    ) {
        // Each worker block carries its own additive contribution plus the
        // shared snapshot facts every worker replicates (the same cache
        // probe, the same convergence index, the same shared-tree size).
        let shared_tree_nodes = parts.iter().map(|p| p.uct_nodes).max().unwrap_or(0);
        let blocks: Vec<ExecMetrics> = parts
            .iter()
            .map(|p| {
                ExecMetrics {
                    intermediate_tuples: p.intermediate_tuples,
                    result_tuples: p.result_tuples,
                    slices: p.slices,
                    pages_read: p.pages_read,
                    pages_skipped: p.pages_skipped,
                    uct_nodes: shared_tree_nodes,
                    order_slice_counts: vec![
                        (vec![0, 1, 2], p.order_a_slices),
                        (vec![2, 1, 0], p.order_b_slices),
                    ],
                    shard_stats: vec![(0, p.shard_visits, 0)],
                    ..ExecMetrics::default()
                }
                .with_counter("chunks", p.chunks)
                .with_counter("cache_hit", cache_hit)
                .with_counter("warm_start_visits", warm_start_visits)
                .with_counter("last_order_switch", last_order_switch)
            })
            .collect();

        let merged = merge_worker_metrics(blocks);

        // Additive fields: summed exactly once per worker contribution.
        let sum = |f: fn(&Part) -> u64| parts.iter().map(f).sum::<u64>();
        prop_assert_eq!(merged.intermediate_tuples, sum(|p| p.intermediate_tuples));
        prop_assert_eq!(merged.result_tuples, sum(|p| p.result_tuples));
        prop_assert_eq!(merged.slices, sum(|p| p.slices));
        prop_assert_eq!(merged.pages_read, sum(|p| p.pages_read));
        prop_assert_eq!(merged.pages_skipped, sum(|p| p.pages_skipped));
        prop_assert_eq!(merged.counter("chunks"), Some(sum(|p| p.chunks)));

        // Shared snapshots: the replicated value, never multiplied.
        prop_assert_eq!(merged.counter("cache_hit"), Some(cache_hit));
        prop_assert_eq!(merged.counter("warm_start_visits"), Some(warm_start_visits));
        prop_assert_eq!(merged.counter("last_order_switch"), Some(last_order_switch));
        prop_assert_eq!(merged.uct_nodes, shared_tree_nodes);

        // Keyed structures: per-key sums.
        let a_total = sum(|p| p.order_a_slices);
        let b_total = sum(|p| p.order_b_slices);
        let by_order = |order: &[usize]| {
            merged
                .order_slice_counts
                .iter()
                .find(|(o, _)| o == order)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        prop_assert_eq!(by_order(&[0, 1, 2]), a_total);
        prop_assert_eq!(by_order(&[2, 1, 0]), b_total);
        // Most-used-first invariant.
        for w in merged.order_slice_counts.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        prop_assert_eq!(merged.shard_stats, vec![(0, sum(|p| p.shard_visits), 0)]);
    }

    /// Merging is associative: folding in two halves equals one pass —
    /// the property that makes hierarchical (per-shard, then global)
    /// aggregation safe.
    #[test]
    fn merge_is_associative(parts in proptest::collection::vec(part(), 2..8), split in 1usize..7) {
        let blocks: Vec<ExecMetrics> = parts
            .iter()
            .map(|p| {
                ExecMetrics {
                    result_tuples: p.result_tuples,
                    slices: p.slices,
                    pages_read: p.pages_read,
                    ..ExecMetrics::default()
                }
                .with_counter("chunks", p.chunks)
                .with_counter("cache_hit", 1)
            })
            .collect();
        let split = split.min(blocks.len() - 1);
        let one_pass = merge_worker_metrics(blocks.clone());
        let (lo, hi) = blocks.split_at(split);
        let two_pass = merge_worker_metrics([
            merge_worker_metrics(lo.to_vec()),
            merge_worker_metrics(hi.to_vec()),
        ]);
        prop_assert_eq!(one_pass.result_tuples, two_pass.result_tuples);
        prop_assert_eq!(one_pass.slices, two_pass.slices);
        prop_assert_eq!(one_pass.pages_read, two_pass.pages_read);
        prop_assert_eq!(one_pass.counter("chunks"), two_pass.counter("chunks"));
        prop_assert_eq!(one_pass.counter("cache_hit"), Some(1));
        prop_assert_eq!(two_pass.counter("cache_hit"), Some(1));
    }
}
