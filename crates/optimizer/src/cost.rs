//! The `C_out` cost metric.

use skinner_query::TableSet;

/// `C_out` of a left-deep join order: the sum of the cardinalities of every
/// intermediate (and the final) result, i.e. `Σ_{k=2..m} |R_{j1} ⋈ … ⋈ R_{jk}|`.
///
/// `card` maps a table set to its (estimated or true) join cardinality.
/// The paper's regret analysis assumes execution time behaves like `C_out`
/// (Section 5.2), and its Tables 3/4 compute "optimal" orders under this
/// metric.
pub fn cout(order: &[usize], mut card: impl FnMut(TableSet) -> f64) -> f64 {
    let mut set = TableSet::EMPTY;
    let mut total = 0.0;
    for (k, &t) in order.iter().enumerate() {
        set.insert(t);
        if k >= 1 {
            total += card(set);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_prefix_cardinalities() {
        // card({0,1}) = 10, card({0,1,2}) = 4.
        let c = cout(&[0, 1, 2], |s| match s.len() {
            2 => 10.0,
            3 => 4.0,
            _ => panic!("unexpected {s:?}"),
        });
        assert_eq!(c, 14.0);
    }

    #[test]
    fn single_table_costs_nothing() {
        assert_eq!(cout(&[0], |_| panic!("no joins")), 0.0);
    }

    #[test]
    fn order_changes_cost() {
        // Asymmetric intermediate sizes: {0,1} huge, {1,2} tiny.
        let card = |s: TableSet| {
            if s.len() == 3 {
                5.0
            } else if s.contains(0) && s.contains(1) {
                1000.0
            } else {
                2.0
            }
        };
        let bad = cout(&[0, 1, 2], card);
        let good = cout(&[1, 2, 0], card);
        assert!(good < bad);
    }
}
