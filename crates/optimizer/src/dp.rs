//! Selinger-style dynamic programming over left-deep join orders.

use std::collections::HashMap;

use skinner_query::{JoinGraph, JoinQuery, TableSet};
use skinner_stats::{Estimator, StatsCache};

/// Best left-deep join order under an arbitrary cardinality function,
/// excluding avoidable Cartesian products. Returns the order and its `C_out`
/// cost. `card` is consulted once per (reachable) table subset of size ≥ 2
/// and may be expensive (e.g. exact counting), so results are cached here.
pub fn best_left_deep(graph: &JoinGraph, card: impl FnMut(TableSet) -> f64) -> (Vec<usize>, f64) {
    let m = graph.num_tables();
    assert!(m >= 1, "empty query");
    if m == 1 {
        return (vec![0], 0.0);
    }
    let (order, cost) = best_left_deep_from(graph, TableSet::EMPTY, card);
    (order, cost)
}

/// Best left-deep *completion*: cheapest order of the tables not yet in
/// `start`, given that `start` is already joined. With an empty `start`
/// this is ordinary left-deep optimization. Used by the re-optimizer
/// baseline, which re-plans the remaining tables after each materialized
/// join. Returns only the appended tables, in order.
pub fn best_left_deep_from(
    graph: &JoinGraph,
    start: TableSet,
    mut card: impl FnMut(TableSet) -> f64,
) -> (Vec<usize>, f64) {
    let m = graph.num_tables();
    let full = TableSet::first_n(m);
    assert!(start.is_subset_of(&full));
    let remaining = m - start.len();
    if remaining == 0 {
        return (Vec::new(), 0.0);
    }
    // DP state: subset → (cost so far, last table chosen).
    let mut best: HashMap<u64, (f64, usize)> = HashMap::new();
    let mut card_cache: HashMap<u64, f64> = HashMap::new();
    let mut frontier: Vec<TableSet> = Vec::new();
    if start.is_empty() {
        for t in 0..m {
            best.insert(TableSet::singleton(t).mask(), (0.0, t));
            frontier.push(TableSet::singleton(t));
        }
    } else {
        best.insert(start.mask(), (0.0, usize::MAX));
        frontier.push(start);
    }
    let steps = if start.is_empty() {
        remaining - 1
    } else {
        remaining
    };
    for _ in 0..steps {
        let mut next_frontier: Vec<TableSet> = Vec::new();
        for &set in &frontier {
            let (base_cost, _) = best[&set.mask()];
            for t in graph.eligible_next(set).iter() {
                let bigger = set.with(t);
                let c = *card_cache
                    .entry(bigger.mask())
                    .or_insert_with(|| card(bigger));
                let cost = base_cost + c;
                match best.get(&bigger.mask()) {
                    Some(&(old, _)) if old <= cost => {}
                    _ => {
                        if !best.contains_key(&bigger.mask()) {
                            next_frontier.push(bigger);
                        }
                        best.insert(bigger.mask(), (cost, t));
                    }
                }
            }
        }
        frontier = next_frontier;
    }
    // Reconstruct by walking back from the full set to `start`.
    let (total, _) = best[&full.mask()];
    let mut order = Vec::with_capacity(remaining);
    let mut set = full;
    while set != start {
        let (_, last) = best[&set.mask()];
        order.push(last);
        set.remove(last);
    }
    order.reverse();
    (order, total)
}

/// The traditional optimizer: best left-deep order under *estimated*
/// cardinalities (independence assumptions, default UDF selectivities).
pub fn best_left_deep_estimated(query: &JoinQuery, cache: &StatsCache) -> (Vec<usize>, f64) {
    let graph = query.join_graph();
    let est = Estimator::new(query, cache);
    best_left_deep(&graph, |s| est.join_cardinality(s))
}

/// Same as [`best_left_deep_estimated`] but with a pre-built, possibly
/// calibrated estimator (used by the re-optimizer baseline).
pub fn best_left_deep_with(query: &JoinQuery, est: &Estimator<'_>) -> (Vec<usize>, f64) {
    let graph = query.join_graph();
    best_left_deep(&graph, |s| est.join_cardinality(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{bind_select, parser::parse_statement, UdfRegistry};
    use skinner_storage::{schema, Catalog, Value};

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
    }

    #[test]
    fn picks_cheap_side_first() {
        // Chain 0–1–2. Joining {1,2} is tiny, {0,1} is huge.
        let card = |s: TableSet| -> f64 {
            if s.len() == 3 {
                10.0
            } else if s.contains(0) && s.contains(1) {
                10_000.0
            } else {
                5.0
            }
        };
        let (order, cost) = best_left_deep(&chain_graph(3), card);
        // Optimal: start with the 1–2 edge.
        assert_eq!(cost, 15.0);
        assert!(order[..2] == [1, 2] || order[..2] == [2, 1], "{order:?}");
    }

    #[test]
    fn single_and_two_tables() {
        let g1 = JoinGraph::new(1, []);
        assert_eq!(best_left_deep(&g1, |_| 0.0).0, vec![0]);
        let g2 = chain_graph(2);
        let (o, c) = best_left_deep(&g2, |_| 42.0);
        assert_eq!(c, 42.0);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn respects_cartesian_avoidance() {
        // 0–1 connected; 2 isolated. The order must join 0,1 first.
        let g = JoinGraph::new(3, [TableSet::from_iter([0, 1])]);
        let (order, _) = best_left_deep(&g, |s| s.len() as f64);
        assert!(g.validates(&order), "{order:?}");
        assert_eq!(order[2], 2);
    }

    #[test]
    fn agrees_with_exhaustive_enumeration() {
        use skinner_optimizer_test_util::pseudo_card;
        let g = chain_graph(5);
        let (dp_order, dp_cost) = best_left_deep(&g, pseudo_card);
        // Exhaustive check over all valid orders.
        let mut best = f64::INFINITY;
        for o in g.all_orders() {
            let c = crate::cost::cout(&o, pseudo_card);
            best = best.min(c);
        }
        assert!((dp_cost - best).abs() < 1e-9, "dp {dp_cost} vs {best}");
        assert!((crate::cost::cout(&dp_order, pseudo_card) - dp_cost).abs() < 1e-9);
    }

    /// Deterministic pseudo-random cardinalities keyed on the subset mask.
    mod skinner_optimizer_test_util {
        use skinner_query::TableSet;

        pub fn pseudo_card(s: TableSet) -> f64 {
            let mut x = s.mask().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 33;
            (x % 1000) as f64 + 1.0
        }
    }

    #[test]
    fn completion_from_prefix_respects_start_set() {
        let g = chain_graph(4);
        // Already joined {1, 2}; only 0 and 3 remain, both connected.
        let start = TableSet::from_iter([1, 2]);
        let card = |s: TableSet| {
            if s.contains(0) && !s.contains(3) {
                100.0 // adding 0 first is expensive
            } else {
                1.0
            }
        };
        let (rest, cost) = best_left_deep_from(&g, start, card);
        assert_eq!(rest, vec![3, 0]);
        assert_eq!(cost, 2.0);
        // Empty completion when everything is already joined.
        let (rest, cost) = best_left_deep_from(&g, TableSet::first_n(4), |_| 0.0);
        assert!(rest.is_empty());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn estimated_optimizer_prefers_selective_table_first() {
        let cat = Catalog::new();
        // big (10k rows), small (10 rows), mid (1k rows); chain small–mid–big.
        let mut small = cat.builder("small", schema![("id", Int)]);
        for i in 0..10 {
            small.push_row(&[Value::Int(i)]);
        }
        cat.register(small.finish());
        let mut mid = cat.builder("mid", schema![("sid", Int), ("bid", Int)]);
        for i in 0..1000 {
            mid.push_row(&[Value::Int(i % 10), Value::Int(i)]);
        }
        cat.register(mid.finish());
        let mut big = cat.builder("big", schema![("mid_id", Int)]);
        for i in 0..10_000 {
            big.push_row(&[Value::Int(i % 1000)]);
        }
        cat.register(big.finish());
        let udfs = UdfRegistry::new();
        let q = match parse_statement(
            "SELECT small.id FROM small, mid, big \
             WHERE small.id = mid.sid AND mid.bid = big.mid_id",
        )
        .unwrap()
        {
            skinner_query::ast::Statement::Select(s) => bind_select(&s, &cat, &udfs).unwrap(),
            _ => unreachable!(),
        };
        let cache = StatsCache::new();
        let (order, _) = best_left_deep_estimated(&q, &cache);
        // Left-deep from the small end of the chain.
        assert_eq!(order, vec![0, 1, 2]);
    }
}
