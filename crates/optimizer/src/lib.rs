//! Traditional cost-based join-order optimization.
//!
//! This crate is the *baseline* — the thing SkinnerDB does not need. It
//! implements:
//!
//! * [`cost`] — the `C_out` cost metric (sum of intermediate result
//!   cardinalities, Krishnamurthy et al.), which the paper uses both to
//!   define "optimal join orders" in its replay experiments (Tables 3/4)
//!   and as the cost model under which its regret analysis maps to
//!   traditional cost,
//! * [`dp`] — Selinger-style dynamic programming over left-deep join orders
//!   (Cartesian products excluded per the join graph), parameterized by an
//!   arbitrary cardinality function so the same search runs on *estimated*
//!   cardinalities (the traditional optimizer) or on *true* cardinalities
//!   (the "Optimal" rows of Tables 3 and 4).

pub mod cost;
pub mod dp;

pub use cost::cout;
pub use dp::{best_left_deep, best_left_deep_estimated};
