//! Traditional cost-based join-order optimization.
//!
//! This crate is the *baseline* — the thing SkinnerDB does not need. It
//! implements:
//!
//! * [`cost`] — the `C_out` cost metric (sum of intermediate result
//!   cardinalities, Krishnamurthy et al.), which the paper uses both to
//!   define "optimal join orders" in its replay experiments (Tables 3/4)
//!   and as the cost model under which its regret analysis maps to
//!   traditional cost,
//! * [`dp`] — Selinger-style dynamic programming over left-deep join orders
//!   (Cartesian products excluded per the join graph), parameterized by an
//!   arbitrary cardinality function so the same search runs on *estimated*
//!   cardinalities (the traditional optimizer) or on *true* cardinalities
//!   (the "Optimal" rows of Tables 3 and 4),
//! * [`planner`] — the planner half of the binder/planner split: bound
//!   query → [`JoinPlan`] (order + estimated cost), exact DP up to a table
//!   limit with a greedy fallback beyond it. The traditional engine and the
//!   `skinner_h` hybrid strategy both plan through it.

pub mod cost;
pub mod dp;
pub mod planner;

pub use cost::cout;
pub use dp::{best_left_deep, best_left_deep_estimated};
pub use planner::{
    estimated_cout, greedy_left_deep, plan_join_order, plan_query, JoinPlan, PlanMethod,
    PlannerConfig,
};
