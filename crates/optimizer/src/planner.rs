//! The planner half of the binder/planner split.
//!
//! [`bind_select`](skinner_query::bind_select) produces a [`JoinQuery`];
//! this module turns one into a [`JoinPlan`]: a left-deep join order plus
//! its estimated `C_out` cost. Small queries get the exact Selinger DP
//! ([`crate::dp::best_left_deep`]); above [`PlannerConfig::dp_table_limit`]
//! tables the exponential DP is replaced by a greedy construction
//! ([`greedy_left_deep`]) that extends the cheapest eligible table at each
//! step. Both consult the same estimated-cardinality function from
//! `skinner_stats`, so misestimation hits them equally — which is exactly
//! what the `skinner_h` hybrid strategy hedges against.

use skinner_query::{JoinGraph, JoinQuery, TableSet};
use skinner_stats::{Estimator, StatsCache};

use crate::cost::cout;
use crate::dp::best_left_deep;

/// How a [`JoinPlan`]'s order was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMethod {
    /// Exact DP over left-deep orders (optimal under the cardinality
    /// function used).
    Dp,
    /// Greedy cheapest-extension construction (used above the DP table
    /// limit; no optimality guarantee).
    Greedy,
}

/// A planned left-deep join order with its estimated cost.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Table indices, left-most first.
    pub order: Vec<usize>,
    /// Estimated `C_out` of `order` under the planner's cardinality
    /// function.
    pub cost_est: f64,
    pub method: PlanMethod,
}

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Use the exact DP up to this many tables; fall back to
    /// [`greedy_left_deep`] beyond it (the DP enumerates all connected
    /// subsets, exponential in the table count).
    pub dp_table_limit: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { dp_table_limit: 12 }
    }
}

/// Greedy left-deep order under an arbitrary cardinality function: for each
/// possible start table, repeatedly append the eligible (Cartesian-avoiding)
/// table minimizing the extended set's cardinality; return the cheapest of
/// the resulting orders by `C_out`. `O(m³)` cardinality probes.
pub fn greedy_left_deep(
    graph: &JoinGraph,
    mut card: impl FnMut(TableSet) -> f64,
) -> (Vec<usize>, f64) {
    let m = graph.num_tables();
    assert!(m >= 1, "empty query");
    if m == 1 {
        return (vec![0], 0.0);
    }
    let mut best: Option<(Vec<usize>, f64)> = None;
    for start in 0..m {
        let mut order = Vec::with_capacity(m);
        let mut set = TableSet::EMPTY;
        let mut cost = 0.0;
        order.push(start);
        set.insert(start);
        while order.len() < m {
            let mut pick: Option<(usize, f64)> = None;
            for t in graph.eligible_next(set).iter() {
                let c = card(set.with(t));
                // Ties break toward the lowest table index (determinism).
                if pick.is_none_or(|(_, pc)| c < pc) {
                    pick = Some((t, c));
                }
            }
            let (t, c) = pick.expect("eligible_next is never empty mid-order");
            order.push(t);
            set.insert(t);
            cost += c;
        }
        if best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
            best = Some((order, cost));
        }
    }
    best.expect("at least one start table")
}

/// Plan a left-deep order under an arbitrary cardinality function: exact DP
/// up to the config's table limit, greedy beyond it.
pub fn plan_join_order(
    graph: &JoinGraph,
    card: impl FnMut(TableSet) -> f64,
    cfg: &PlannerConfig,
) -> JoinPlan {
    if graph.num_tables() <= cfg.dp_table_limit {
        let (order, cost_est) = best_left_deep(graph, card);
        JoinPlan {
            order,
            cost_est,
            method: PlanMethod::Dp,
        }
    } else {
        let (order, cost_est) = greedy_left_deep(graph, card);
        JoinPlan {
            order,
            cost_est,
            method: PlanMethod::Greedy,
        }
    }
}

/// The traditional planner entry point: estimated cardinalities
/// (independence assumptions, default UDF selectivities) from
/// `skinner_stats` over the bound query's join graph.
pub fn plan_query(query: &JoinQuery, cache: &StatsCache, cfg: &PlannerConfig) -> JoinPlan {
    let graph = query.join_graph();
    let est = Estimator::new(query, cache);
    plan_join_order(&graph, |s| est.join_cardinality(s), cfg)
}

/// `C_out` of an externally chosen order under the same estimated
/// cardinalities the planner uses (for comparing a forced order against the
/// planned one).
pub fn estimated_cout(query: &JoinQuery, cache: &StatsCache, order: &[usize]) -> f64 {
    let est = Estimator::new(query, cache);
    cout(order, |s| est.join_cardinality(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(n, (0..n - 1).map(|i| TableSet::from_iter([i, i + 1])))
    }

    /// Deterministic pseudo-random cardinalities keyed on the subset mask.
    fn pseudo_card(s: TableSet) -> f64 {
        let mut x = s.mask().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        (x % 1000) as f64 + 1.0
    }

    #[test]
    fn greedy_returns_valid_orders() {
        for n in 1..8 {
            let g = chain_graph(n);
            let (order, cost) = greedy_left_deep(&g, pseudo_card);
            assert!(g.validates(&order), "{order:?}");
            assert!((cost - cout(&order, pseudo_card)).abs() < 1e-9);
        }
    }

    #[test]
    fn small_queries_use_dp_large_use_greedy() {
        let cfg = PlannerConfig { dp_table_limit: 4 };
        let small = plan_join_order(&chain_graph(4), pseudo_card, &cfg);
        assert_eq!(small.method, PlanMethod::Dp);
        let large = plan_join_order(&chain_graph(5), pseudo_card, &cfg);
        assert_eq!(large.method, PlanMethod::Greedy);
        assert_eq!(large.order.len(), 5);
    }

    #[test]
    fn dp_cost_is_never_above_greedy_cost() {
        for n in 2..9 {
            let g = chain_graph(n);
            let (_, dp_cost) = best_left_deep(&g, pseudo_card);
            let (_, greedy_cost) = greedy_left_deep(&g, pseudo_card);
            assert!(
                dp_cost <= greedy_cost + 1e-9,
                "n={n}: dp {dp_cost} > greedy {greedy_cost}"
            );
        }
    }

    #[test]
    fn greedy_avoids_cartesian_products_when_connected() {
        // Star: 0 joined to everything else. A greedy order must start
        // anywhere but always stay connected.
        let g = JoinGraph::new(5, (1..5).map(|i| TableSet::from_iter([0, i])));
        let (order, _) = greedy_left_deep(&g, pseudo_card);
        assert!(g.validates(&order), "{order:?}");
    }
}
