//! Property tests for the planner: the Selinger DP against the greedy
//! fallback, relabeling invariance, Cartesian avoidance on connected
//! graphs, and behaviour under misestimated cardinalities.
//!
//! Graphs and cardinality functions are derived deterministically from
//! fuzzed seeds: a spanning tree keeps every graph connected, extra edges
//! and all cardinalities come from a splitmix hash of (seed, subset mask).

use proptest::prelude::*;
use skinner_optimizer::{best_left_deep, cout, greedy_left_deep, plan_join_order, PlannerConfig};
use skinner_query::{JoinGraph, TableSet};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A connected join graph on `n` tables: a random spanning tree (edge from
/// each table `i ≥ 1` to some earlier table) plus random extra edges.
/// Returns the edge list too — `JoinGraph` does not expose it back.
fn connected_graph(n: usize, seed: u64) -> (JoinGraph, Vec<TableSet>) {
    let mut edges = Vec::new();
    for i in 1..n {
        let parent = (splitmix(seed ^ i as u64) % i as u64) as usize;
        edges.push(TableSet::from_iter([parent, i]));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if splitmix(seed ^ ((a * 64 + b) as u64) ^ 0xE0_0E).is_multiple_of(4) {
                edges.push(TableSet::from_iter([a, b]));
            }
        }
    }
    (JoinGraph::new(n, edges.clone()), edges)
}

/// Deterministic pseudo-random cardinality of a table subset in [1, 1000].
fn card_fn(seed: u64) -> impl Fn(TableSet) -> f64 {
    move |s: TableSet| (splitmix(seed ^ s.mask()) % 1000) as f64 + 1.0
}

/// Relative-tolerance float comparison for sums accumulated in different
/// orders.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// The DP is exact over left-deep orders, so it can never be beaten by
    /// the greedy construction under the same cardinality function.
    #[test]
    fn dp_never_worse_than_greedy(n in 2usize..8, seed in any::<u64>()) {
        let (g, _) = connected_graph(n, seed);
        let card = card_fn(seed);
        let (dp_order, dp_cost) = best_left_deep(&g, &card);
        let (greedy_order, greedy_cost) = greedy_left_deep(&g, &card);
        prop_assert!(g.validates(&dp_order), "dp order invalid: {:?}", dp_order);
        prop_assert!(
            dp_cost <= greedy_cost + 1e-6 * greedy_cost.max(1.0),
            "dp {} beat by greedy {} (orders {:?} vs {:?})",
            dp_cost, greedy_cost, dp_order, greedy_order
        );
        // Reported costs are consistent with the C_out of the orders.
        prop_assert!(close(dp_cost, cout(&dp_order, &card)));
        prop_assert!(close(greedy_cost, cout(&greedy_order, &card)));
    }

    /// Relabeling the tables must not change the DP optimum: plan the same
    /// graph under a permutation π with cardinalities pulled back through
    /// π⁻¹ and the optimal cost is identical.
    #[test]
    fn dp_cost_is_permutation_invariant(n in 2usize..8, seed in any::<u64>(), pseed in any::<u64>()) {
        let (g, edges) = connected_graph(n, seed);
        let card = card_fn(seed);

        // Fisher–Yates permutation π from the fuzzed seed.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix(pseed ^ i as u64) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut inv = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }

        // π(G): relabel every predicate edge.
        let edges: Vec<TableSet> = edges
            .iter()
            .map(|e| TableSet::from_iter(e.iter().map(|t| perm[t])))
            .collect();
        let gp = JoinGraph::new(n, edges);
        let card_p = |s: TableSet| card(TableSet::from_iter(s.iter().map(|t| inv[t])));

        let (_, cost) = best_left_deep(&g, &card);
        let (order_p, cost_p) = best_left_deep(&gp, card_p);
        prop_assert!(gp.validates(&order_p));
        prop_assert!(
            close(cost, cost_p),
            "relabeling changed the optimum: {} vs {}", cost, cost_p
        );
    }

    /// On a connected join graph neither planner method ever resorts to a
    /// Cartesian product: every prefix of the order stays connected
    /// (`validates` checks exactly that), at both the DP and greedy ends of
    /// the table-limit threshold.
    #[test]
    fn no_cartesian_products_on_connected_graphs(n in 2usize..8, seed in any::<u64>()) {
        let (g, _) = connected_graph(n, seed);
        let card = card_fn(seed);
        for limit in [0, 64] {
            let plan = plan_join_order(&g, &card, &PlannerConfig { dp_table_limit: limit });
            prop_assert!(
                g.validates(&plan.order),
                "limit {}: {:?}", limit, plan.order
            );
            prop_assert_eq!(plan.order.len(), n);
        }
    }

    /// Misestimation fuzz: plan under multiplicatively noisy estimates and
    /// evaluate the order under the true cardinalities. The planned order is
    /// always valid, its reported cost matches the estimates it was planned
    /// under, and its true cost can never undercut the true optimum (the DP
    /// is exact, so estimate noise can only lose ground, never gain it).
    #[test]
    fn noisy_estimates_degrade_gracefully(n in 2usize..7, seed in any::<u64>(), noise in any::<u64>()) {
        let (g, _) = connected_graph(n, seed);
        let truth = card_fn(seed);
        // Up to ~64× per-subset multiplicative misestimation in both
        // directions — far beyond the independence-assumption errors the
        // estimator commits in practice.
        let est = |s: TableSet| {
            let t = truth(s);
            let bits = splitmix(noise ^ s.mask());
            let factor = 2f64.powi((bits % 13) as i32 - 6);
            (t * factor).max(1.0)
        };

        let planned = plan_join_order(&g, &est, &PlannerConfig::default());
        prop_assert!(g.validates(&planned.order));
        prop_assert!(close(planned.cost_est, cout(&planned.order, &est)));

        let (_, best_true) = best_left_deep(&g, &truth);
        let planned_true = cout(&planned.order, &truth);
        prop_assert!(
            planned_true >= best_true - 1e-6 * best_true.max(1.0),
            "planned order {:?} truly costs {} < optimum {}",
            planned.order, planned_true, best_true
        );
    }
}
