//! Abstract syntax tree produced by the parser; names are unresolved.

use std::fmt;

/// Top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `CREATE TEMP TABLE name AS SELECT …` — used by the decomposed
    /// (un-nested) TPC-H queries, following the paper's note that nested
    /// queries are treated via decomposition.
    CreateTempTable {
        name: String,
        query: SelectStmt,
    },
    /// `DROP TABLE name`.
    DropTable {
        name: String,
    },
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: Vec<TableRef>,
    pub predicate: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<(AstExpr, bool /* ascending */)>,
    pub limit: Option<usize>,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    pub expr: AstExpr,
    pub alias: Option<String>,
}

/// A table in the FROM clause: `name [AS] alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstAgg {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Unresolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `col` or `alias.col`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    Binary {
        op: BinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    /// `x BETWEEN lo AND hi` (inclusive).
    Between {
        expr: Box<AstExpr>,
        lo: Box<AstExpr>,
        hi: Box<AstExpr>,
        negated: bool,
    },
    /// `x LIKE 'pat%'`.
    Like {
        expr: Box<AstExpr>,
        pattern: String,
        negated: bool,
    },
    /// `x IN (v1, v2, …)`.
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    /// `x IN (SELECT col FROM table)` — the sub-select must be a bare
    /// single-column scan; the binder materializes it into a key set.
    InSelect {
        expr: Box<AstExpr>,
        table: String,
        column: String,
        negated: bool,
    },
    /// Function call: UDF or aggregate (disambiguated by the binder from
    /// position — aggregates are only legal in projections).
    Call {
        name: String,
        args: Vec<AstExpr>,
    },
    /// `COUNT(*)`.
    CountStar,
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            AstExpr::IntLit(i) => write!(f, "{i}"),
            AstExpr::FloatLit(x) => write!(f, "{x}"),
            AstExpr::StrLit(s) => write!(f, "'{}'", s.replace('\'', "''")),
            AstExpr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Eq => "=",
                    BinOp::Neq => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                };
                write!(f, "({left} {sym} {right})")
            }
            AstExpr::Not(e) => write!(f, "(NOT {e})"),
            AstExpr::Neg(e) => write!(f, "(-{e})"),
            AstExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} BETWEEN {lo} AND {hi})")
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} LIKE '{pattern}')")
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            AstExpr::InSelect {
                expr,
                table,
                column,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} IN (SELECT {column} FROM {table}))")
            }
            AstExpr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            AstExpr::CountStar => write!(f, "COUNT(*)"),
        }
    }
}

impl AstExpr {
    /// Split a conjunctive predicate into its conjuncts.
    pub fn conjuncts(self) -> Vec<AstExpr> {
        match self {
            AstExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str) -> AstExpr {
        AstExpr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    #[test]
    fn conjunct_splitting_flattens_ands() {
        let e = AstExpr::Binary {
            op: BinOp::And,
            left: Box::new(AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(col("a")),
                right: Box::new(col("b")),
            }),
            right: Box::new(col("c")),
        };
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn ors_are_not_split() {
        let e = AstExpr::Binary {
            op: BinOp::Or,
            left: Box::new(col("a")),
            right: Box::new(col("b")),
        };
        assert_eq!(e.clone().conjuncts(), vec![e]);
    }

    #[test]
    fn display_roundtrips_quotes() {
        let e = AstExpr::StrLit("it's".into());
        assert_eq!(e.to_string(), "'it''s'");
    }
}
