//! Name resolution: AST → bound [`JoinQuery`].
//!
//! The binder also performs the predicate classification the engines rely
//! on: conjuncts of the WHERE clause are split into per-table *unary*
//! predicates (applied during pre-processing, paper Section 3), *equality
//! join* predicates (hash-indexable) and *generic join* predicates (theta /
//! UDF, evaluated tuple-at-a-time).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use skinner_storage::{Catalog, DataType, Table};

use crate::ast::{AstExpr, BinOp, SelectStmt};
use crate::expr::{like_match, ArithOp, CmpOp, ColRef, EvalCtx, Expr, UdfHandle};
use crate::parser::agg_from_name;
use crate::query::{AggFunc, EquiPred, GenericPred, JoinQuery, OrderKey, SelectItem};
use crate::udf::UdfRegistry;

/// Binding error.
#[derive(Debug, Clone, PartialEq)]
pub struct BindError {
    pub message: String,
}

impl BindError {
    fn new(msg: impl Into<String>) -> Self {
        BindError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bind error: {}", self.message)
    }
}

impl std::error::Error for BindError {}

/// Bind `stmt` against `catalog` and `udfs`.
pub fn bind_select(
    stmt: &SelectStmt,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<JoinQuery, BindError> {
    Binder {
        catalog,
        udfs,
        tables: Vec::new(),
        aliases: Vec::new(),
    }
    .bind(stmt)
}

struct Binder<'a> {
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
    tables: Vec<Arc<Table>>,
    aliases: Vec<String>,
}

impl<'a> Binder<'a> {
    fn bind(mut self, stmt: &SelectStmt) -> Result<JoinQuery, BindError> {
        // FROM clause.
        let mut seen = HashSet::new();
        for tr in &stmt.from {
            let table = self
                .catalog
                .get(&tr.table)
                .ok_or_else(|| BindError::new(format!("unknown table {:?}", tr.table)))?;
            let alias = tr
                .alias
                .clone()
                .unwrap_or_else(|| tr.table.clone())
                .to_ascii_lowercase();
            if !seen.insert(alias.clone()) {
                return Err(BindError::new(format!("duplicate table alias {alias:?}")));
            }
            self.tables.push(table);
            self.aliases.push(alias);
        }
        if self.tables.is_empty() {
            return Err(BindError::new("query must reference at least one table"));
        }
        if self.tables.len() > 64 {
            return Err(BindError::new("at most 64 tables per query"));
        }

        // WHERE clause: classify conjuncts.
        let mut unary: Vec<Vec<Expr>> = vec![Vec::new(); self.tables.len()];
        let mut equi_preds = Vec::new();
        let mut generic_preds = Vec::new();
        let mut always_false = false;
        if let Some(pred) = &stmt.predicate {
            for conjunct in pred.clone().conjuncts() {
                let bound = self.bind_expr(&conjunct)?;
                if bound.dtype() == DataType::Str || bound.dtype() == DataType::Float {
                    return Err(BindError::new(format!(
                        "predicate {conjunct} is not boolean"
                    )));
                }
                let tset = bound.table_set();
                match tset.len() {
                    0 => {
                        // Constant: fold now.
                        let ctx = EvalCtx::new(&[], &[], self.catalog.interner());
                        if !bound.eval_bool(&ctx) {
                            always_false = true;
                        }
                    }
                    1 => {
                        let t = tset.iter().next().unwrap();
                        unary[t].push(bound);
                    }
                    _ => {
                        if let Some(ep) = as_equi_pred(&bound) {
                            let lt = self.col_type(ep.left);
                            let rt = self.col_type(ep.right);
                            if lt != rt {
                                return Err(BindError::new(format!(
                                    "equality join between mismatched types {lt} and {rt}"
                                )));
                            }
                            equi_preds.push(ep);
                        } else {
                            generic_preds.push(GenericPred {
                                tables: tset,
                                expr: bound,
                            });
                        }
                    }
                }
            }
        }

        // GROUP BY.
        let mut group_by = Vec::new();
        let mut group_keys: HashSet<String> = HashSet::new();
        for g in &stmt.group_by {
            group_keys.insert(g.to_string());
            group_by.push(self.bind_expr(g)?);
        }

        // Projections.
        let mut select = Vec::new();
        let mut proj_displays: Vec<String> = Vec::new();
        let mut proj_aliases: Vec<Option<String>> = Vec::new();
        if stmt.projections.is_empty() {
            // SELECT *: all columns of all tables in order.
            for (t, table) in self.tables.iter().enumerate() {
                for (c, f) in table.schema().fields().iter().enumerate() {
                    let name = format!("{}.{}", self.aliases[t], f.name);
                    select.push(SelectItem::Expr {
                        expr: Expr::Col(ColRef { table: t, col: c }, f.dtype),
                        name: name.clone(),
                    });
                    proj_displays.push(name);
                    proj_aliases.push(None);
                }
            }
        } else {
            for p in &stmt.projections {
                let name = p
                    .alias
                    .clone()
                    .unwrap_or_else(|| p.expr.to_string())
                    .to_ascii_lowercase();
                let item = self.bind_projection(&p.expr, name.clone())?;
                select.push(item);
                proj_displays.push(p.expr.to_string());
                proj_aliases.push(p.alias.clone().map(|a| a.to_ascii_lowercase()));
            }
        }

        // Grouping validation: with aggregates or GROUP BY present, every
        // plain select item must be a grouping expression.
        let has_agg = select.iter().any(SelectItem::is_aggregate);
        if has_agg || !group_by.is_empty() {
            for (i, item) in select.iter().enumerate() {
                if !item.is_aggregate() && !group_keys.contains(&proj_displays[i]) {
                    return Err(BindError::new(format!(
                        "non-aggregate output {:?} must appear in GROUP BY",
                        proj_displays[i]
                    )));
                }
            }
        }

        // ORDER BY: resolve to output columns (by alias, display text or
        // 1-based ordinal).
        let mut order_by = Vec::new();
        for (e, asc) in &stmt.order_by {
            let idx = self.resolve_output_column(e, &proj_displays, &proj_aliases)?;
            order_by.push(OrderKey {
                output_col: idx,
                asc: *asc,
            });
        }

        Ok(JoinQuery {
            tables: self.tables,
            aliases: self.aliases,
            unary,
            equi_preds,
            generic_preds,
            select,
            group_by,
            order_by,
            limit: stmt.limit,
            distinct: stmt.distinct,
            always_false,
        })
    }

    fn resolve_output_column(
        &self,
        e: &AstExpr,
        displays: &[String],
        aliases: &[Option<String>],
    ) -> Result<usize, BindError> {
        if let AstExpr::IntLit(n) = e {
            let i = *n as usize;
            if i >= 1 && i <= displays.len() {
                return Ok(i - 1);
            }
            return Err(BindError::new(format!("ORDER BY ordinal {n} out of range")));
        }
        if let AstExpr::Column {
            qualifier: None,
            name,
        } = e
        {
            let lname = name.to_ascii_lowercase();
            if let Some(i) = aliases.iter().position(|a| a.as_deref() == Some(&lname)) {
                return Ok(i);
            }
        }
        let d = e.to_string();
        if let Some(i) = displays.iter().position(|x| *x == d) {
            return Ok(i);
        }
        Err(BindError::new(format!(
            "ORDER BY expression {d} does not match any output column"
        )))
    }

    fn bind_projection(&self, e: &AstExpr, name: String) -> Result<SelectItem, BindError> {
        match e {
            AstExpr::CountStar => Ok(SelectItem::Agg {
                func: AggFunc::Count,
                arg: None,
                name,
            }),
            AstExpr::Call { name: fname, args } => {
                if let Some(agg) = agg_from_name(fname) {
                    if args.len() != 1 {
                        return Err(BindError::new(format!(
                            "aggregate {fname} takes exactly one argument"
                        )));
                    }
                    let arg = self.bind_expr(&args[0])?;
                    if !matches!(
                        agg,
                        crate::ast::AstAgg::Count
                            | crate::ast::AstAgg::Min
                            | crate::ast::AstAgg::Max
                    ) && arg.dtype() == DataType::Str
                    {
                        return Err(BindError::new(format!(
                            "aggregate {fname} requires a numeric argument"
                        )));
                    }
                    let func = match agg {
                        crate::ast::AstAgg::Count => AggFunc::Count,
                        crate::ast::AstAgg::Sum => AggFunc::Sum,
                        crate::ast::AstAgg::Min => AggFunc::Min,
                        crate::ast::AstAgg::Max => AggFunc::Max,
                        crate::ast::AstAgg::Avg => AggFunc::Avg,
                    };
                    return Ok(SelectItem::Agg {
                        func,
                        arg: Some(arg),
                        name,
                    });
                }
                Ok(SelectItem::Expr {
                    expr: self.bind_expr(e)?,
                    name,
                })
            }
            _ => Ok(SelectItem::Expr {
                expr: self.bind_expr(e)?,
                name,
            }),
        }
    }

    fn col_type(&self, c: ColRef) -> DataType {
        self.tables[c.table].schema().field(c.col).dtype
    }

    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<(ColRef, DataType), BindError> {
        match qualifier {
            Some(q) => {
                let lq = q.to_ascii_lowercase();
                let t = self
                    .aliases
                    .iter()
                    .position(|a| *a == lq)
                    .ok_or_else(|| BindError::new(format!("unknown table alias {q:?}")))?;
                let col = self.tables[t]
                    .schema()
                    .index_of(name)
                    .ok_or_else(|| BindError::new(format!("table {q:?} has no column {name:?}")))?;
                let dt = self.tables[t].schema().field(col).dtype;
                Ok((ColRef { table: t, col }, dt))
            }
            None => {
                let mut found = None;
                for (t, table) in self.tables.iter().enumerate() {
                    if let Some(col) = table.schema().index_of(name) {
                        if found.is_some() {
                            return Err(BindError::new(format!(
                                "ambiguous column {name:?}; qualify it"
                            )));
                        }
                        found = Some((t, col));
                    }
                }
                let (t, col) =
                    found.ok_or_else(|| BindError::new(format!("unknown column {name:?}")))?;
                let dt = self.tables[t].schema().field(col).dtype;
                Ok((ColRef { table: t, col }, dt))
            }
        }
    }

    fn bind_expr(&self, e: &AstExpr) -> Result<Expr, BindError> {
        match e {
            AstExpr::Column { qualifier, name } => {
                let (c, dt) = self.resolve_column(qualifier.as_deref(), name)?;
                Ok(Expr::Col(c, dt))
            }
            AstExpr::IntLit(i) => Ok(Expr::LitInt(*i)),
            AstExpr::FloatLit(x) => Ok(Expr::LitFloat(*x)),
            AstExpr::StrLit(s) => {
                let code = self.catalog.interner().intern(s);
                Ok(Expr::LitStr {
                    code,
                    text: Arc::from(s.as_str()),
                })
            }
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_expr(left)?;
                let r = self.bind_expr(right)?;
                match op {
                    BinOp::And => Ok(flatten_and(l, r)),
                    BinOp::Or => Ok(flatten_or(l, r)),
                    BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let cmp = match op {
                            BinOp::Eq => CmpOp::Eq,
                            BinOp::Neq => CmpOp::Neq,
                            BinOp::Lt => CmpOp::Lt,
                            BinOp::Le => CmpOp::Le,
                            BinOp::Gt => CmpOp::Gt,
                            BinOp::Ge => CmpOp::Ge,
                            _ => unreachable!(),
                        };
                        let ls = l.dtype() == DataType::Str;
                        let rs = r.dtype() == DataType::Str;
                        if ls != rs {
                            return Err(BindError::new(format!(
                                "cannot compare string with number in {e}"
                            )));
                        }
                        Ok(Expr::Cmp {
                            op: cmp,
                            left: Box::new(l),
                            right: Box::new(r),
                        })
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if l.dtype() == DataType::Str || r.dtype() == DataType::Str {
                            return Err(BindError::new(format!("arithmetic on strings in {e}")));
                        }
                        let ar = match op {
                            BinOp::Add => ArithOp::Add,
                            BinOp::Sub => ArithOp::Sub,
                            BinOp::Mul => ArithOp::Mul,
                            BinOp::Div => ArithOp::Div,
                            BinOp::Mod => ArithOp::Mod,
                            _ => unreachable!(),
                        };
                        Ok(Expr::Arith {
                            op: ar,
                            left: Box::new(l),
                            right: Box::new(r),
                        })
                    }
                }
            }
            AstExpr::Not(inner) => Ok(Expr::Not(Box::new(self.bind_expr(inner)?))),
            AstExpr::Neg(inner) => {
                let b = self.bind_expr(inner)?;
                if b.dtype() == DataType::Str {
                    return Err(BindError::new("cannot negate a string"));
                }
                Ok(Expr::Neg(Box::new(b)))
            }
            AstExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let x = self.bind_expr(expr)?;
                let lo = self.bind_expr(lo)?;
                let hi = self.bind_expr(hi)?;
                let ge = Expr::Cmp {
                    op: CmpOp::Ge,
                    left: Box::new(x.clone()),
                    right: Box::new(lo),
                };
                let le = Expr::Cmp {
                    op: CmpOp::Le,
                    left: Box::new(x),
                    right: Box::new(hi),
                };
                if *negated {
                    Ok(Expr::Not(Box::new(Expr::And(vec![ge, le]))))
                } else {
                    Ok(Expr::And(vec![ge, le]))
                }
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let arg = self.bind_expr(expr)?;
                if arg.dtype() != DataType::Str {
                    return Err(BindError::new("LIKE requires a string argument"));
                }
                // Pre-evaluate the pattern against every interned string.
                // Tables are immutable and loaded before binding, so the
                // bitmap covers every code the argument can produce.
                let interner = self.catalog.interner();
                let n = interner.len();
                let mut matches = Vec::with_capacity(n);
                for code in 0..n as u32 {
                    matches.push(like_match(pattern, &interner.resolve(code)));
                }
                Ok(Expr::LikeSet {
                    arg: Box::new(arg),
                    matches: Arc::new(matches),
                    pattern: Arc::from(pattern.as_str()),
                    negated: *negated,
                })
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let arg = self.bind_expr(expr)?;
                let mut set = HashSet::with_capacity(list.len());
                for item in list {
                    let b = self.bind_expr(item)?;
                    let key = match (&b, arg.dtype()) {
                        (Expr::LitInt(i), DataType::Int) => *i as u64,
                        (Expr::LitInt(i), DataType::Float) => (*i as f64).to_bits(),
                        (Expr::LitFloat(x), DataType::Float) => {
                            let f = if *x == 0.0 { 0.0 } else { *x };
                            f.to_bits()
                        }
                        (Expr::LitStr { code, .. }, DataType::Str) => *code as u64,
                        _ => {
                            return Err(BindError::new(format!(
                                "IN list item {item} incompatible with argument type"
                            )))
                        }
                    };
                    set.insert(key);
                }
                Ok(Expr::InSet {
                    arg: Box::new(arg),
                    set: Arc::new(set),
                    negated: *negated,
                })
            }
            AstExpr::InSelect {
                expr,
                table,
                column,
                negated,
            } => {
                let arg = self.bind_expr(expr)?;
                let inner = self
                    .catalog
                    .get(table)
                    .ok_or_else(|| BindError::new(format!("unknown table {table:?} in IN")))?;
                let col = inner.schema().index_of(column).ok_or_else(|| {
                    BindError::new(format!("table {table:?} has no column {column:?}"))
                })?;
                let dt = inner.schema().field(col).dtype;
                if dt != arg.dtype() {
                    return Err(BindError::new(format!(
                        "IN (SELECT …) type mismatch: {} vs {}",
                        arg.dtype(),
                        dt
                    )));
                }
                let column_data = inner.column(col);
                let mut set = HashSet::with_capacity(inner.num_rows());
                for row in 0..inner.cardinality() {
                    set.insert(column_data.key_at(row));
                }
                Ok(Expr::InSet {
                    arg: Box::new(arg),
                    set: Arc::new(set),
                    negated: *negated,
                })
            }
            AstExpr::Call { name, args } => {
                if agg_from_name(name).is_some() {
                    return Err(BindError::new(format!(
                        "aggregate {name} only allowed at the top level of SELECT"
                    )));
                }
                let id = self
                    .udfs
                    .lookup(name)
                    .ok_or_else(|| BindError::new(format!("unknown function {name:?}")))?;
                let bound: Result<Vec<Expr>, BindError> =
                    args.iter().map(|a| self.bind_expr(a)).collect();
                Ok(Expr::Udf {
                    handle: UdfHandle {
                        name: Arc::from(self.udfs.name(id)),
                        func: self.udfs.func(id),
                        counter: self.udfs.counter(id),
                        ret: self.udfs.return_type(id),
                    },
                    args: bound?,
                })
            }
            AstExpr::CountStar => Err(BindError::new(
                "COUNT(*) only allowed at the top level of SELECT",
            )),
        }
    }
}

fn flatten_and(l: Expr, r: Expr) -> Expr {
    let mut v = Vec::new();
    for e in [l, r] {
        match e {
            Expr::And(mut es) => v.append(&mut es),
            other => v.push(other),
        }
    }
    Expr::And(v)
}

fn flatten_or(l: Expr, r: Expr) -> Expr {
    let mut v = Vec::new();
    for e in [l, r] {
        match e {
            Expr::Or(mut es) => v.append(&mut es),
            other => v.push(other),
        }
    }
    Expr::Or(v)
}

/// Recognize `colA = colB` across two different tables.
fn as_equi_pred(e: &Expr) -> Option<EquiPred> {
    if let Expr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = e
    {
        if let (Expr::Col(a, _), Expr::Col(b, _)) = (left.as_ref(), right.as_ref()) {
            if a.table != b.table {
                return Some(EquiPred {
                    left: *a,
                    right: *b,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::table_set::TableSet;
    use skinner_storage::{schema, Value};

    fn setup() -> (Catalog, UdfRegistry) {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("x", Int), ("name", Str)]);
        a.push_row(&[Value::Int(1), Value::Int(10), Value::from("ann")]);
        a.push_row(&[Value::Int(2), Value::Int(20), Value::from("bob")]);
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("id", Int), ("aid", Int), ("w", Float)]);
        b.push_row(&[Value::Int(7), Value::Int(1), Value::Float(0.5)]);
        cat.register(b.finish());
        let udfs = UdfRegistry::new();
        udfs.register("always_true", |_| Value::from(true));
        (cat, udfs)
    }

    fn bind(sql: &str, cat: &Catalog, udfs: &UdfRegistry) -> Result<JoinQuery, BindError> {
        match parse_statement(sql).unwrap() {
            crate::ast::Statement::Select(s) => bind_select(&s, cat, udfs),
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn classifies_predicates() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE a.x > 5 AND a.id = b.aid AND a.x + b.w > 3",
            &cat,
            &udfs,
        )
        .unwrap();
        assert_eq!(q.unary[0].len(), 1);
        assert_eq!(q.unary[1].len(), 0);
        assert_eq!(q.equi_preds.len(), 1);
        assert_eq!(q.generic_preds.len(), 1);
        assert_eq!(q.generic_preds[0].tables, TableSet::from_iter([0, 1]));
    }

    #[test]
    fn constant_false_detected() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE 1 = 2", &cat, &udfs).unwrap();
        assert!(q.always_false);
        let q = bind("SELECT a.id FROM a WHERE 1 = 1", &cat, &udfs).unwrap();
        assert!(!q.always_false);
    }

    #[test]
    fn star_expansion() {
        let (cat, udfs) = setup();
        let q = bind("SELECT * FROM a, b", &cat, &udfs).unwrap();
        assert_eq!(q.select.len(), 6);
        assert_eq!(q.select[0].name(), "a.id");
        assert_eq!(q.select[5].name(), "b.w");
    }

    #[test]
    fn aggregates_and_grouping() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.x, COUNT(*) AS cnt, SUM(b.w) FROM a, b WHERE a.id = b.aid \
             GROUP BY a.x ORDER BY cnt DESC LIMIT 5",
            &cat,
            &udfs,
        )
        .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by[0].output_col, 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn ungrouped_non_aggregate_rejected() {
        let (cat, udfs) = setup();
        let e = bind("SELECT a.x, COUNT(*) FROM a", &cat, &udfs).unwrap_err();
        assert!(e.message.contains("GROUP BY"), "{e}");
    }

    #[test]
    fn ambiguous_column_rejected() {
        let (cat, udfs) = setup();
        let e = bind("SELECT id FROM a, b", &cat, &udfs).unwrap_err();
        assert!(e.message.contains("ambiguous"), "{e}");
    }

    #[test]
    fn unknown_names_rejected() {
        let (cat, udfs) = setup();
        assert!(bind("SELECT z FROM a", &cat, &udfs).is_err());
        assert!(bind("SELECT a.id FROM nope", &cat, &udfs).is_err());
        assert!(bind("SELECT ghost(a.id) FROM a", &cat, &udfs).is_err());
    }

    #[test]
    fn udf_binds() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a, b WHERE always_true(a.x, b.w)",
            &cat,
            &udfs,
        )
        .unwrap();
        assert_eq!(q.generic_preds.len(), 1);
    }

    #[test]
    fn in_select_materializes_keys() {
        let (cat, udfs) = setup();
        let q = bind(
            "SELECT a.id FROM a WHERE a.id IN (SELECT aid FROM b)",
            &cat,
            &udfs,
        )
        .unwrap();
        match &q.unary[0][0] {
            Expr::InSet { set, .. } => assert_eq!(set.len(), 1),
            other => panic!("expected InSet, got {other:?}"),
        }
    }

    #[test]
    fn like_precomputes_bitmap() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE a.name LIKE 'a%'", &cat, &udfs).unwrap();
        match &q.unary[0][0] {
            Expr::LikeSet { matches, .. } => {
                let ann = cat.interner().lookup("ann").unwrap() as usize;
                let bob = cat.interner().lookup("bob").unwrap() as usize;
                assert!(matches[ann]);
                assert!(!matches[bob]);
            }
            other => panic!("expected LikeSet, got {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_rejected() {
        let (cat, udfs) = setup();
        assert!(bind("SELECT a.id FROM a WHERE a.name = 3", &cat, &udfs).is_err());
        assert!(bind("SELECT a.name + 1 FROM a", &cat, &udfs).is_err());
    }

    #[test]
    fn self_join_with_aliases() {
        let (cat, udfs) = setup();
        let q = bind("SELECT x.id FROM a x, a y WHERE x.id = y.x", &cat, &udfs).unwrap();
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.equi_preds.len(), 1);
    }

    #[test]
    fn order_by_ordinal() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id, a.x FROM a ORDER BY 2", &cat, &udfs).unwrap();
        assert_eq!(q.order_by[0].output_col, 1);
    }

    #[test]
    fn between_desugars() {
        let (cat, udfs) = setup();
        let q = bind("SELECT a.id FROM a WHERE a.x BETWEEN 5 AND 15", &cat, &udfs).unwrap();
        assert!(matches!(&q.unary[0][0], Expr::And(es) if es.len() == 2));
    }
}
