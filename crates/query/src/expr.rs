//! Bound expressions, evaluated against tuple-index vectors.
//!
//! Following the paper's tuple representation (Section 4.5), a "tuple" during
//! join processing is a vector of row indices, one per query table. An
//! expression therefore evaluates against an [`EvalCtx`] holding the table
//! array and the current row-index vector; column accesses materialize single
//! cells on demand — never whole intermediate tuples.
//!
//! Hot paths avoid [`Value`] construction: comparisons dispatch on static
//! types (`i64`/`f64`/interner codes), and equality keys canonicalize to
//! `u64` exactly like [`skinner_storage::Column::key_at`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skinner_storage::{DataType, Interner, RowId, Table, Value};

/// Reference to a column: query-table position + column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub table: usize,
    pub col: usize,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// A bound UDF call site: function pointer plus a shared invocation counter
/// (the paper's Figure 11 counts predicate evaluations).
#[derive(Clone)]
pub struct UdfHandle {
    pub name: Arc<str>,
    pub func: crate::udf::UdfFn,
    pub counter: Arc<AtomicU64>,
    pub ret: DataType,
}

impl std::fmt::Debug for UdfHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Udf({})", self.name)
    }
}

/// Bound expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    Col(ColRef, DataType),
    LitInt(i64),
    LitFloat(f64),
    /// Interned string literal; `code` is the catalog-wide code.
    LitStr {
        code: u32,
        text: Arc<str>,
    },
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Neg(Box<Expr>),
    /// `arg [NOT] IN {canonical keys}` — also backs `IN (SELECT …)` after the
    /// binder materialized the sub-select.
    InSet {
        arg: Box<Expr>,
        set: Arc<HashSet<u64>>,
        negated: bool,
    },
    /// `arg [NOT] LIKE pattern`, pre-evaluated over the interner into a
    /// per-code match bitmap (all candidate strings are interned before
    /// binding since tables are immutable).
    LikeSet {
        arg: Box<Expr>,
        matches: Arc<Vec<bool>>,
        pattern: Arc<str>,
        negated: bool,
    },
    Udf {
        handle: UdfHandle,
        args: Vec<Expr>,
    },
}

/// Evaluation context: the query's tables and the current tuple-index vector.
pub struct EvalCtx<'a> {
    pub tables: &'a [Arc<Table>],
    pub rows: &'a [RowId],
    pub interner: &'a Interner,
}

impl<'a> EvalCtx<'a> {
    pub fn new(tables: &'a [Arc<Table>], rows: &'a [RowId], interner: &'a Interner) -> Self {
        EvalCtx {
            tables,
            rows,
            interner,
        }
    }
}

impl Expr {
    /// Static result type of the expression.
    pub fn dtype(&self) -> DataType {
        match self {
            Expr::Col(_, dt) => *dt,
            Expr::LitInt(_) => DataType::Int,
            Expr::LitFloat(_) => DataType::Float,
            Expr::LitStr { .. } => DataType::Str,
            Expr::Cmp { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::InSet { .. }
            | Expr::LikeSet { .. } => DataType::Int,
            Expr::Arith { op, left, right } => match op {
                ArithOp::Mod => DataType::Int,
                // SQL semantics: Int/Int truncates; anything else floats.
                _ => {
                    if left.dtype() == DataType::Float || right.dtype() == DataType::Float {
                        DataType::Float
                    } else {
                        DataType::Int
                    }
                }
            },
            Expr::Neg(e) => e.dtype(),
            Expr::Udf { handle, .. } => handle.ret,
        }
    }

    /// Set of table positions referenced by this expression.
    pub fn table_set(&self) -> crate::table_set::TableSet {
        let mut s = crate::table_set::TableSet::EMPTY;
        self.visit_cols(&mut |c| s.insert(c.table));
        s
    }

    /// Visit every column reference.
    pub fn visit_cols(&self, f: &mut impl FnMut(ColRef)) {
        match self {
            Expr::Col(c, _) => f(*c),
            Expr::LitInt(_) | Expr::LitFloat(_) | Expr::LitStr { .. } => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.visit_cols(f);
                right.visit_cols(f);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.visit_cols(f);
                }
            }
            Expr::Not(e) | Expr::Neg(e) => e.visit_cols(f),
            Expr::InSet { arg, .. } | Expr::LikeSet { arg, .. } => arg.visit_cols(f),
            Expr::Udf { args, .. } => {
                for a in args {
                    a.visit_cols(f);
                }
            }
        }
    }

    /// General evaluation, producing a [`Value`].
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Value {
        match self.dtype() {
            DataType::Int => Value::Int(self.eval_i64(ctx)),
            DataType::Float => Value::Float(self.eval_f64(ctx)),
            DataType::Str => match self {
                Expr::Col(c, _) => {
                    let code = ctx.tables[c.table].column(c.col).code_at(ctx.rows[c.table]);
                    Value::Str(ctx.interner.resolve(code))
                }
                Expr::LitStr { text, .. } => Value::Str(text.clone()),
                Expr::Udf { .. } => self.eval_udf(ctx),
                other => panic!("string-typed expression {other:?} not evaluable"),
            },
        }
    }

    /// Boolean evaluation with short-circuiting and typed fast paths.
    pub fn eval_bool(&self, ctx: &EvalCtx<'_>) -> bool {
        match self {
            Expr::And(es) => es.iter().all(|e| e.eval_bool(ctx)),
            Expr::Or(es) => es.iter().any(|e| e.eval_bool(ctx)),
            Expr::Not(e) => !e.eval_bool(ctx),
            Expr::Cmp { op, left, right } => {
                let ord = if left.dtype() == DataType::Str || right.dtype() == DataType::Str {
                    match (*op, left.str_code(ctx), right.str_code(ctx)) {
                        // Equality on interned strings: code comparison.
                        (CmpOp::Eq, Some(a), Some(b)) => return a == b,
                        (CmpOp::Neq, Some(a), Some(b)) => return a != b,
                        _ => {
                            let a = left.eval(ctx);
                            let b = right.eval(ctx);
                            match a.compare(&b) {
                                Some(o) => o,
                                None => return false,
                            }
                        }
                    }
                } else if left.dtype() == DataType::Int && right.dtype() == DataType::Int {
                    left.eval_i64(ctx).cmp(&right.eval_i64(ctx))
                } else {
                    match left.eval_f64(ctx).partial_cmp(&right.eval_f64(ctx)) {
                        Some(o) => o,
                        None => return false, // NaN comparisons are false
                    }
                };
                match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Neq => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }
            }
            Expr::InSet { arg, set, negated } => {
                let hit = set.contains(&arg.eval_key(ctx));
                hit != *negated
            }
            Expr::LikeSet {
                arg,
                matches,
                negated,
                ..
            } => {
                let code = arg
                    .str_code(ctx)
                    .expect("LIKE argument must be an interned string");
                let hit = matches.get(code as usize).copied().unwrap_or(false);
                hit != *negated
            }
            Expr::Udf { .. } => self.eval_udf(ctx).as_bool(),
            other => other.eval(ctx).as_bool(),
        }
    }

    /// Canonical `u64` equality key (mirrors `Column::key_at`).
    pub fn eval_key(&self, ctx: &EvalCtx<'_>) -> u64 {
        match self.dtype() {
            DataType::Int => self.eval_i64(ctx) as u64,
            DataType::Float => {
                let f = self.eval_f64(ctx);
                let f = if f == 0.0 { 0.0 } else { f };
                f.to_bits()
            }
            DataType::Str => self
                .str_code(ctx)
                .expect("string expression without a code") as u64,
        }
    }

    /// The interner code of a string-typed expression, if it is directly
    /// code-valued (column or literal). UDFs returning strings fall back to
    /// `None` and force materialized comparison.
    fn str_code(&self, ctx: &EvalCtx<'_>) -> Option<u32> {
        match self {
            Expr::Col(c, DataType::Str) => {
                Some(ctx.tables[c.table].column(c.col).code_at(ctx.rows[c.table]))
            }
            Expr::LitStr { code, .. } => Some(*code),
            _ => None,
        }
    }

    fn eval_i64(&self, ctx: &EvalCtx<'_>) -> i64 {
        match self {
            Expr::Col(c, DataType::Int) => {
                ctx.tables[c.table].column(c.col).int_at(ctx.rows[c.table])
            }
            Expr::LitInt(i) => *i,
            Expr::Arith { op, left, right } => {
                let a = left.eval_i64(ctx);
                let b = right.eval_i64(ctx);
                match op {
                    ArithOp::Add => a.wrapping_add(b),
                    ArithOp::Sub => a.wrapping_sub(b),
                    ArithOp::Mul => a.wrapping_mul(b),
                    ArithOp::Mod => {
                        if b == 0 {
                            0
                        } else {
                            a % b
                        }
                    }
                    ArithOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a / b // SQL integer division truncates
                        }
                    }
                }
            }
            Expr::Neg(e) => -e.eval_i64(ctx),
            Expr::Cmp { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::InSet { .. }
            | Expr::LikeSet { .. } => self.eval_bool(ctx) as i64,
            Expr::Udf { .. } => self.eval_udf(ctx).as_i64().unwrap_or(0),
            other => panic!("eval_i64 on non-int expression {other:?}"),
        }
    }

    fn eval_f64(&self, ctx: &EvalCtx<'_>) -> f64 {
        match self {
            Expr::Col(c, DataType::Str) => panic!("eval_f64 on string column {c:?}"),
            Expr::Col(c, _) => ctx.tables[c.table]
                .column(c.col)
                .float_at(ctx.rows[c.table]),
            Expr::LitInt(i) => *i as f64,
            Expr::LitFloat(x) => *x,
            Expr::Arith { op, left, right } => {
                let a = left.eval_f64(ctx);
                let b = right.eval_f64(ctx);
                match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            0.0
                        } else {
                            a / b
                        }
                    }
                    ArithOp::Mod => {
                        if b == 0.0 {
                            0.0
                        } else {
                            a % b
                        }
                    }
                }
            }
            Expr::Neg(e) => -e.eval_f64(ctx),
            Expr::Udf { .. } => self.eval_udf(ctx).as_f64().unwrap_or(0.0),
            other => other.eval_i64(ctx) as f64,
        }
    }

    fn eval_udf(&self, ctx: &EvalCtx<'_>) -> Value {
        match self {
            Expr::Udf { handle, args } => {
                handle.counter.fetch_add(1, Ordering::Relaxed);
                let vals: Vec<Value> = args.iter().map(|a| a.eval(ctx)).collect();
                (handle.func)(&vals)
            }
            _ => unreachable!(),
        }
    }
}

/// SQL `LIKE` semantics: `%` matches any run, `_` matches one character.
/// Case-sensitive, as in Postgres.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    // Classic two-pointer with backtracking on the last `%`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            ti = star_t;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{schema, Catalog};

    fn fixture() -> (Catalog, Arc<Table>) {
        let cat = Catalog::new();
        let mut b = cat.builder("t", schema![("i", Int), ("f", Float), ("s", Str)]);
        b.push_row(&[Value::Int(10), Value::Float(1.5), Value::from("alpha")]);
        b.push_row(&[Value::Int(20), Value::Float(2.5), Value::from("beta")]);
        let t = cat.register(b.finish());
        (cat, t)
    }

    fn col(table: usize, col_: usize, dt: DataType) -> Expr {
        Expr::Col(ColRef { table, col: col_ }, dt)
    }

    #[test]
    fn typed_comparison_paths() {
        let (cat, t) = fixture();
        let tables = vec![t];
        let rows = vec![0u32];
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let int_lt = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(col(0, 0, DataType::Int)),
            right: Box::new(Expr::LitInt(15)),
        };
        assert!(int_lt.eval_bool(&ctx));
        let float_ge = Expr::Cmp {
            op: CmpOp::Ge,
            left: Box::new(col(0, 1, DataType::Float)),
            right: Box::new(Expr::LitFloat(1.5)),
        };
        assert!(float_ge.eval_bool(&ctx));
    }

    #[test]
    fn string_equality_via_codes() {
        let (cat, t) = fixture();
        let code = cat.interner().lookup("alpha").unwrap();
        let tables = vec![t];
        let rows = vec![0u32];
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let eq = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(0, 2, DataType::Str)),
            right: Box::new(Expr::LitStr {
                code,
                text: Arc::from("alpha"),
            }),
        };
        assert!(eq.eval_bool(&ctx));
    }

    #[test]
    fn string_ordering_resolves() {
        let (cat, t) = fixture();
        let tables = vec![t];
        let rows = vec![1u32]; // "beta"
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let gt = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(col(0, 2, DataType::Str)),
            right: Box::new(Expr::LitStr {
                code: cat.interner().lookup("alpha").unwrap(),
                text: Arc::from("alpha"),
            }),
        };
        assert!(gt.eval_bool(&ctx));
    }

    #[test]
    fn arithmetic_and_div_types() {
        let (cat, t) = fixture();
        let tables = vec![t];
        let rows = vec![1u32];
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(col(0, 0, DataType::Int)),
            right: Box::new(Expr::LitInt(5)),
        };
        assert_eq!(e.eval(&ctx).as_i64(), Some(25));
        // Int/Int truncates (SQL semantics); Float division stays exact.
        let d = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::LitInt(7)),
            right: Box::new(Expr::LitInt(2)),
        };
        assert_eq!(d.dtype(), DataType::Int);
        assert_eq!(d.eval(&ctx).as_i64(), Some(3));
        let f = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::LitFloat(1.0)),
            right: Box::new(Expr::LitInt(2)),
        };
        assert_eq!(f.dtype(), DataType::Float);
        assert_eq!(f.eval(&ctx).as_f64(), Some(0.5));
    }

    #[test]
    fn in_set_semantics() {
        let (cat, t) = fixture();
        let tables = vec![t];
        let rows = vec![0u32];
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let mut set = HashSet::new();
        set.insert(10i64 as u64);
        let e = Expr::InSet {
            arg: Box::new(col(0, 0, DataType::Int)),
            set: Arc::new(set),
            negated: false,
        };
        assert!(e.eval_bool(&ctx));
        let ne = match e {
            Expr::InSet { arg, set, .. } => Expr::InSet {
                arg,
                set,
                negated: true,
            },
            _ => unreachable!(),
        };
        assert!(!ne.eval_bool(&ctx));
    }

    #[test]
    fn udf_counts_calls() {
        let (cat, t) = fixture();
        let reg = crate::udf::UdfRegistry::new();
        let id = reg.register("gt15", |args| Value::from(args[0].as_i64().unwrap() > 15));
        let e = Expr::Udf {
            handle: UdfHandle {
                name: Arc::from("gt15"),
                func: reg.func(id),
                counter: reg.counter(id),
                ret: DataType::Int,
            },
            args: vec![col(0, 0, DataType::Int)],
        };
        let tables = vec![t];
        let ctx0 = EvalCtx::new(&tables, &[0u32], cat.interner());
        let ctx1 = EvalCtx::new(&tables, &[1u32], cat.interner());
        assert!(!e.eval_bool(&ctx0));
        assert!(e.eval_bool(&ctx1));
        assert_eq!(reg.call_count(id), 2);
    }

    #[test]
    fn table_set_collection() {
        let e = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(col(2, 0, DataType::Int)),
            right: Box::new(col(5, 1, DataType::Int)),
        };
        let s = e.table_set();
        assert!(s.contains(2) && s.contains(5));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn like_match_cases() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("a%", "abc"));
        assert!(!like_match("a%", "bac"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abcd"));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("a%%c", "ac"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
        assert!(like_match("%special%", "a special day"));
    }

    #[test]
    fn short_circuit_and_or() {
        let (cat, t) = fixture();
        let tables = vec![t];
        let rows = vec![0u32];
        let ctx = EvalCtx::new(&tables, &rows, cat.interner());
        let f = Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::LitInt(1)),
            right: Box::new(Expr::LitInt(2)),
        };
        let tr = Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(Expr::LitInt(1)),
            right: Box::new(Expr::LitInt(2)),
        };
        assert!(!Expr::And(vec![f.clone(), tr.clone()]).eval_bool(&ctx));
        assert!(Expr::Or(vec![f.clone(), tr.clone()]).eval_bool(&ctx));
        assert!(Expr::Not(Box::new(f)).eval_bool(&ctx));
    }
}
