//! Join graphs.
//!
//! The UCT search space (paper Section 4.2) excludes join orders that
//! introduce *avoidable* Cartesian products: the next table must be connected
//! by a join predicate to an already-selected table — unless no remaining
//! table is connected, in which case all remaining tables become eligible.
//! [`JoinGraph::eligible_next`] implements exactly that rule.

use crate::table_set::TableSet;

/// Undirected connectivity between the tables of one query, derived from
/// equality and generic join predicates.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n: usize,
    /// `adj[i]` = tables sharing a join predicate with table `i`.
    adj: Vec<TableSet>,
}

impl JoinGraph {
    /// Build from predicate table-sets: every pair of tables inside one
    /// predicate's table set is connected.
    pub fn new(num_tables: usize, predicate_sets: impl IntoIterator<Item = TableSet>) -> Self {
        let mut adj = vec![TableSet::EMPTY; num_tables];
        for set in predicate_sets {
            let members: Vec<usize> = set.iter().collect();
            for (k, &a) in members.iter().enumerate() {
                for &b in &members[k + 1..] {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
        JoinGraph { n: num_tables, adj }
    }

    pub fn num_tables(&self) -> usize {
        self.n
    }

    /// Tables adjacent to `i`.
    pub fn neighbors(&self, i: usize) -> TableSet {
        self.adj[i]
    }

    /// Tables eligible as the next join-order position, given the already
    /// `selected` set. Empty `selected` means any table may start the order.
    pub fn eligible_next(&self, selected: TableSet) -> TableSet {
        let all = TableSet::first_n(self.n);
        let remaining = all.difference(&selected);
        if selected.is_empty() {
            return remaining;
        }
        let mut connected = TableSet::EMPTY;
        for t in selected.iter() {
            connected = connected.union(&self.adj[t]);
        }
        let connected_remaining = connected.intersection(&remaining);
        if connected_remaining.is_empty() {
            // Cartesian product unavoidable: everything remaining is allowed.
            remaining
        } else {
            connected_remaining
        }
    }

    /// True if `order` is a valid complete join order under the eligibility
    /// rule (used to validate externally supplied join-order hints).
    pub fn validates(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut selected = TableSet::EMPTY;
        for &t in order {
            if t >= self.n || selected.contains(t) {
                return false;
            }
            if !self.eligible_next(selected).contains(t) {
                return false;
            }
            selected.insert(t);
        }
        true
    }

    /// All valid join orders (for small queries; used by the exhaustive
    /// optimizer and by tests).
    pub fn all_orders(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(self.n);
        self.enumerate(TableSet::EMPTY, &mut prefix, &mut out);
        out
    }

    fn enumerate(&self, selected: TableSet, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == self.n {
            out.push(prefix.clone());
            return;
        }
        for t in self.eligible_next(selected).iter() {
            prefix.push(t);
            self.enumerate(selected.with(t), prefix, out);
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0–1–2.
    fn chain3() -> JoinGraph {
        JoinGraph::new(
            3,
            [TableSet::from_iter([0, 1]), TableSet::from_iter([1, 2])],
        )
    }

    #[test]
    fn eligibility_follows_connectivity() {
        let g = chain3();
        assert_eq!(
            g.eligible_next(TableSet::EMPTY),
            TableSet::from_iter([0, 1, 2])
        );
        assert_eq!(
            g.eligible_next(TableSet::singleton(0)),
            TableSet::singleton(1)
        );
        assert_eq!(
            g.eligible_next(TableSet::singleton(1)),
            TableSet::from_iter([0, 2])
        );
    }

    #[test]
    fn cartesian_fallback_when_disconnected() {
        // Two disconnected components {0,1} and {2}.
        let g = JoinGraph::new(3, [TableSet::from_iter([0, 1])]);
        // After joining 0 and 1, only 2 remains — allowed despite no edge.
        assert_eq!(
            g.eligible_next(TableSet::from_iter([0, 1])),
            TableSet::singleton(2)
        );
        // After just 0: connected remaining is {1}.
        assert_eq!(
            g.eligible_next(TableSet::singleton(0)),
            TableSet::singleton(1)
        );
    }

    #[test]
    fn chain_orders_enumeration() {
        let g = chain3();
        let orders = g.all_orders();
        // Chain of 3: 0-1-2, 1-0-2, 1-2-0, 2-1-0 are the non-Cartesian orders.
        assert_eq!(orders.len(), 4);
        for o in &orders {
            assert!(g.validates(o));
        }
        assert!(!g.validates(&[0, 2, 1])); // Cartesian 0×2 while 1 available
    }

    #[test]
    fn star_orders_must_start_adjacent_to_hub() {
        // Star: hub 0 connected to 1, 2, 3.
        let g = JoinGraph::new(
            4,
            [
                TableSet::from_iter([0, 1]),
                TableSet::from_iter([0, 2]),
                TableSet::from_iter([0, 3]),
            ],
        );
        let orders = g.all_orders();
        // Starting from a leaf, second table must be the hub.
        for o in &orders {
            if o[0] != 0 {
                assert_eq!(o[1], 0, "leaf start must join hub next: {o:?}");
            }
        }
        // Hub first: 3! orders; each leaf first: 2! orders each => 6 + 3*2.
        assert_eq!(orders.len(), 12);
    }

    #[test]
    fn generic_predicate_connects_multiple_tables() {
        let g = JoinGraph::new(3, [TableSet::from_iter([0, 1, 2])]);
        assert_eq!(g.neighbors(0), TableSet::from_iter([1, 2]));
        assert_eq!(g.all_orders().len(), 6);
    }

    #[test]
    fn validates_rejects_duplicates_and_short_orders() {
        let g = chain3();
        assert!(!g.validates(&[0, 1]));
        assert!(!g.validates(&[0, 0, 1]));
        assert!(!g.validates(&[0, 1, 5]));
    }
}
