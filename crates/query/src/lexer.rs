//! SQL tokenizer.
//!
//! Supports exactly the lexical surface the SkinnerDB workloads need:
//! identifiers (optionally dotted), single-quoted string literals with `''`
//! escaping, integer and decimal numbers, comparison and arithmetic
//! operators, parentheses, commas and semicolons. Keywords are recognized
//! case-insensitively by the parser, not the lexer.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword, original case preserved.
    Ident(String),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal.
    Float(f64),
    /// Operators and punctuation.
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Lexer error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input`; comments (`-- …\n`) and whitespace are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        offset: start,
                        message: format!("bad float {text:?}: {e}"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let text = &input[start..i];
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        offset: start,
                        message: format!("bad integer {text:?}: {e}"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Ge);
                    i += 2;
                }
                _ => {
                    out.push(Token::Gt);
                    i += 1;
                }
            },
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Neq);
                i += 2;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let toks = tokenize("SELECT a.x FROM t AS a WHERE a.x >= 10").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Int(10)));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers_int_and_float() {
        let toks = tokenize("1 2.5 3.00").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Float(2.5), Token::Float(3.0)]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- comment\n 1").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn operators() {
        let toks = tokenize("<> != <= >= < > = + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Neq,
                Token::Neq,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        let e = tokenize("a ? b").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn minus_vs_comment() {
        // A single minus is an operator; two minuses start a comment.
        let toks = tokenize("1 - 2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Minus, Token::Int(2)]);
        let toks = tokenize("1 --2").unwrap();
        assert_eq!(toks, vec![Token::Int(1)]);
    }
}
