//! Query frontend and intermediate representation.
//!
//! This crate turns SQL text into the bound representation every SkinnerDB
//! engine consumes:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a hand-written frontend for the SQL
//!   subset the paper's workloads need (SPJ blocks with conjunctive
//!   predicates, aggregates, `GROUP BY`, `ORDER BY`, `LIMIT`, `IN`
//!   sub-selects over materialized temp tables, `LIKE`, `BETWEEN`, UDF
//!   calls),
//! * [`expr`] — bound expressions evaluated against `(tables, row-ids)`
//!   tuples, matching the paper's index-vector tuple representation,
//! * [`query`] — the bound [`query::JoinQuery`]: per-table unary predicates,
//!   equality join predicates, generic (theta/UDF) join predicates, and the
//!   post-processing spec (select/group/order/limit),
//! * [`graph`] — the join graph used to exclude Cartesian products from the
//!   join-order search space (paper Section 4.2),
//! * [`udf`] — the user-defined-function registry; UDFs are black boxes for
//!   the traditional optimizer, exactly as in the paper's UDF benchmarks,
//! * [`binder`] — name resolution from AST to bound IR,
//! * [`template`] — query canonicalization into template keys (literals and
//!   aliases normalized), the identity cross-query learning caches under.

pub mod ast;
pub mod binder;
pub mod expr;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod query;
pub mod table_set;
pub mod template;
pub mod udf;

pub use binder::{bind_select, BindError};
pub use expr::{ColRef, EvalCtx, Expr};
pub use graph::JoinGraph;
pub use parser::{parse_statement, parse_statements, ParseError};
pub use query::{AggFunc, EquiPred, GenericPred, JoinQuery, OrderKey, SelectItem, SortOrder};
pub use table_set::TableSet;
pub use template::{template_features, template_key, TemplateFeatures};
pub use udf::{UdfId, UdfRegistry};
