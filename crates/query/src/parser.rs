//! Recursive-descent parser for the SkinnerDB SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! script    := statement (';' statement)* ';'?
//! statement := select
//!            | CREATE [TEMP] TABLE ident AS select
//!            | DROP TABLE ident
//! select    := SELECT [DISTINCT] (∗ | proj (',' proj)*) FROM tableref (',' tableref)*
//!              [WHERE expr] [GROUP BY expr (',' expr)*]
//!              [ORDER BY expr [ASC|DESC] (',' …)*] [LIMIT int]
//! proj      := expr [[AS] ident]
//! tableref  := ident [[AS] ident]
//! expr      := or-precedence expression with NOT, comparisons, BETWEEN,
//!              [NOT] LIKE, [NOT] IN (list | SELECT col FROM table),
//!              arithmetic, function calls, COUNT(*)
//! ```
//!
//! `SELECT *` parses to an empty projection list; the binder expands it.

use std::fmt;

use crate::ast::{AstAgg, AstExpr, BinOp, Projection, SelectStmt, Statement, TableRef};
use crate::lexer::{tokenize, LexError, Token};

/// Parse error (includes lexer errors).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a single statement.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_statements(sql)?;
    if stmts.len() != 1 {
        return Err(ParseError {
            message: format!("expected exactly one statement, found {}", stmts.len()),
        });
    }
    Ok(stmts.pop().unwrap())
}

/// Parse a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_token(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_token(&Token::Semicolon) {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> ParseError {
        let ctx = match self.peek() {
            Some(t) => format!("{msg} (at {t:?})"),
            None => format!("{msg} (at end of input)"),
        };
        ParseError { message: ctx }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {t:?}")))
        }
    }

    /// Consume `kw` if the next token is that keyword (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            self.eat_kw("TEMP");
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select()?;
            return Ok(Statement::CreateTempTable { name, query });
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        Err(self.err("expected SELECT, CREATE or DROP"))
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = Vec::new();
        if self.eat_token(&Token::Star) {
            // `SELECT *`: empty projection list, expanded by the binder.
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Bare alias, unless it is a clause keyword.
                    let is_kw = ["FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "AND", "OR"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k));
                    if is_kw {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                projections.push(Projection { expr, alias });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(s)) = self.peek() {
                let is_kw = ["WHERE", "GROUP", "ORDER", "LIMIT"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k));
                if is_kw {
                    None
                } else {
                    Some(self.ident()?)
                }
            } else {
                None
            };
            from.push(TableRef { table, alias });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_kw("NOT") {
            let e = self.not_expr()?;
            return Ok(AstExpr::Not(Box::new(e)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr, ParseError> {
        let left = self.additive()?;
        // BETWEEN / LIKE / IN (optionally negated)
        let negated = if self.peek_kw("NOT")
            && matches!(self.peek2(), Some(Token::Ident(s))
                if s.eq_ignore_ascii_case("BETWEEN")
                    || s.eq_ignore_ascii_case("LIKE")
                    || s.eq_ignore_ascii_case("IN"))
        {
            self.eat_kw("NOT");
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                _ => return Err(self.err("expected string literal after LIKE")),
            };
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen)?;
            if self.peek_kw("SELECT") {
                self.expect_kw("SELECT")?;
                let column = self.ident()?;
                self.expect_kw("FROM")?;
                let table = self.ident()?;
                self.expect_token(&Token::RParen)?;
                return Ok(AstExpr::InSelect {
                    expr: Box::new(left),
                    table,
                    column,
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, LIKE or IN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::Neq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_token(&Token::Minus) {
            let e = self.unary()?;
            return Ok(AstExpr::Neg(Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(AstExpr::IntLit(i)),
            Some(Token::Float(x)) => Ok(AstExpr::FloatLit(x)),
            Some(Token::Str(s)) => Ok(AstExpr::StrLit(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    if name.eq_ignore_ascii_case("COUNT") && self.eat_token(&Token::Star) {
                        self.expect_token(&Token::RParen)?;
                        return Ok(AstExpr::CountStar);
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_token(&Token::RParen)?;
                    return Ok(AstExpr::Call { name, args });
                }
                if self.eat_token(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("unexpected token {other:?} in expression")))
            }
        }
    }
}

/// Map a recognized aggregate name to its enum (used by the binder).
pub fn agg_from_name(name: &str) -> Option<AstAgg> {
    if name.eq_ignore_ascii_case("COUNT") {
        Some(AstAgg::Count)
    } else if name.eq_ignore_ascii_case("SUM") {
        Some(AstAgg::Sum)
    } else if name.eq_ignore_ascii_case("MIN") {
        Some(AstAgg::Min)
    } else if name.eq_ignore_ascii_case("MAX") {
        Some(AstAgg::Max)
    } else if name.eq_ignore_ascii_case("AVG") {
        Some(AstAgg::Avg)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("SELECT a FROM t");
        assert_eq!(s.projections.len(), 1);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].table, "t");
        assert!(s.predicate.is_none());
    }

    #[test]
    fn select_star() {
        let s = sel("SELECT * FROM t");
        assert!(s.projections.is_empty());
    }

    #[test]
    fn qualified_columns_and_aliases() {
        let s = sel("SELECT x.a AS alpha, y.b beta FROM t1 AS x, t2 y");
        assert_eq!(s.projections[0].alias.as_deref(), Some("alpha"));
        assert_eq!(s.projections[1].alias.as_deref(), Some("beta"));
        assert_eq!(s.from[0].alias.as_deref(), Some("x"));
        assert_eq!(s.from[1].alias.as_deref(), Some("y"));
    }

    #[test]
    fn where_precedence_and_or() {
        let s = sel("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
        // OR is the root; AND binds tighter.
        match s.predicate.unwrap() {
            AstExpr::Binary { op: BinOp::Or, .. } => {}
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn between_like_in() {
        let s = sel(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' AND c IN (1, 2, 3) \
             AND d NOT IN (SELECT k FROM tmp)",
        );
        let cs = s.predicate.unwrap().conjuncts();
        assert_eq!(cs.len(), 4);
        assert!(matches!(cs[0], AstExpr::Between { .. }));
        assert!(matches!(cs[1], AstExpr::Like { .. }));
        assert!(matches!(cs[2], AstExpr::InList { .. }));
        assert!(matches!(cs[3], AstExpr::InSelect { negated: true, .. }));
    }

    #[test]
    fn group_order_limit() {
        let s = sel("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a DESC, COUNT(*) ASC LIMIT 10");
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1); // DESC
        assert!(s.order_by[1].1); // ASC
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT a + b * c FROM t");
        match &s.projections[0].expr {
            AstExpr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. }))
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn function_calls_and_count_star() {
        let s = sel("SELECT SUM(a * 2), COUNT(*), my_udf(a, b) FROM t");
        assert!(matches!(s.projections[0].expr, AstExpr::Call { .. }));
        assert!(matches!(s.projections[1].expr, AstExpr::CountStar));
        assert!(
            matches!(&s.projections[2].expr, AstExpr::Call { name, args } if name == "my_udf" && args.len() == 2)
        );
    }

    #[test]
    fn create_and_drop() {
        let stmts =
            parse_statements("CREATE TEMP TABLE x AS SELECT a FROM t; DROP TABLE x;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(stmts[0], Statement::CreateTempTable { .. }));
        assert!(matches!(stmts[1], Statement::DropTable { .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse_statement("SELECT * FROM t WHERE +").unwrap_err();
        assert!(e.message.contains("unexpected"), "{e}");
        let e = parse_statement("SELECT a").unwrap_err();
        assert!(e.message.contains("FROM"), "{e}");
    }

    #[test]
    fn not_between() {
        let s = sel("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2");
        assert!(matches!(
            s.predicate.unwrap(),
            AstExpr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn unary_minus() {
        let s = sel("SELECT -a + 3 FROM t");
        assert!(matches!(
            s.projections[0].expr,
            AstExpr::Binary { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn agg_name_mapping() {
        assert_eq!(agg_from_name("sum"), Some(AstAgg::Sum));
        assert_eq!(agg_from_name("AVG"), Some(AstAgg::Avg));
        assert_eq!(agg_from_name("nope"), None);
    }
}
