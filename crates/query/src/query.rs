//! The bound query representation shared by every engine.

use std::sync::Arc;

use skinner_storage::{DataType, Table};

use crate::expr::{ColRef, Expr};
use crate::graph::JoinGraph;
use crate::table_set::TableSet;

/// Equality join predicate between two columns of different tables. Split
/// out from generic predicates because every engine fast-paths it: hash
/// indexes, hash joins, and the multi-way join's index "jumps".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquiPred {
    pub left: ColRef,
    pub right: ColRef,
}

impl EquiPred {
    /// The two tables this predicate connects, as a set.
    pub fn table_set(&self) -> TableSet {
        TableSet::from_iter([self.left.table, self.right.table])
    }

    /// The column of this predicate on table `t`, if any.
    pub fn side_on(&self, t: usize) -> Option<ColRef> {
        if self.left.table == t {
            Some(self.left)
        } else if self.right.table == t {
            Some(self.right)
        } else {
            None
        }
    }

    /// The column of the *other* side relative to table `t`.
    pub fn other_side(&self, t: usize) -> Option<ColRef> {
        if self.left.table == t {
            Some(self.right)
        } else if self.right.table == t {
            Some(self.left)
        } else {
            None
        }
    }
}

/// Non-equality join predicate (theta comparison, UDF, boolean combination)
/// spanning `tables`.
#[derive(Debug, Clone)]
pub struct GenericPred {
    pub tables: TableSet,
    pub expr: Expr,
}

/// Aggregate functions supported by the post-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One output column of the query.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// Plain expression over join-result tuples (must be a grouping key if
    /// the query aggregates).
    Expr { expr: Expr, name: String },
    /// Aggregate; `arg` is `None` only for `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Expr>,
        name: String,
    },
}

impl SelectItem {
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Expr { name, .. } => name,
            SelectItem::Agg { name, .. } => name,
        }
    }

    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::Agg { .. })
    }
}

/// Sort key over *output* columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    pub output_col: usize,
    pub asc: bool,
}

/// Sort direction alias used by harness code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// A fully bound SPJ(+GA) query: the input to every evaluation strategy.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Base tables in FROM order. Table *positions* in all predicates and
    /// expressions refer to this vector.
    pub tables: Vec<Arc<Table>>,
    /// Display aliases, parallel to `tables`.
    pub aliases: Vec<String>,
    /// Per-table unary conjuncts, applied by pre-processing.
    pub unary: Vec<Vec<Expr>>,
    /// Equality join predicates.
    pub equi_preds: Vec<EquiPred>,
    /// Other join predicates.
    pub generic_preds: Vec<GenericPred>,
    /// Output columns.
    pub select: Vec<SelectItem>,
    /// Grouping expressions (subset semantics: every non-aggregate select
    /// item must appear here; the binder enforces it).
    pub group_by: Vec<Expr>,
    /// Ordering over output columns.
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub distinct: bool,
    /// Set when a constant conjunct folded to FALSE; the result is empty
    /// regardless of data.
    pub always_false: bool,
}

impl JoinQuery {
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// True if any select item aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.select.iter().any(SelectItem::is_aggregate)
    }

    /// Join graph over this query's predicates (equality + generic).
    pub fn join_graph(&self) -> JoinGraph {
        let sets = self
            .equi_preds
            .iter()
            .map(EquiPred::table_set)
            .chain(self.generic_preds.iter().map(|p| p.tables));
        JoinGraph::new(self.tables.len(), sets)
    }

    /// Equality predicates that involve table `t`.
    pub fn equi_preds_on(&self, t: usize) -> impl Iterator<Item = &EquiPred> + '_ {
        self.equi_preds
            .iter()
            .filter(move |p| p.left.table == t || p.right.table == t)
    }

    /// Columns of table `t` that appear in some equality join predicate —
    /// the columns pre-processing builds hash indexes on (paper Section 4.5).
    pub fn equi_join_columns(&self, t: usize) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .equi_preds_on(t)
            .filter_map(|p| p.side_on(t))
            .map(|c| c.col)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Data type of a column reference.
    pub fn col_type(&self, c: ColRef) -> DataType {
        self.tables[c.table].schema().field(c.col).dtype
    }

    /// Output column types, derivable without executing (used to build the
    /// schema of materialized temp tables for decomposed queries).
    pub fn output_types(&self) -> Vec<DataType> {
        self.select
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, .. } => expr.dtype(),
                SelectItem::Agg { func, arg, .. } => match func {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        arg.as_ref().map(|a| a.dtype()).unwrap_or(DataType::Int)
                    }
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_pred_sides() {
        let p = EquiPred {
            left: ColRef { table: 0, col: 3 },
            right: ColRef { table: 2, col: 1 },
        };
        assert_eq!(p.table_set(), TableSet::from_iter([0, 2]));
        assert_eq!(p.side_on(0), Some(ColRef { table: 0, col: 3 }));
        assert_eq!(p.other_side(0), Some(ColRef { table: 2, col: 1 }));
        assert_eq!(p.side_on(1), None);
    }

    #[test]
    fn select_item_names() {
        let item = SelectItem::Agg {
            func: AggFunc::Count,
            arg: None,
            name: "cnt".into(),
        };
        assert_eq!(item.name(), "cnt");
        assert!(item.is_aggregate());
    }
}
