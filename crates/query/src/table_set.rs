//! Compact sets of query-table positions.
//!
//! Queries join at most 64 tables (the paper's largest benchmark query joins
//! 17), so a `u64` bitset suffices. Table *positions* index into
//! [`crate::query::JoinQuery::tables`], not catalog names.

use std::fmt;

/// Set of table positions within one query, as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TableSet(u64);

impl TableSet {
    pub const EMPTY: TableSet = TableSet(0);

    /// Set containing the single position `i` (`i < 64`).
    pub fn singleton(i: usize) -> Self {
        debug_assert!(i < 64);
        TableSet(1 << i)
    }

    /// Set containing positions `0..n`.
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 |= 1 << i;
    }

    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1 << i);
    }

    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    #[inline]
    pub fn is_subset_of(&self, other: &TableSet) -> bool {
        self.0 & other.0 == self.0
    }

    #[inline]
    pub fn intersects(&self, other: &TableSet) -> bool {
        self.0 & other.0 != 0
    }

    pub fn union(&self, other: &TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    pub fn intersection(&self, other: &TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    pub fn difference(&self, other: &TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    pub fn with(&self, i: usize) -> TableSet {
        TableSet(self.0 | (1 << i))
    }

    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Raw mask; used as a dense `HashMap` key by the DP optimizer.
    pub fn mask(&self) -> u64 {
        self.0
    }

    pub fn from_mask(mask: u64) -> Self {
        TableSet(mask)
    }
}

impl fmt::Debug for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for TableSet {
    fn from_iter<I: IntoIterator<Item = usize>>(it: I) -> Self {
        let mut s = TableSet::EMPTY;
        for i in it {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = TableSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(10);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
    }

    #[test]
    fn subset_and_union() {
        let a = TableSet::from_iter([1, 2]);
        let b = TableSet::from_iter([1, 2, 5]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.union(&b), b);
        assert_eq!(a.intersection(&b), a);
        assert_eq!(b.difference(&a), TableSet::singleton(5));
    }

    #[test]
    fn iter_ascending() {
        let s = TableSet::from_iter([9, 0, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 4, 9]);
    }

    #[test]
    fn first_n_edges() {
        assert_eq!(TableSet::first_n(0), TableSet::EMPTY);
        assert_eq!(TableSet::first_n(3).len(), 3);
        assert_eq!(TableSet::first_n(64).len(), 64);
    }

    #[test]
    fn debug_format() {
        let s = TableSet::from_iter([2, 0]);
        assert_eq!(format!("{s:?}"), "{0,2}");
    }
}
