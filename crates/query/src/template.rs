//! Query canonicalization: map a bound [`JoinQuery`] to a *template key*.
//!
//! Under a serving workload the same query shapes recur constantly with
//! different literals — `WHERE d.year = 1995` today, `= 1996` tomorrow —
//! and SkinnerDB's per-query learning would start every one of them from a
//! cold UCT tree. The template key is the identity that cross-query
//! learning caches under: two queries share a key exactly when they have
//! the same *join-order learning problem*, i.e. the same tables, the same
//! predicate structure and the same output shape, regardless of
//!
//! * literal values (`LitInt`/`LitFloat`/`LitStr`, `IN` sets, `LIKE`
//!   patterns, `LIMIT` counts all normalize to `?`), and
//! * table aliases (`movies m` vs `movies mv` — the bound query refers to
//!   tables by position, so alias spellings never enter the key).
//!
//! Table *names* do enter the key, but name collisions across
//! drop/recreate are handled one level up: the tree cache stores each
//! template's table [`uid`](skinner_storage::Table::uid)s and invalidates
//! on mismatch (the same discipline the statistics cache uses).
//!
//! The key is a plain `String` rather than a hash so cache contents stay
//! debuggable (`SHOW SERVER STATS` counts, test failures, logs); it is
//! deterministic across processes and runs.

use crate::expr::Expr;
use crate::query::{AggFunc, JoinQuery, SelectItem};

/// Canonical template key of a bound query. Stable across literal values
/// and alias spellings; distinct across table sets, predicate structure,
/// select/group/order shape.
pub fn template_key(query: &JoinQuery) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("from(");
    for (i, t) in query.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(t.name());
    }
    out.push(')');

    for (t, conjuncts) in query.unary.iter().enumerate() {
        if conjuncts.is_empty() {
            continue;
        }
        out.push_str(&format!(";unary{t}("));
        for (i, e) in conjuncts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            expr_template(e, &mut out);
        }
        out.push(')');
    }

    if !query.equi_preds.is_empty() {
        out.push_str(";equi(");
        for (i, p) in query.equi_preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "t{}.{}=t{}.{}",
                p.left.table, p.left.col, p.right.table, p.right.col
            ));
        }
        out.push(')');
    }

    if !query.generic_preds.is_empty() {
        out.push_str(";theta(");
        for (i, p) in query.generic_preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            expr_template(&p.expr, &mut out);
        }
        out.push(')');
    }

    out.push_str(";select(");
    for (i, item) in query.select.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            SelectItem::Expr { expr, .. } => expr_template(expr, &mut out),
            SelectItem::Agg { func, arg, .. } => {
                out.push_str(agg_name(*func));
                out.push('(');
                match arg {
                    Some(a) => expr_template(a, &mut out),
                    None => out.push('*'),
                }
                out.push(')');
            }
        }
    }
    out.push(')');

    if !query.group_by.is_empty() {
        out.push_str(";group(");
        for (i, e) in query.group_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            expr_template(e, &mut out);
        }
        out.push(')');
    }
    if !query.order_by.is_empty() {
        out.push_str(";order(");
        for (i, k) in query.order_by.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}{}",
                k.output_col,
                if k.asc { 'a' } else { 'd' }
            ));
        }
        out.push(')');
    }
    // LIMIT counts are literals: presence shapes post-processing, the
    // value does not change the join-order learning problem.
    if query.limit.is_some() {
        out.push_str(";limit(?)");
    }
    if query.distinct {
        out.push_str(";distinct");
    }
    out
}

/// Structural join-graph features of a bound query — the coarse,
/// literal-free shape the learning cache uses to find a *nearest-neighbor*
/// template when the exact [`template_key`] has never been seen. Two
/// queries with equal features are not necessarily the same learning
/// problem (the key still decides that); features only rank how plausible
/// it is that one template's join-order knowledge transfers to another.
///
/// Cardinality buckets are deliberately *not* part of this struct: table
/// sizes are a property of the data, not the query text, so the cache
/// layer derives them per lookup (via `skinner_stats::card_bucket`) from
/// the live tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateFeatures {
    /// Lowercased FROM-clause table names, in join order.
    pub tables: Vec<String>,
    /// Unary (single-table) predicate conjunct count per FROM position.
    pub unary_counts: Vec<u16>,
    /// Number of equi-join predicates.
    pub n_equi: u16,
    /// Number of generic (theta) join predicates.
    pub n_theta: u16,
    /// Number of select-list items.
    pub n_select: u16,
    pub has_group: bool,
    pub has_order: bool,
    pub distinct: bool,
    pub limited: bool,
}

/// Extract the [`TemplateFeatures`] of a bound query.
pub fn template_features(query: &JoinQuery) -> TemplateFeatures {
    TemplateFeatures {
        tables: query
            .tables
            .iter()
            .map(|t| t.name().to_ascii_lowercase())
            .collect(),
        unary_counts: query
            .unary
            .iter()
            .map(|c| c.len().min(u16::MAX as usize) as u16)
            .collect(),
        n_equi: query.equi_preds.len().min(u16::MAX as usize) as u16,
        n_theta: query.generic_preds.len().min(u16::MAX as usize) as u16,
        n_select: query.select.len().min(u16::MAX as usize) as u16,
        has_group: !query.group_by.is_empty(),
        has_order: !query.order_by.is_empty(),
        distinct: query.distinct,
        limited: query.limit.is_some(),
    }
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    }
}

/// Append `e`'s structure with every literal replaced by `?`.
fn expr_template(e: &Expr, out: &mut String) {
    match e {
        Expr::Col(c, _) => out.push_str(&format!("t{}.{}", c.table, c.col)),
        Expr::LitInt(_) | Expr::LitFloat(_) | Expr::LitStr { .. } => out.push('?'),
        Expr::Cmp { op, left, right } => {
            out.push_str(&format!("{op:?}").to_ascii_lowercase());
            out.push('(');
            expr_template(left, out);
            out.push(',');
            expr_template(right, out);
            out.push(')');
        }
        Expr::And(es) | Expr::Or(es) => {
            out.push_str(if matches!(e, Expr::And(_)) {
                "and("
            } else {
                "or("
            });
            for (i, sub) in es.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                expr_template(sub, out);
            }
            out.push(')');
        }
        Expr::Not(sub) => {
            out.push_str("not(");
            expr_template(sub, out);
            out.push(')');
        }
        Expr::Neg(sub) => {
            out.push_str("neg(");
            expr_template(sub, out);
            out.push(')');
        }
        Expr::Arith { op, left, right } => {
            out.push_str(&format!("{op:?}").to_ascii_lowercase());
            out.push('(');
            expr_template(left, out);
            out.push(',');
            expr_template(right, out);
            out.push(')');
        }
        // The set / pattern contents are literals.
        Expr::InSet { arg, negated, .. } => {
            out.push_str(if *negated { "notin(" } else { "in(" });
            expr_template(arg, out);
            out.push_str(",?)");
        }
        Expr::LikeSet { arg, negated, .. } => {
            out.push_str(if *negated { "notlike(" } else { "like(" });
            expr_template(arg, out);
            out.push_str(",?)");
        }
        Expr::Udf { handle, args } => {
            out.push_str("udf:");
            out.push_str(&handle.name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                expr_template(a, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::udf::UdfRegistry;
    use skinner_storage::{schema, Catalog, Value};

    fn fixture() -> Catalog {
        let cat = Catalog::new();
        let mut a = cat.builder("a", schema![("id", Int), ("g", Int), ("s", Str)]);
        for i in 0..10 {
            a.push_row(&[
                Value::Int(i),
                Value::Int(i % 3),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
            ]);
        }
        cat.register(a.finish());
        let mut b = cat.builder("b", schema![("aid", Int), ("w", Int)]);
        for i in 0..10 {
            b.push_row(&[Value::Int(i), Value::Int(i % 4)]);
        }
        cat.register(b.finish());
        cat
    }

    fn key(sql: &str, cat: &Catalog) -> String {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            crate::ast::Statement::Select(s) => {
                template_key(&crate::bind_select(&s, cat, &udfs).unwrap())
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn literals_normalize_to_the_same_key() {
        let cat = fixture();
        let base = "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1";
        for other in [
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 2",
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 999",
        ] {
            assert_eq!(key(base, &cat), key(other, &cat));
        }
    }

    #[test]
    fn string_and_like_literals_normalize() {
        let cat = fixture();
        assert_eq!(
            key("SELECT a.id FROM a WHERE a.s = 'even'", &cat),
            key("SELECT a.id FROM a WHERE a.s = 'odd'", &cat),
        );
        assert_eq!(
            key("SELECT a.id FROM a WHERE a.s LIKE 'ev%'", &cat),
            key("SELECT a.id FROM a WHERE a.s LIKE '%dd'", &cat),
        );
        assert_eq!(
            key("SELECT a.id FROM a WHERE a.g IN (1, 2)", &cat),
            key("SELECT a.id FROM a WHERE a.g IN (0, 1, 2)", &cat),
        );
    }

    #[test]
    fn aliases_do_not_enter_the_key() {
        let cat = fixture();
        assert_eq!(
            key("SELECT x.id FROM a x, b y WHERE x.id = y.aid", &cat),
            key("SELECT q.id FROM a q, b r WHERE q.id = r.aid", &cat),
        );
    }

    #[test]
    fn limit_value_is_normalized_but_presence_kept() {
        let cat = fixture();
        assert_eq!(
            key("SELECT a.id FROM a ORDER BY a.id LIMIT 3", &cat),
            key("SELECT a.id FROM a ORDER BY a.id LIMIT 7", &cat),
        );
        assert_ne!(
            key("SELECT a.id FROM a ORDER BY a.id LIMIT 3", &cat),
            key("SELECT a.id FROM a ORDER BY a.id", &cat),
        );
    }

    #[test]
    fn structure_differences_change_the_key() {
        let cat = fixture();
        let base = key("SELECT a.id FROM a, b WHERE a.id = b.aid", &cat);
        for other in [
            "SELECT a.id FROM a, b WHERE a.id = b.w", // different column
            "SELECT a.id FROM a WHERE a.g = 1",       // different tables
            "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1", // extra pred
            "SELECT a.g FROM a, b WHERE a.id = b.aid", // different select
            "SELECT a.id FROM a, b WHERE a.id = b.aid ORDER BY a.id", // order
            "SELECT a.id FROM a, b WHERE a.id > b.aid", // theta not equi
        ] {
            assert_ne!(base, key(other, &cat), "{other}");
        }
    }

    #[test]
    fn group_by_and_aggregates_shape_the_key() {
        let cat = fixture();
        let grouped = key(
            "SELECT a.g, COUNT(*) c FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        let summed = key(
            "SELECT a.g, SUM(a.id) s FROM a GROUP BY a.g ORDER BY a.g",
            &cat,
        );
        assert_ne!(grouped, summed);
        assert!(grouped.contains("count(*)"));
        assert!(grouped.contains("group("));
    }

    fn features(sql: &str, cat: &Catalog) -> TemplateFeatures {
        let udfs = UdfRegistry::new();
        match parse_statement(sql).unwrap() {
            crate::ast::Statement::Select(s) => {
                template_features(&crate::bind_select(&s, cat, &udfs).unwrap())
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn features_capture_shape_not_literals() {
        let cat = fixture();
        let f = features("SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1", &cat);
        assert_eq!(f.tables, vec!["a", "b"]);
        assert_eq!(f.unary_counts, vec![1, 0]);
        assert_eq!((f.n_equi, f.n_theta, f.n_select), (1, 0, 1));
        assert!(!f.has_group && !f.has_order && !f.distinct && !f.limited);
        // Different literal, same features.
        assert_eq!(
            f,
            features(
                "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 777",
                &cat
            )
        );
        // Extra predicate changes them.
        assert_ne!(
            f,
            features(
                "SELECT a.id FROM a, b WHERE a.id = b.aid AND a.g = 1 AND b.w = 2",
                &cat
            )
        );
        let g = features(
            "SELECT DISTINCT a.g, COUNT(*) c FROM a, b WHERE a.id > b.aid \
             GROUP BY a.g ORDER BY a.g LIMIT 5",
            &cat,
        );
        assert_eq!((g.n_equi, g.n_theta), (0, 1));
        assert!(g.has_group && g.has_order && g.distinct && g.limited);
    }

    #[test]
    fn distinct_flag_enters_the_key() {
        let cat = fixture();
        assert_ne!(
            key("SELECT DISTINCT a.g FROM a", &cat),
            key("SELECT a.g FROM a", &cat),
        );
    }
}
