//! User-defined function registry.
//!
//! UDF predicates are first-class in the SkinnerDB evaluation: the *UDF
//! Torture* benchmark and the TPC-H UDF variant replace ordinary predicates
//! with opaque functions that the traditional optimizer cannot estimate
//! (it falls back to a default selectivity), while SkinnerDB's learning
//! strategies handle them like any other predicate.
//!
//! UDFs are plain Rust closures over [`Value`] arguments. The registry
//! counts invocations, which feeds the "number of predicate evaluations"
//! metric of the paper's Figure 11.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use skinner_storage::Value;

/// Stable identifier of a registered UDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdfId(pub u32);

/// The function type: pure, thread-safe, `Value`s in, `Value` out.
pub type UdfFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

struct UdfEntry {
    name: String,
    func: UdfFn,
    ret: skinner_storage::DataType,
    calls: Arc<AtomicU64>,
}

#[derive(Default)]
struct Inner {
    by_name: HashMap<String, UdfId>,
    entries: Vec<UdfEntry>,
}

/// Registry of UDFs, shared by the binder and all engines.
///
/// Internally synchronized: registration takes `&self`, so a registry
/// behind an `Arc` (as in the `Database` facade) accepts new UDFs from any
/// thread while sessions are running.
#[derive(Default)]
pub struct UdfRegistry {
    inner: RwLock<Inner>,
}

impl UdfRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a boolean/integer-valued `func` under `name`
    /// (case-insensitive). Re-registering a name replaces the function but
    /// keeps the id, so bound queries keep working.
    pub fn register(
        &self,
        name: &str,
        func: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> UdfId {
        self.register_typed(name, skinner_storage::DataType::Int, func)
    }

    /// Register a UDF with an explicit return type (binder uses it for type
    /// checks around the call site).
    pub fn register_typed(
        &self,
        name: &str,
        ret: skinner_storage::DataType,
        func: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> UdfId {
        let key = name.to_ascii_lowercase();
        let mut inner = self.inner.write();
        match inner.by_name.get(&key) {
            Some(&id) => {
                let e = &mut inner.entries[id.0 as usize];
                e.func = Arc::new(func);
                e.ret = ret;
                id
            }
            None => {
                let id = UdfId(inner.entries.len() as u32);
                inner.entries.push(UdfEntry {
                    name: key.clone(),
                    func: Arc::new(func),
                    ret,
                    calls: Arc::new(AtomicU64::new(0)),
                });
                inner.by_name.insert(key, id);
                id
            }
        }
    }

    /// Declared return type of `id`.
    pub fn return_type(&self, id: UdfId) -> skinner_storage::DataType {
        self.inner.read().entries[id.0 as usize].ret
    }

    /// Shared invocation counter for `id`; bound expressions hold a clone so
    /// evaluation can count calls without a registry reference.
    pub fn counter(&self, id: UdfId) -> Arc<AtomicU64> {
        self.inner.read().entries[id.0 as usize].calls.clone()
    }

    /// Look up a UDF by name.
    pub fn lookup(&self, name: &str) -> Option<UdfId> {
        self.inner
            .read()
            .by_name
            .get(&name.to_ascii_lowercase())
            .copied()
    }

    /// The function behind `id` (cheap Arc clone).
    pub fn func(&self, id: UdfId) -> UdfFn {
        self.inner.read().entries[id.0 as usize].func.clone()
    }

    /// The (lowercased) registered name of `id`.
    pub fn name(&self, id: UdfId) -> String {
        self.inner.read().entries[id.0 as usize].name.clone()
    }

    /// Record one invocation (called from expression evaluation).
    pub fn record_call(&self, id: UdfId) {
        self.inner.read().entries[id.0 as usize]
            .calls
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Total invocations of `id` so far.
    pub fn call_count(&self, id: UdfId) -> u64 {
        self.inner.read().entries[id.0 as usize]
            .calls
            .load(Ordering::Relaxed)
    }

    /// Total invocations across all UDFs.
    pub fn total_calls(&self) -> u64 {
        self.inner
            .read()
            .entries
            .iter()
            .map(|e| e.calls.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset all invocation counters (between benchmark runs).
    pub fn reset_counters(&self) {
        for e in &self.inner.read().entries {
            e.calls.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdfRegistry")
            .field(
                "udfs",
                &self
                    .inner
                    .read()
                    .entries
                    .iter()
                    .map(|e| e.name.clone())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let r = UdfRegistry::new();
        let id = r.register("double_it", |args| {
            Value::Int(args[0].as_i64().unwrap() * 2)
        });
        let f = r.func(id);
        assert_eq!(f(&[Value::Int(21)]).as_i64(), Some(42));
        assert_eq!(r.lookup("DOUBLE_IT"), Some(id));
        assert_eq!(r.name(id), "double_it");
    }

    #[test]
    fn reregistering_keeps_id() {
        let r = UdfRegistry::new();
        let id1 = r.register("f", |_| Value::Int(1));
        let id2 = r.register("f", |_| Value::Int(2));
        assert_eq!(id1, id2);
        assert_eq!(r.func(id1)(&[]).as_i64(), Some(2));
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let r = UdfRegistry::new();
        let id = r.register("g", |_| Value::Int(0));
        r.record_call(id);
        r.record_call(id);
        assert_eq!(r.call_count(id), 2);
        assert_eq!(r.total_calls(), 2);
        r.reset_counters();
        assert_eq!(r.total_calls(), 0);
    }
}
