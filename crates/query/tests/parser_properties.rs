//! Property tests for the SQL frontend: printing a parsed expression and
//! re-parsing it must reach a fixpoint, and the lexer must never panic.

use proptest::prelude::*;

use skinner_query::ast::{AstExpr, BinOp};
use skinner_query::lexer::tokenize;
use skinner_query::parser::parse_statement;

/// Random expression trees over a small column/literal vocabulary.
fn arb_expr() -> impl Strategy<Value = AstExpr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(AstExpr::IntLit),
        (0u32..100).prop_map(|x| AstExpr::FloatLit(x as f64 + 0.5)),
        "[a-z]{1,6}".prop_map(AstExpr::StrLit),
        ("[a-c]", "[a-z]{1,5}").prop_map(|(q, n)| AstExpr::Column {
            qualifier: Some(q),
            name: n,
        }),
        "[a-z]{1,5}".prop_map(|n| AstExpr::Column {
            qualifier: None,
            name: n,
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::Lt),
                    Just(BinOp::Add),
                    Just(BinOp::Mul),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| AstExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }),
            inner.clone().prop_map(|e| AstExpr::Not(Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(e, lo, hi)| {
                AstExpr::Between {
                    expr: Box::new(e),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated: false,
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Display → parse → Display is a fixpoint (parenthesization makes the
    /// first printout canonical).
    #[test]
    fn expression_display_roundtrips(e in arb_expr()) {
        let sql = format!("SELECT a FROM t WHERE {e}");
        let stmt = parse_statement(&sql)
            .unwrap_or_else(|err| panic!("printed expression must parse: {err}\n{sql}"));
        let skinner_query::ast::Statement::Select(s) = stmt else { unreachable!() };
        let printed = s.predicate.unwrap().to_string();
        let sql2 = format!("SELECT a FROM t WHERE {printed}");
        let stmt2 = parse_statement(&sql2).unwrap();
        let skinner_query::ast::Statement::Select(s2) = stmt2 else { unreachable!() };
        prop_assert_eq!(printed, s2.predicate.unwrap().to_string());
    }

    /// The lexer returns Ok or Err but never panics, on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC{0,80}") {
        let _ = tokenize(&input);
    }

    /// Tokenizing a valid statement and displaying tokens re-tokenizes to
    /// the same stream.
    #[test]
    fn token_display_roundtrips(cols in proptest::collection::vec("[a-z]{1,6}", 1..4)) {
        let sql = format!("SELECT {} FROM t WHERE x = 'it''s' AND y >= 1.5", cols.join(", "));
        let toks = tokenize(&sql).unwrap();
        let printed: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        let re = tokenize(&printed.join(" ")).unwrap();
        prop_assert_eq!(toks, re);
    }
}
