//! Server-level admission control.
//!
//! A global concurrency gate built on the library's [`WorkBudget`]: the
//! budget's limit is the number of queries allowed to execute at once, and
//! each admitted query holds a one-unit [`WorkPermit`] that returns to the
//! budget when the query finishes (RAII). Arrivals beyond the limit wait
//! in a *bounded* queue; once the queue is full — or a queued arrival
//! outwaits [`AdmissionConfig::queue_timeout`] — the query is load-shed
//! with an explicit `Overloaded` error instead of piling up. Overload
//! therefore degrades predictably: at most `max_concurrent` queries run,
//! at most `queue_depth` wait, everyone else is told to back off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use skinnerdb::skinner_exec::{WorkBudget, WorkPermit};

/// Gate sizing.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queries allowed to execute concurrently across all connections.
    pub max_concurrent: usize,
    /// Arrivals allowed to wait for a slot before load shedding starts.
    pub queue_depth: usize,
    /// How long a queued arrival waits before being shed.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: skinnerdb::skinner_exec::default_threads().max(2),
            queue_depth: 64,
            queue_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of asking the gate for a slot.
pub enum Admission {
    /// Run now; drop the permit when the query finishes.
    Granted(WorkPermit),
    /// Load-shed: the queue was full, or the wait timed out.
    Shed(ShedReason),
}

/// Why a query was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    QueueFull,
    QueueTimeout,
    /// The gate was closed (server shutting down); nothing is admitted.
    Closed,
}

impl ShedReason {
    pub fn message(&self, cfg: &AdmissionConfig) -> String {
        match self {
            ShedReason::QueueFull => format!(
                "server overloaded: {} queries running and {} queued; retry later",
                cfg.max_concurrent, cfg.queue_depth
            ),
            ShedReason::QueueTimeout => format!(
                "server overloaded: no execution slot freed within {:?}; retry later",
                cfg.queue_timeout
            ),
            ShedReason::Closed => "server is shutting down".into(),
        }
    }
}

/// The gate itself. Cheap to share (`Arc` inside).
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    slots: Arc<WorkBudget>,
    queued: Mutex<usize>,
    freed: Condvar,
    shed_total: AtomicU64,
    admitted_total: AtomicU64,
    closed: std::sync::atomic::AtomicBool,
}

impl AdmissionGate {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionGate {
            slots: Arc::new(WorkBudget::with_limit(cfg.max_concurrent.max(1) as u64)),
            cfg,
            queued: Mutex::new(0),
            freed: Condvar::new(),
            shed_total: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Close the gate (shutdown): every queued waiter and every future
    /// arrival is shed immediately with [`ShedReason::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.queued.lock().unwrap();
        self.freed.notify_all();
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Ask for an execution slot, waiting in the bounded queue if needed.
    pub fn admit(&self) -> Admission {
        if self.closed.load(Ordering::SeqCst) {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed(ShedReason::Closed);
        }
        if let Some(permit) = self.slots.acquire(1) {
            self.admitted_total.fetch_add(1, Ordering::Relaxed);
            return Admission::Granted(permit);
        }
        // Queue up — but only if there is room.
        {
            let mut queued = self.queued.lock().unwrap();
            if *queued >= self.cfg.queue_depth {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
                return Admission::Shed(ShedReason::QueueFull);
            }
            *queued += 1;
        }
        let admission = self.wait_for_slot();
        *self.queued.lock().unwrap() -= 1;
        if matches!(admission, Admission::Shed(_)) {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admitted_total.fetch_add(1, Ordering::Relaxed);
        }
        admission
    }

    fn wait_for_slot(&self) -> Admission {
        let deadline = Instant::now() + self.cfg.queue_timeout;
        let mut guard = self.queued.lock().unwrap();
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Admission::Shed(ShedReason::Closed);
            }
            if let Some(permit) = self.slots.acquire(1) {
                return Admission::Granted(permit);
            }
            let now = Instant::now();
            if now >= deadline {
                return Admission::Shed(ShedReason::QueueTimeout);
            }
            let (g, timeout) = self.freed.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
            if timeout.timed_out() {
                // One last try before giving up (a slot may have freed
                // exactly at the deadline).
                return match self.slots.acquire(1) {
                    Some(permit) => Admission::Granted(permit),
                    None => Admission::Shed(ShedReason::QueueTimeout),
                };
            }
        }
    }

    /// Called when an admitted query finishes (after its permit dropped)
    /// so a queued arrival can claim the freed slot. [`SlotGuard`] does
    /// this automatically.
    pub fn on_release(&self) {
        // Take the queue lock before notifying: a waiter holds it between
        // its failed `acquire` and its `wait`, so locking here makes the
        // notify impossible to lose in that window.
        let _guard = self.queued.lock().unwrap();
        self.freed.notify_one();
    }

    /// Queries currently holding an execution slot.
    pub fn active(&self) -> u64 {
        self.slots.used()
    }

    /// Arrivals currently waiting in the queue.
    pub fn queued(&self) -> usize {
        *self.queued.lock().unwrap()
    }

    /// Total queries shed since startup.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Total queries admitted since startup.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::Relaxed)
    }
}

/// RAII guard pairing the slot permit with the wake-up: dropping it frees
/// the slot *and* notifies one queued waiter.
pub struct SlotGuard {
    gate: Arc<AdmissionGate>,
    permit: Option<WorkPermit>,
}

impl SlotGuard {
    pub fn new(gate: Arc<AdmissionGate>, permit: WorkPermit) -> Self {
        SlotGuard {
            gate,
            permit: Some(permit),
        }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.permit.take(); // refund the slot first …
        self.gate.on_release(); // … then wake a waiter.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gate(max_concurrent: usize, queue_depth: usize, timeout_ms: u64) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate::new(AdmissionConfig {
            max_concurrent,
            queue_depth,
            queue_timeout: Duration::from_millis(timeout_ms),
        }))
    }

    #[test]
    fn grants_up_to_capacity_then_sheds_past_queue() {
        let g = gate(2, 0, 50);
        let a = g.admit();
        let b = g.admit();
        assert!(matches!(a, Admission::Granted(_)));
        assert!(matches!(b, Admission::Granted(_)));
        // Queue depth 0: third arrival is shed immediately.
        match g.admit() {
            Admission::Shed(ShedReason::QueueFull) => {}
            _ => panic!("expected immediate shed"),
        }
        assert_eq!(g.shed_total(), 1);
        assert_eq!(g.active(), 2);
    }

    #[test]
    fn released_slot_admits_a_queued_waiter() {
        let g = gate(1, 4, 5_000);
        let first = match g.admit() {
            Admission::Granted(p) => SlotGuard::new(g.clone(), p),
            _ => panic!(),
        };
        let g2 = g.clone();
        let waiter = std::thread::spawn(move || match g2.admit() {
            Admission::Granted(_) => true,
            Admission::Shed(_) => false,
        });
        // Give the waiter time to enqueue, then free the slot.
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        assert!(waiter.join().unwrap(), "waiter must inherit the freed slot");
        assert_eq!(g.shed_total(), 0);
    }

    #[test]
    fn queued_waiters_time_out_to_shed() {
        let g = gate(1, 4, 30);
        let _hold = match g.admit() {
            Admission::Granted(p) => SlotGuard::new(g.clone(), p),
            _ => panic!(),
        };
        let started = Instant::now();
        match g.admit() {
            Admission::Shed(ShedReason::QueueTimeout) => {}
            _ => panic!("expected queue timeout"),
        }
        assert!(started.elapsed() >= Duration::from_millis(25));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shed must be prompt, not a hang"
        );
    }

    #[test]
    fn closing_the_gate_sheds_waiters_and_arrivals() {
        let g = gate(1, 4, 60_000);
        let _hold = match g.admit() {
            Admission::Granted(p) => SlotGuard::new(g.clone(), p),
            _ => panic!(),
        };
        let g2 = g.clone();
        let waiter = std::thread::spawn(move || g2.admit());
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        g.close();
        assert!(matches!(
            waiter.join().unwrap(),
            Admission::Shed(ShedReason::Closed)
        ));
        assert!(matches!(g.admit(), Admission::Shed(ShedReason::Closed)));
    }

    #[test]
    fn queue_is_bounded() {
        let g = gate(1, 1, 400);
        let _hold = match g.admit() {
            Admission::Granted(p) => SlotGuard::new(g.clone(), p),
            _ => panic!(),
        };
        let g2 = g.clone();
        let queued = std::thread::spawn(move || matches!(g2.admit(), Admission::Shed(_)));
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        // Queue of 1 is occupied: the next arrival is shed instantly.
        match g.admit() {
            Admission::Shed(ShedReason::QueueFull) => {}
            _ => panic!("expected queue-full shed"),
        }
        // The queued waiter eventually times out too (slot never freed
        // while _hold lives).
        assert!(queued.join().unwrap());
        assert_eq!(g.shed_total(), 2);
    }
}
