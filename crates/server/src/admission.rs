//! Server-level admission control with per-tenant fair sharing.
//!
//! A global concurrency gate built on the library's [`WorkBudget`]: the
//! budget's limit is the number of queries allowed to execute at once, and
//! each admitted query holds a one-unit [`WorkPermit`] that returns to the
//! budget when the query finishes (RAII). Arrivals beyond the limit wait
//! in a *bounded* queue; once the queue is full — or a queued arrival
//! outwaits [`AdmissionConfig::queue_timeout`] — the query is load-shed
//! with an explicit `Overloaded` error instead of piling up. Overload
//! therefore degrades predictably: at most `max_concurrent` queries run,
//! at most `queue_depth` wait, everyone else is told to back off.
//!
//! ## Tenant classes
//!
//! Every admission names a *tenant* (the `Hello` handshake's tenant
//! field; empty = `"default"`). Each tenant is guaranteed a weighted fair
//! share of the execution slots: with active weights `w_i`, tenant `i` is
//! guaranteed `max(1, max_concurrent · w_i / Σw)` slots. A tenant may
//! burst past its share while slots are idle (the gate is
//! work-conserving), but once a *below-share* tenant is waiting, tenants
//! at or above their share are held back — so one heavy tenant cannot
//! starve the rest.
//!
//! ## Event-loop split
//!
//! The event-loop server must never block, so admission is two-phase:
//! [`AdmissionGate::begin`] is non-blocking — it either grants
//! immediately, sheds, or returns a queued [`Ticket`]; the blocking
//! [`Ticket::wait`] then runs on a pool worker thread, not on the event
//! loop. The one-call [`AdmissionGate::admit`] wraps both for blocking
//! callers (tests, benches).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use skinnerdb::skinner_exec::{WorkBudget, WorkPermit};

/// Name of the admission class used when a client doesn't pick one.
pub const DEFAULT_TENANT: &str = "default";

/// One configured admission class: tenants with a higher weight are
/// guaranteed proportionally more concurrent execution slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantClass {
    pub name: String,
    pub weight: u32,
}

/// Gate sizing.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to execute concurrently across all connections.
    pub max_concurrent: usize,
    /// Arrivals allowed to wait for a slot before load shedding starts.
    pub queue_depth: usize,
    /// How long a queued arrival waits before being shed.
    pub queue_timeout: Duration,
    /// Configured tenant classes; tenants not listed here get
    /// [`AdmissionConfig::default_weight`].
    pub tenants: Vec<TenantClass>,
    /// Weight for tenants without an explicit [`TenantClass`].
    pub default_weight: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: skinnerdb::skinner_exec::default_threads().max(2),
            queue_depth: 64,
            queue_timeout: Duration::from_secs(10),
            tenants: Vec::new(),
            default_weight: 1,
        }
    }
}

/// Outcome of asking the gate for a slot (blocking path).
pub enum Admission {
    /// Run now; drop the permit when the query finishes.
    Granted(TenantPermit),
    /// Load-shed: the queue was full, or the wait timed out.
    Shed(ShedReason),
}

/// Outcome of the non-blocking [`AdmissionGate::begin`].
pub enum Begin {
    /// Run now.
    Granted(TenantPermit),
    /// Queued: hand the ticket to a thread that may block and call
    /// [`Ticket::wait`].
    Queued(Ticket),
    /// Load-shed immediately (queue full or gate closed).
    Shed(ShedReason),
}

/// Why a query was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    QueueFull,
    QueueTimeout,
    /// The gate was closed (server shutting down); nothing is admitted.
    Closed,
}

impl ShedReason {
    pub fn message(&self, cfg: &AdmissionConfig) -> String {
        match self {
            ShedReason::QueueFull => format!(
                "server overloaded: {} queries running and {} queued; retry later",
                cfg.max_concurrent, cfg.queue_depth
            ),
            ShedReason::QueueTimeout => format!(
                "server overloaded: no execution slot freed within {:?}; retry later",
                cfg.queue_timeout
            ),
            ShedReason::Closed => "server is shutting down".into(),
        }
    }
}

#[derive(Debug, Default)]
struct TenantCounts {
    weight: u32,
    inflight: u32,
    waiting: u32,
    admitted: u64,
    shed: u64,
}

#[derive(Debug, Default)]
struct GateState {
    tenants: HashMap<String, TenantCounts>,
    waiting_total: usize,
}

/// A point-in-time view of one tenant's admission counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStat {
    pub name: String,
    pub weight: u32,
    pub inflight: u32,
    pub waiting: u32,
    pub admitted: u64,
    pub shed: u64,
}

/// The gate itself. Cheap to share (`Arc` inside); the permit-returning
/// entry points take `&Arc<Self>` so permits can hold the gate alive.
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    slots: Arc<WorkBudget>,
    state: Mutex<GateState>,
    freed: Condvar,
    shed_total: AtomicU64,
    admitted_total: AtomicU64,
    closed: AtomicBool,
}

impl AdmissionGate {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionGate {
            slots: Arc::new(WorkBudget::with_limit(cfg.max_concurrent.max(1) as u64)),
            cfg,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            shed_total: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Close the gate (shutdown): every queued waiter and every future
    /// arrival is shed immediately with [`ShedReason::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.state.lock().unwrap();
        self.freed.notify_all();
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn weight_of(&self, tenant: &str) -> u32 {
        self.cfg
            .tenants
            .iter()
            .find(|t| t.name == tenant)
            .map(|t| t.weight)
            .unwrap_or(self.cfg.default_weight)
            .max(1)
    }

    /// Guaranteed concurrent slots for `tenant` given the currently
    /// *active* tenants (those with in-flight or waiting work; `tenant`
    /// itself always counts).
    fn share(&self, state: &GateState, tenant: &str) -> u64 {
        let mut total: u64 = 0;
        let mut mine: u64 = 0;
        for (name, c) in &state.tenants {
            let active = c.inflight > 0 || c.waiting > 0 || name == tenant;
            if active {
                total += u64::from(c.weight.max(1));
                if name == tenant {
                    mine = u64::from(c.weight.max(1));
                }
            }
        }
        if mine == 0 {
            // Tenant not in the map yet (first contact).
            mine = u64::from(self.weight_of(tenant));
            total += mine;
        }
        ((self.cfg.max_concurrent as u64) * mine / total.max(1)).max(1)
    }

    /// True when some *other* tenant has a queued waiter and is below its
    /// guaranteed share — the condition that suspends work-conserving
    /// bursts above one's own share.
    fn hungrier_waiter_exists(&self, state: &GateState, tenant: &str) -> bool {
        state.tenants.iter().any(|(name, c)| {
            name != tenant && c.waiting > 0 && u64::from(c.inflight) < self.share(state, name)
        })
    }

    /// Try to take a slot for `tenant` under the fair-share policy.
    fn try_grant(&self, state: &GateState, tenant: &str) -> Option<WorkPermit> {
        let my_inflight = state
            .tenants
            .get(tenant)
            .map(|c| u64::from(c.inflight))
            .unwrap_or(0);
        let allowed =
            my_inflight < self.share(state, tenant) || !self.hungrier_waiter_exists(state, tenant);
        if !allowed {
            return None;
        }
        self.slots.acquire(1)
    }

    fn record_grant(&self, state: &mut MutexGuard<'_, GateState>, tenant: &str) {
        let e = state.tenants.get_mut(tenant).expect("tenant entry exists");
        e.inflight += 1;
        e.admitted += 1;
        self.admitted_total.fetch_add(1, Ordering::Relaxed);
    }

    fn record_shed(&self, state: &mut MutexGuard<'_, GateState>, tenant: &str) {
        if let Some(e) = state.tenants.get_mut(tenant) {
            e.shed += 1;
        }
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    fn ensure_tenant(&self, state: &mut MutexGuard<'_, GateState>, tenant: &str) {
        let weight = self.weight_of(tenant);
        state
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantCounts {
                weight,
                ..TenantCounts::default()
            });
    }

    /// Non-blocking admission for the event loop: grant, queue (returning
    /// a [`Ticket`] whose blocking `wait` belongs on a worker thread), or
    /// shed.
    pub fn begin(self: &Arc<Self>, tenant: &str) -> Begin {
        let tenant = if tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            tenant
        };
        let mut state = self.state.lock().unwrap();
        self.ensure_tenant(&mut state, tenant);
        if self.closed.load(Ordering::SeqCst) {
            self.record_shed(&mut state, tenant);
            return Begin::Shed(ShedReason::Closed);
        }
        if let Some(permit) = self.try_grant(&state, tenant) {
            self.record_grant(&mut state, tenant);
            return Begin::Granted(TenantPermit {
                gate: self.clone(),
                tenant: tenant.to_string(),
                permit: Some(permit),
            });
        }
        if state.waiting_total >= self.cfg.queue_depth {
            self.record_shed(&mut state, tenant);
            return Begin::Shed(ShedReason::QueueFull);
        }
        state.waiting_total += 1;
        state.tenants.get_mut(tenant).expect("entry").waiting += 1;
        Begin::Queued(Ticket {
            gate: self.clone(),
            tenant: tenant.to_string(),
            deadline: Instant::now() + self.cfg.queue_timeout,
            queued: true,
        })
    }

    /// Blocking admission: [`AdmissionGate::begin`] plus the queue wait.
    pub fn admit(self: &Arc<Self>, tenant: &str) -> Admission {
        match self.begin(tenant) {
            Begin::Granted(p) => Admission::Granted(p),
            Begin::Queued(ticket) => ticket.wait(),
            Begin::Shed(r) => Admission::Shed(r),
        }
    }

    /// Queries currently holding an execution slot.
    pub fn active(&self) -> u64 {
        self.slots.used()
    }

    /// Arrivals currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().waiting_total
    }

    /// Total queries shed since startup.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Total queries admitted since startup.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::Relaxed)
    }

    /// Per-tenant counters, sorted by tenant name (for `SHOW SERVER
    /// STATS`).
    pub fn tenant_snapshot(&self) -> Vec<TenantStat> {
        let state = self.state.lock().unwrap();
        let mut out: Vec<TenantStat> = state
            .tenants
            .iter()
            .map(|(name, c)| TenantStat {
                name: name.clone(),
                weight: c.weight,
                inflight: c.inflight,
                waiting: c.waiting,
                admitted: c.admitted,
                shed: c.shed,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// A queued admission: blocks in [`Ticket::wait`] until a slot frees (or
/// timeout/closure sheds it). Dropping an unwaited ticket dequeues it.
pub struct Ticket {
    gate: Arc<AdmissionGate>,
    tenant: String,
    deadline: Instant,
    queued: bool,
}

impl Ticket {
    /// The tenant this ticket queues for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Block until granted, shed by timeout, or shed by gate closure.
    pub fn wait(mut self) -> Admission {
        let gate = self.gate.clone();
        let mut state = gate.state.lock().unwrap();
        loop {
            if gate.closed.load(Ordering::SeqCst) {
                self.dequeue(&mut state);
                gate.record_shed(&mut state, &self.tenant);
                drop(state);
                gate.freed.notify_all();
                return Admission::Shed(ShedReason::Closed);
            }
            // Try to claim a slot with ourselves off the waiting books (a
            // waiter is not "hungrier" than itself).
            self.dequeue(&mut state);
            if let Some(permit) = gate.try_grant(&state, &self.tenant) {
                gate.record_grant(&mut state, &self.tenant);
                return Admission::Granted(TenantPermit {
                    gate: gate.clone(),
                    tenant: self.tenant.clone(),
                    permit: Some(permit),
                });
            }
            self.requeue(&mut state);
            let now = Instant::now();
            if now >= self.deadline {
                self.dequeue(&mut state);
                gate.record_shed(&mut state, &self.tenant);
                drop(state);
                // Fairness state changed (one fewer waiter): re-evaluate.
                gate.freed.notify_all();
                return Admission::Shed(ShedReason::QueueTimeout);
            }
            state = gate
                .freed
                .wait_timeout(state, self.deadline - now)
                .unwrap()
                .0;
        }
    }

    fn dequeue(&mut self, state: &mut MutexGuard<'_, GateState>) {
        if self.queued {
            self.queued = false;
            state.waiting_total -= 1;
            if let Some(e) = state.tenants.get_mut(&self.tenant) {
                e.waiting -= 1;
            }
        }
    }

    fn requeue(&mut self, state: &mut MutexGuard<'_, GateState>) {
        if !self.queued {
            self.queued = true;
            state.waiting_total += 1;
            if let Some(e) = state.tenants.get_mut(&self.tenant) {
                e.waiting += 1;
            }
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.queued {
            let gate = self.gate.clone();
            let mut state = gate.state.lock().unwrap();
            self.dequeue(&mut state);
            drop(state);
            gate.freed.notify_all();
        }
    }
}

/// RAII admission: holds one execution slot on behalf of a tenant.
/// Dropping it refunds the slot, decrements the tenant's in-flight count
/// and wakes queued waiters (all of them — under fair sharing only a
/// specific tenant's waiter may be eligible, and a targeted wake-up can't
/// know which).
pub struct TenantPermit {
    gate: Arc<AdmissionGate>,
    tenant: String,
    permit: Option<WorkPermit>,
}

impl TenantPermit {
    /// The tenant this permit was granted to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        if let Some(e) = state.tenants.get_mut(&self.tenant) {
            e.inflight = e.inflight.saturating_sub(1);
        }
        self.permit.take(); // refund the slot …
        drop(state);
        self.gate.freed.notify_all(); // … then wake every waiter.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gate(max_concurrent: usize, queue_depth: usize, timeout_ms: u64) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate::new(AdmissionConfig {
            max_concurrent,
            queue_depth,
            queue_timeout: Duration::from_millis(timeout_ms),
            ..AdmissionConfig::default()
        }))
    }

    #[test]
    fn grants_up_to_capacity_then_sheds_past_queue() {
        let g = gate(2, 0, 50);
        let a = g.admit("");
        let b = g.admit("");
        assert!(matches!(a, Admission::Granted(_)));
        assert!(matches!(b, Admission::Granted(_)));
        // Queue depth 0: third arrival is shed immediately.
        match g.admit("") {
            Admission::Shed(ShedReason::QueueFull) => {}
            _ => panic!("expected immediate shed"),
        }
        assert_eq!(g.shed_total(), 1);
        assert_eq!(g.active(), 2);
    }

    #[test]
    fn released_slot_admits_a_queued_waiter() {
        let g = gate(1, 4, 5_000);
        let first = match g.admit("") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let g2 = g.clone();
        let waiter = std::thread::spawn(move || match g2.admit("") {
            Admission::Granted(_) => true,
            Admission::Shed(_) => false,
        });
        // Give the waiter time to enqueue, then free the slot.
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        assert!(waiter.join().unwrap(), "waiter must inherit the freed slot");
        assert_eq!(g.shed_total(), 0);
    }

    #[test]
    fn queued_waiters_time_out_to_shed() {
        let g = gate(1, 4, 30);
        let _hold = match g.admit("") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let started = Instant::now();
        match g.admit("") {
            Admission::Shed(ShedReason::QueueTimeout) => {}
            _ => panic!("expected queue timeout"),
        }
        assert!(started.elapsed() >= Duration::from_millis(25));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shed must be prompt, not a hang"
        );
    }

    #[test]
    fn closing_the_gate_sheds_waiters_and_arrivals() {
        let g = gate(1, 4, 60_000);
        let _hold = match g.admit("") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let g2 = g.clone();
        let waiter = std::thread::spawn(move || g2.admit(""));
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        g.close();
        assert!(matches!(
            waiter.join().unwrap(),
            Admission::Shed(ShedReason::Closed)
        ));
        assert!(matches!(g.admit(""), Admission::Shed(ShedReason::Closed)));
    }

    #[test]
    fn queue_is_bounded() {
        let g = gate(1, 1, 400);
        let _hold = match g.admit("") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let g2 = g.clone();
        let queued = std::thread::spawn(move || matches!(g2.admit(""), Admission::Shed(_)));
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        // Queue of 1 is occupied: the next arrival is shed instantly.
        match g.admit("") {
            Admission::Shed(ShedReason::QueueFull) => {}
            _ => panic!("expected queue-full shed"),
        }
        // The queued waiter eventually times out too (slot never freed
        // while _hold lives).
        assert!(queued.join().unwrap());
        assert_eq!(g.shed_total(), 2);
    }

    #[test]
    fn begin_is_nonblocking_and_tickets_wait() {
        let g = gate(1, 4, 5_000);
        let held = match g.begin("") {
            Begin::Granted(p) => p,
            _ => panic!("first arrival must be granted"),
        };
        let ticket = match g.begin("") {
            Begin::Queued(t) => t,
            _ => panic!("second arrival must queue"),
        };
        assert_eq!(g.queued(), 1);
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert!(matches!(waiter.join().unwrap(), Admission::Granted(_)));
        assert_eq!(g.queued(), 0);
    }

    #[test]
    fn dropping_an_unwaited_ticket_dequeues_it() {
        let g = gate(1, 2, 5_000);
        let _held = match g.begin("") {
            Begin::Granted(p) => p,
            _ => panic!(),
        };
        let ticket = match g.begin("") {
            Begin::Queued(t) => t,
            _ => panic!(),
        };
        assert_eq!(g.queued(), 1);
        drop(ticket); // e.g. the dispatch path died before waiting
        assert_eq!(g.queued(), 0);
    }

    /// The fair-share core: a released slot goes to the *below-share*
    /// tenant's waiter, not the heavy tenant that already holds slots.
    #[test]
    fn below_share_tenant_preempts_heavy_tenants_queue() {
        let g = Arc::new(AdmissionGate::new(AdmissionConfig {
            max_concurrent: 2,
            queue_depth: 8,
            queue_timeout: Duration::from_secs(30),
            ..AdmissionConfig::default()
        }));
        // Heavy tenant A grabs both slots while alone (work-conserving).
        let a1 = match g.admit("a") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let _a2 = match g.admit("a") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        // A queues a third; B queues its first.
        let ga = g.clone();
        let a_waiter = std::thread::spawn(move || ga.admit("a"));
        while g.queued() < 1 {
            std::thread::yield_now();
        }
        let gb = g.clone();
        let b_waiter = std::thread::spawn(move || gb.admit("b"));
        while g.queued() < 2 {
            std::thread::yield_now();
        }
        // One A slot frees: B (inflight 0 < share 1) must win it even
        // though A's waiter queued first.
        drop(a1);
        let b = match b_waiter.join().unwrap() {
            Admission::Granted(p) => p,
            Admission::Shed(r) => panic!("B shed: {r:?}"),
        };
        assert_eq!(b.tenant(), "b");
        // A's waiter is still queued (A holds 1 = its share, B holds 1).
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(g.queued(), 1, "A's waiter must still be queued");
        // B finishing hands the slot back to A's waiter.
        drop(b);
        assert!(matches!(a_waiter.join().unwrap(), Admission::Granted(_)));
    }

    #[test]
    fn weighted_shares_respect_configured_classes() {
        let g = Arc::new(AdmissionGate::new(AdmissionConfig {
            max_concurrent: 4,
            queue_depth: 8,
            queue_timeout: Duration::from_secs(30),
            tenants: vec![
                TenantClass {
                    name: "gold".into(),
                    weight: 3,
                },
                TenantClass {
                    name: "bronze".into(),
                    weight: 1,
                },
            ],
            default_weight: 1,
        }));
        {
            let state = g.state.lock().unwrap();
            drop(state);
        }
        // Prime both tenants so both are "active", then check shares.
        let gold = match g.admit("gold") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let bronze = match g.admit("bronze") {
            Admission::Granted(p) => p,
            _ => panic!(),
        };
        let state = g.state.lock().unwrap();
        assert_eq!(g.share(&state, "gold"), 3, "gold: 4·3/4 = 3");
        assert_eq!(g.share(&state, "bronze"), 1, "bronze: 4·1/4 = 1");
        drop(state);
        drop(gold);
        drop(bronze);
        // Counters surfaced per tenant.
        let snap = g.tenant_snapshot();
        let names: Vec<&str> = snap.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["bronze", "gold"]);
        assert!(snap.iter().all(|t| t.admitted == 1 && t.inflight == 0));
    }
}
