//! The `skinner-server` binary: serve a SkinnerDB instance over TCP.
//!
//! ```sh
//! skinner-server --addr 127.0.0.1:7878 --demo
//! skinner-server --addr 0.0.0.0:7878 --csv people=data/people.csv --csv orders=data/orders.csv
//! skinner-server --data-dir /var/lib/skinnerdb --bulk-csv lineitem=data/lineitem.csv
//! ```
//!
//! The process runs until it receives a wire-level `Shutdown` request
//! (e.g. `skinner_client::Client::shutdown_server`) or a SIGTERM/SIGINT,
//! then drains, flushes learned priors to the data directory, joins every
//! thread and exits 0 — which is what the CI clean-shutdown and
//! learning-persistence checks assert.

use std::time::Duration;

use skinner_server::{AdmissionConfig, Server, ServerConfig, ShutdownHandle, TenantClass};
use skinnerdb::{DataType, Database, Value};

/// Route SIGTERM/SIGINT into a graceful [`ShutdownHandle::request`].
///
/// The handler itself must be async-signal-safe, so it only `write(2)`s
/// one byte into a pre-created socketpair (the classic self-pipe trick);
/// a watcher thread blocks on the read end and performs the actual
/// shutdown outside signal context. The write end leaks by design — a
/// signal can arrive at any point in the process lifetime.
#[cfg(unix)]
mod signals {
    use super::ShutdownHandle;
    use std::io::Read;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicI32, Ordering};

    static SIGNAL_FD: AtomicI32 = AtomicI32::new(-1);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        let fd = SIGNAL_FD.load(Ordering::Relaxed);
        if fd >= 0 {
            let byte = 1u8;
            unsafe {
                let _ = write(fd, &byte, 1);
            }
        }
    }

    pub fn install(handle: ShutdownHandle) {
        let Ok((tx, mut rx)) = UnixStream::pair() else {
            eprintln!("skinner-server: cannot create signal channel; SIGTERM will be abrupt");
            return;
        };
        use std::os::unix::io::IntoRawFd;
        SIGNAL_FD.store(tx.into_raw_fd(), Ordering::Relaxed);
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
        std::thread::Builder::new()
            .name("skinner-signals".into())
            .spawn(move || {
                let mut buf = [0u8; 1];
                if rx.read(&mut buf).is_ok() {
                    eprintln!("skinner-server: signal received, shutting down");
                    handle.request();
                }
            })
            .expect("spawn signal watcher");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: skinner-server [--addr HOST:PORT] [--demo] [--csv NAME=PATH]...\n\
         \x20                     [--data-dir DIR] [--bulk-csv NAME=PATH]...\n\
         \x20                     [--max-conns N] [--max-queries N] [--queue N]\n\
         \x20                     [--queue-timeout-ms N] [--threads N] [--no-remote-shutdown]\n\
         \x20                     [--shards N] [--max-inflight N] [--idle-timeout-ms N]\n\
         \x20                     [--tenant NAME=WEIGHT]... [--metrics-addr HOST:PORT]\n\
         \x20                     [--slow-query-ms N] [--metrics-linger-ms N]\n\
         \n\
         --addr                listen address (default 127.0.0.1:7878)\n\
         --demo                load the built-in demo tables (nums, customers, products, orders)\n\
         --csv NAME=PATH       load a CSV file as table NAME (repeatable)\n\
         --data-dir DIR        open a persistent data directory: committed tables are\n\
         \x20                     loaded at startup, dropped tables are removed on disk,\n\
         \x20                     and learned join-order priors persist across restarts\n\
         --learning-cache      enable cross-query learning by default (templates\n\
         \x20                     warm-start from previous executions; with --data-dir\n\
         \x20                     the learned priors survive restarts)\n\
         --bulk-csv NAME=PATH  stream a CSV straight into a persistent zone-mapped\n\
         \x20                     segment (requires --data-dir earlier on the command line)\n\
         --max-conns N         connection limit (default 256)\n\
         --max-queries N       concurrently executing queries (default: cores)\n\
         --queue N             admission queue depth (default 64)\n\
         --queue-timeout-ms N  max wait for an execution slot (default 10000)\n\
         --threads N           default worker threads per parallel query\n\
         --no-remote-shutdown  ignore wire-level Shutdown requests\n\
         --shards N            connection event-loop shards (default: auto)\n\
         --max-inflight N      pipelined statements per v2 connection (default 32)\n\
         --idle-timeout-ms N   reap idle connections after N ms (0 = never, default 300000)\n\
         --tenant NAME=WEIGHT  declare an admission tenant class (repeatable)\n\
         --metrics-addr A:P    serve Prometheus text exposition on GET /metrics\n\
         --slow-query-ms N     log a structured slow-query line for queries >= N ms\n\
         --metrics-linger-ms N keep /metrics up this long after shutdown (default 0),\n\
         \x20                     so a final scrape can read the shutdown gauges"
    );
    std::process::exit(2);
}

fn demo_tables(db: &Database) {
    // A numbers table big enough that a 3-way cross join is a torture
    // query (cancellation demos), …
    db.create_table(
        "nums",
        &[("x", DataType::Int)],
        (0..2000).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap();
    // … and a small star schema for sensible queries.
    db.create_table(
        "customers",
        &[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("country", DataType::Str),
        ],
        vec![
            vec![Value::Int(1), Value::from("ada"), Value::from("uk")],
            vec![Value::Int(2), Value::from("grace"), Value::from("us")],
            vec![Value::Int(3), Value::from("edsger"), Value::from("nl")],
        ],
    )
    .unwrap();
    db.create_table(
        "products",
        &[
            ("id", DataType::Int),
            ("label", DataType::Str),
            ("price", DataType::Float),
        ],
        vec![
            vec![Value::Int(10), Value::from("keyboard"), Value::Float(49.5)],
            vec![Value::Int(11), Value::from("monitor"), Value::Float(199.0)],
            vec![Value::Int(12), Value::from("mouse"), Value::Float(25.0)],
        ],
    )
    .unwrap();
    db.create_table(
        "orders",
        &[
            ("id", DataType::Int),
            ("customer_id", DataType::Int),
            ("product_id", DataType::Int),
            ("quantity", DataType::Int),
        ],
        (0..200)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(1 + i % 3),
                    Value::Int(10 + i % 3),
                    Value::Int(1 + (i * 7) % 5),
                ]
            })
            .collect(),
    )
    .unwrap();
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::default();
    let mut admission = AdmissionConfig::default();
    let mut metrics_linger = Duration::ZERO;
    let db = Database::new();

    let mut args = std::env::args().skip(1);
    let expect = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = expect(&mut args, "--addr"),
            "--demo" => demo_tables(&db),
            "--learning-cache" => db.set_learning_cache(true),
            "--csv" => {
                let spec = expect(&mut args, "--csv");
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--csv expects NAME=PATH, got {spec:?}");
                    usage();
                };
                if let Err(e) = db.load_csv(name, path) {
                    eprintln!("cannot load {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("loaded table {name} from {path}");
            }
            "--data-dir" => {
                let dir = expect(&mut args, "--data-dir");
                match db.attach_data_dir(&dir) {
                    Ok(tables) if tables.is_empty() => {
                        eprintln!("data dir {dir}: no committed tables yet")
                    }
                    Ok(tables) => eprintln!("data dir {dir}: loaded {}", tables.join(", ")),
                    Err(e) => {
                        eprintln!("cannot open data dir {dir}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--bulk-csv" => {
                let spec = expect(&mut args, "--bulk-csv");
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--bulk-csv expects NAME=PATH, got {spec:?}");
                    usage();
                };
                if let Err(e) = db.bulk_load_csv(name, path) {
                    eprintln!("cannot bulk-load {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("bulk-loaded persistent table {name} from {path}");
            }
            "--max-conns" => {
                cfg.max_connections = expect(&mut args, "--max-conns")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-queries" => {
                admission.max_concurrent = expect(&mut args, "--max-queries")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queue" => {
                admission.queue_depth = expect(&mut args, "--queue")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queue-timeout-ms" => {
                admission.queue_timeout = Duration::from_millis(
                    expect(&mut args, "--queue-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--threads" => db.set_default_threads(
                expect(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage()),
            ),
            "--no-remote-shutdown" => cfg.allow_remote_shutdown = false,
            "--shards" => {
                cfg.shards = expect(&mut args, "--shards")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-inflight" => {
                cfg.max_inflight_per_conn = expect(&mut args, "--max-inflight")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--idle-timeout-ms" => {
                let ms: u64 = expect(&mut args, "--idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                cfg.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--tenant" => {
                let spec = expect(&mut args, "--tenant");
                let Some((name, weight)) = spec.split_once('=') else {
                    eprintln!("--tenant expects NAME=WEIGHT, got {spec:?}");
                    usage();
                };
                admission.tenants.push(TenantClass {
                    name: name.to_string(),
                    weight: weight.parse().unwrap_or_else(|_| usage()),
                });
            }
            "--metrics-addr" => cfg.metrics_addr = Some(expect(&mut args, "--metrics-addr")),
            "--slow-query-ms" => {
                cfg.slow_query_ms = Some(
                    expect(&mut args, "--slow-query-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--metrics-linger-ms" => {
                metrics_linger = Duration::from_millis(
                    expect(&mut args, "--metrics-linger-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    cfg.admission = admission;

    let mut server = match Server::bind(db, addr.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    #[cfg(unix)]
    signals::install(server.shutdown_handle());
    println!("skinner-server listening on {}", server.local_addr());
    if let Some(maddr) = server.metrics_addr() {
        println!("skinner-server: /metrics on http://{maddr}/metrics");
    }
    server.wait();
    // Human-readable echo of the skinner_shutdown_wake_latency_us gauge;
    // CI asserts the gauge from a /metrics scrape during the linger.
    println!(
        "skinner-server: shutdown wake latency {}us",
        server
            .shutdown_wake_latency()
            .unwrap_or_default()
            .as_micros()
    );
    // The exporter stays up until the Server drops; linger so a final
    // scrape can read the shutdown gauges (CI's wake-latency assert).
    if server.metrics_addr().is_some() && !metrics_linger.is_zero() {
        std::thread::sleep(metrics_linger);
    }
    drop(server);
    println!("skinner-server: drained and joined all threads, bye");
}
