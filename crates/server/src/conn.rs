//! Connection shards: nonblocking event loops multiplexing many client
//! sockets.
//!
//! Each shard owns a [`Poller`] and a slab of [`ConnState`]s. Sockets are
//! nonblocking; bytes accumulate in a [`FrameBuffer`] and are decoded
//! incrementally. Cheap requests (`SET`, `SHOW`, `Prepare`, `Cancel`) are
//! answered inline on the loop; `Query`/`Execute` dispatch to the worker
//! pool and come back as pre-encoded [`Completion`] bytes. Per-connection
//! backpressure pauses reads while the in-flight statement count is at
//! the negotiated cap or the write buffer is over the high-water mark,
//! and an idle sweep reaps connections with no traffic and nothing in
//! flight past the configured deadline.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use skinnerdb::skinner_exec::{CancelToken, Trace};
use skinnerdb::{Prepared, QueryResult, Session};

use crate::admission::{Begin, ShedReason};
use crate::poll::{Event, Interest, Poller, WAKE_TOKEN};
use crate::protocol::{
    ErrorCode, FrameBuffer, QueryProfile, QuerySummary, Request, Response, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION, READ_CHUNK,
};
use crate::server::{
    parse_set, push_frame, sql_error, strip_keyword, write_result_frames, Completion, GateWait,
    Job, JobKind, ShardHandle, Shared,
};

/// Spans the per-query trace ring holds before overwriting the oldest
/// (covers the fixed stages plus a generous number of per-order episode
/// runs; `dropped` in the profile reports any overflow).
const TRACE_SPANS: usize = 64;

/// Completed-statement profiles parked per connection for
/// [`Request::Profile`] retrieval.
const PROFILE_BACKLOG: usize = 16;

/// How query results travel back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutputMode {
    Binary,
    Text,
}

/// Per-connection cancel registry, reachable from *other* threads (the
/// out-of-band cancel path and shutdown). One entry per in-flight
/// statement, keyed by pipeline tag; each entry's token is fresh per
/// query, so stale cancels hit an abandoned token harmlessly, and the
/// `cancelled` flag distinguishes an explicit cancel from an ordinary
/// deadline/work-limit timeout.
pub(crate) struct ConnCancel {
    pub cancel_key: u64,
    entries: Mutex<HashMap<u64, CancelEntry>>,
}

struct CancelEntry {
    token: CancelToken,
    cancelled: bool,
}

impl ConnCancel {
    pub(crate) fn new(cancel_key: u64) -> ConnCancel {
        ConnCancel {
            cancel_key,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Map a pipeline tag to a registry key (untagged statements share
    /// one slot above the `u32` tag space).
    pub(crate) fn tag_key(tag: Option<u32>) -> u64 {
        tag.map(u64::from).unwrap_or(1 << 32)
    }

    /// Register a fresh statement's token under `key` (clearing any stale
    /// cancel aimed at a previous statement of the same tag).
    pub(crate) fn arm(&self, key: u64, token: CancelToken) {
        self.entries.lock().insert(
            key,
            CancelEntry {
                token,
                cancelled: false,
            },
        );
    }

    pub(crate) fn is_armed(&self, key: u64) -> bool {
        self.entries.lock().contains_key(&key)
    }

    /// Cancel every in-flight statement on this connection.
    pub(crate) fn cancel_all(&self) {
        for e in self.entries.lock().values_mut() {
            e.cancelled = true;
            e.token.cancel();
        }
    }

    /// Tear down a finished statement's entry; true if it was explicitly
    /// cancelled.
    pub(crate) fn finish(&self, key: u64) -> bool {
        self.entries
            .lock()
            .remove(&key)
            .map(|e| e.cancelled)
            .unwrap_or(false)
    }
}

/// One client connection on a shard's event loop.
pub(crate) struct ConnState {
    stream: TcpStream,
    token: usize,
    conn_id: u64,
    cancel: Arc<ConnCancel>,
    session: Session,
    prepared: HashMap<u32, Arc<Prepared>>,
    next_stmt_id: u32,
    output: OutputMode,
    /// Negotiated protocol version; 0 until the Hello handshake.
    version: u32,
    tenant: String,
    inbuf: FrameBuffer,
    outbox: Vec<u8>,
    outpos: usize,
    /// Statements dispatched but not yet completed.
    inflight: u32,
    /// Span profiles of recently completed statements, keyed by their
    /// cancel-registry key (newest at the back, capped at
    /// [`PROFILE_BACKLOG`]).
    profiles: VecDeque<(u64, QueryProfile)>,
    last_activity: Instant,
    registered: Interest,
    /// Close once the outbox drains (we sent a terminal error or are done).
    closing: bool,
    /// Socket is gone (EOF/reset); close immediately.
    dead: bool,
}

impl ConnState {
    fn pending_out(&self) -> usize {
        self.outbox.len() - self.outpos
    }

    fn inflight_cap(&self, shared: &Shared) -> u32 {
        if self.version >= 2 {
            shared.cfg.max_inflight_per_conn.max(1)
        } else {
            1
        }
    }

    /// Backpressure: stop reading while at the in-flight cap or while the
    /// peer isn't draining its responses.
    fn wants_read(&self, shared: &Shared) -> bool {
        !self.closing
            && !self.dead
            && self.inflight < self.inflight_cap(shared)
            && self.pending_out() <= shared.cfg.write_highwater
    }

    fn push_resp(&mut self, tag: Option<u32>, resp: Response) {
        let version = self.version.max(1);
        push_frame(&mut self.outbox, tag, version, resp);
    }

    /// Write as much of the outbox as the socket accepts right now.
    fn flush(&mut self) {
        while self.outpos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.outpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.outpos == self.outbox.len() {
            self.outbox.clear();
            self.outpos = 0;
        } else if self.outpos >= READ_CHUNK {
            self.outbox.drain(..self.outpos);
            self.outpos = 0;
        }
    }

    /// Drain the socket into the frame buffer (until WouldBlock/EOF).
    fn read_ready(&mut self) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.inbuf.ingest(&buf[..n]);
                    self.last_activity = Instant::now();
                    if n < buf.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn update_interest(&mut self, shared: &Shared, poller: &Poller) {
        let desired = Interest {
            readable: self.wants_read(shared),
            writable: self.pending_out() > 0,
        };
        if desired != self.registered
            && poller
                .reregister(self.stream.as_raw_fd(), self.token, desired)
                .is_ok()
        {
            self.registered = desired;
        }
    }
}

/// Fixed-slot connection arena; tokens are slot indices (stable for a
/// connection's lifetime, reused after close — completions guard against
/// reuse with the conn id).
struct Slab {
    slots: Vec<Option<ConnState>>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: ConnState) -> usize {
        match self.free.pop() {
            Some(ix) => {
                self.slots[ix] = Some(conn);
                ix
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, token: usize) -> Option<&mut ConnState> {
        self.slots.get_mut(token).and_then(|s| s.as_mut())
    }

    fn remove(&mut self, token: usize) -> Option<ConnState> {
        let conn = self.slots.get_mut(token)?.take();
        if conn.is_some() {
            self.free.push(token);
        }
        conn
    }

    fn tokens(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(ix, s)| s.as_ref().map(|_| ix))
            .collect()
    }
}

/// One connection shard's event loop: new sockets and completions arrive
/// through the [`ShardHandle`] (waker-popped), readiness through the
/// poller.
pub(crate) fn shard_loop(
    shared: Arc<Shared>,
    handle: Arc<ShardHandle>,
    mut poller: Poller,
    shard_ix: usize,
) {
    set_current_shard(shard_ix);
    let mut conns = Slab::new();
    let mut events: Vec<Event> = Vec::new();
    let mut last_sweep = Instant::now();
    loop {
        let _ = poller.wait(&mut events, Duration::from_millis(500));
        if shared.is_shutting_down() {
            break;
        }
        for stream in handle.take_inbox() {
            accept_conn(&shared, &poller, &mut conns, shard_ix, stream);
        }
        for c in handle.take_completions() {
            deliver_completion(&shared, &poller, &mut conns, c);
        }
        for &ev in &events {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            if let Some(conn) = conns.get_mut(ev.token) {
                if ev.readable || ev.error {
                    conn.read_ready();
                }
                if ev.writable {
                    conn.flush();
                }
            }
            finish_io(&shared, &poller, &mut conns, ev.token);
        }
        if last_sweep.elapsed() >= Duration::from_secs(1) {
            last_sweep = Instant::now();
            sweep_idle(&shared, &poller, &mut conns);
        }
    }
    // Teardown: best-effort flush of anything already encoded (e.g. the
    // Ok acknowledging a Shutdown request), then close everything.
    for token in conns.tokens() {
        if let Some(conn) = conns.get_mut(token) {
            conn.flush();
        }
        close_conn(&shared, &poller, &mut conns, token);
    }
    drop(handle.take_inbox());
    drop(handle.take_completions());
}

fn accept_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut Slab,
    _shard_ix: usize,
    stream: TcpStream,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    let cancel = Arc::new(ConnCancel::new(shared.mint_cancel_key()));
    shared.conns.lock().insert(conn_id, cancel.clone());
    let conn = ConnState {
        stream,
        token: 0,
        conn_id,
        cancel,
        session: shared.db.session(),
        prepared: HashMap::new(),
        next_stmt_id: 1,
        output: OutputMode::Binary,
        version: 0,
        tenant: String::new(),
        inbuf: FrameBuffer::new(),
        outbox: Vec::new(),
        outpos: 0,
        inflight: 0,
        profiles: VecDeque::new(),
        last_activity: Instant::now(),
        registered: Interest::READ,
        closing: false,
        dead: false,
    };
    let token = conns.insert(conn);
    let conn = conns.get_mut(token).expect("just inserted");
    conn.token = token;
    if poller
        .register(conn.stream.as_raw_fd(), token, Interest::READ)
        .is_err()
    {
        close_conn(shared, poller, conns, token);
    }
}

fn deliver_completion(shared: &Arc<Shared>, poller: &Poller, conns: &mut Slab, c: Completion) {
    let Some(conn) = conns.get_mut(c.conn_token) else {
        return;
    };
    // Slot reuse guard: the statement's connection may have died and the
    // token been handed to a newcomer.
    if conn.conn_id != c.conn_id {
        return;
    }
    conn.inflight = conn.inflight.saturating_sub(1);
    if let Some((key, profile)) = c.profile {
        // A re-used tag replaces its older profile; the backlog stays
        // bounded regardless.
        conn.profiles.retain(|(k, _)| *k != key);
        conn.profiles.push_back((key, profile));
        while conn.profiles.len() > PROFILE_BACKLOG {
            conn.profiles.pop_front();
        }
    }
    conn.outbox.extend_from_slice(&c.bytes);
    conn.last_activity = Instant::now();
    finish_io(shared, poller, conns, c.conn_token);
}

/// Post-I/O housekeeping for one connection: decode and handle buffered
/// frames (bounded by the in-flight cap), flush, close or re-arm
/// interest.
fn finish_io(shared: &Arc<Shared>, poller: &Poller, conns: &mut Slab, token: usize) {
    let Some(conn) = conns.get_mut(token) else {
        return;
    };
    if !conn.dead {
        pump(shared, conn);
        conn.flush();
    }
    if conn.dead || (conn.closing && conn.pending_out() == 0) {
        close_conn(shared, poller, conns, token);
        return;
    }
    conn.update_interest(shared, poller);
}

/// Decode and handle every complete frame the backpressure rules allow.
fn pump(shared: &Arc<Shared>, conn: &mut ConnState) {
    while !conn.closing && !conn.dead && conn.inflight < conn.inflight_cap(shared) {
        match conn.inbuf.try_frame() {
            Ok(Some(payload)) => handle_frame(shared, conn, &payload),
            Ok(None) => break,
            Err(e) => {
                let msg = e.to_string();
                conn.push_resp(
                    None,
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: msg,
                    },
                );
                conn.closing = true;
            }
        }
    }
}

fn close_conn(shared: &Arc<Shared>, poller: &Poller, conns: &mut Slab, token: usize) {
    let Some(conn) = conns.remove(token) else {
        return;
    };
    let _ = poller.deregister(conn.stream.as_raw_fd());
    // Any still-running statements are wasted work now; cancel them. The
    // conn-id check drops their completions.
    conn.cancel.cancel_all();
    shared.conns.lock().remove(&conn.conn_id);
    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    let _ = conn.stream.shutdown(Shutdown::Both);
}

/// Satellite fix: idle and half-open connections used to pin their slot
/// forever. The sweep closes connections with nothing in flight and no
/// traffic inside the idle deadline.
fn sweep_idle(shared: &Arc<Shared>, poller: &Poller, conns: &mut Slab) {
    let Some(idle) = shared.cfg.idle_timeout else {
        return;
    };
    for token in conns.tokens() {
        let reap = conns
            .get_mut(token)
            .map(|c| c.inflight == 0 && c.pending_out() == 0 && c.last_activity.elapsed() > idle)
            .unwrap_or(false);
        if reap {
            shared.stats.connections_reaped_idle.inc();
            close_conn(shared, poller, conns, token);
        }
    }
}

// ---- frame handling -----------------------------------------------------

fn handle_frame(shared: &Arc<Shared>, conn: &mut ConnState, payload: &[u8]) {
    let req = match Request::decode(payload) {
        Ok(req) => req,
        Err(e) => {
            let msg = e.to_string();
            conn.push_resp(
                None,
                Response::Error {
                    code: ErrorCode::Protocol,
                    message: msg,
                },
            );
            conn.closing = true;
            return;
        }
    };
    if conn.version == 0 {
        return handle_first_frame(shared, conn, req);
    }
    let (tag, req) = match req {
        Request::Tagged { tag, req } => {
            if conn.version < 2 {
                conn.push_resp(
                    None,
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "tagged frames require protocol v2".into(),
                    },
                );
                return;
            }
            (Some(tag), *req)
        }
        req => (None, req),
    };
    match req {
        Request::Hello { .. } => conn.push_resp(
            tag,
            Response::Error {
                code: ErrorCode::Protocol,
                message: "duplicate Hello".into(),
            },
        ),
        Request::Tagged { .. } => unreachable!("decoder rejects nested Tagged"),
        Request::Query { sql } => handle_query(shared, conn, tag, &sql),
        Request::Prepare { sql } => {
            let resp = match conn.session.prepare(&sql) {
                Ok(p) => {
                    let id = conn.next_stmt_id;
                    conn.next_stmt_id += 1;
                    let columns = p
                        .query()
                        .select
                        .iter()
                        .map(|s| s.name().to_string())
                        .collect();
                    conn.prepared.insert(id, Arc::new(p));
                    Response::PrepareOk { id, columns }
                }
                Err(e) => sql_error(&e),
            };
            conn.push_resp(tag, resp);
        }
        Request::Execute { id } => match conn.prepared.get(&id).cloned() {
            Some(prepared) => dispatch(shared, conn, tag, JobKind::Execute { prepared }),
            None => conn.push_resp(
                tag,
                Response::Error {
                    code: ErrorCode::UnknownStatement,
                    message: format!("no prepared statement #{id}"),
                },
            ),
        },
        Request::Close { id } => {
            conn.prepared.remove(&id);
            conn.push_resp(tag, Response::Ok);
        }
        Request::Set { key, value } => {
            let resp = handle_set(conn, &key, &value);
            conn.push_resp(tag, resp);
        }
        Request::Cancel { conn_id, key } => {
            let resp = handle_cancel(shared, conn_id, key);
            conn.push_resp(tag, resp);
        }
        Request::Shutdown => handle_shutdown(shared, conn, tag),
        Request::Profile { key } => {
            let found = if key == u64::MAX {
                conn.profiles.back()
            } else {
                conn.profiles.iter().rev().find(|(k, _)| *k == key)
            };
            let resp = match found {
                Some((_, profile)) => Response::Profile(profile.clone()),
                None => Response::Error {
                    code: ErrorCode::UnknownStatement,
                    message: if key == u64::MAX {
                        "no completed statement to profile yet".into()
                    } else {
                        format!("no profile retained for statement key {key}")
                    },
                },
            };
            conn.push_resp(tag, resp);
        }
    }
}

/// First frame on a connection: Hello — or an out-of-band Cancel/Shutdown
/// on a dedicated connection.
fn handle_first_frame(shared: &Arc<Shared>, conn: &mut ConnState, req: Request) {
    match req {
        Request::Hello { version, tenant } => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                conn.push_resp(
                    None,
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                );
                conn.closing = true;
                return;
            }
            conn.version = version;
            conn.tenant = tenant;
            let max_inflight = conn.inflight_cap(shared);
            let (conn_id, cancel_key) = (conn.conn_id, conn.cancel.cancel_key);
            conn.push_resp(
                None,
                Response::HelloOk {
                    version,
                    conn_id,
                    cancel_key,
                    max_inflight,
                },
            );
        }
        Request::Cancel { conn_id, key } => {
            let resp = handle_cancel(shared, conn_id, key);
            conn.push_resp(None, resp);
            conn.closing = true;
        }
        Request::Shutdown => {
            handle_shutdown(shared, conn, None);
            conn.closing = true;
        }
        _ => {
            conn.push_resp(
                None,
                Response::Error {
                    code: ErrorCode::Protocol,
                    message: "expected Hello as the first message".into(),
                },
            );
            conn.closing = true;
        }
    }
}

fn handle_shutdown(shared: &Arc<Shared>, conn: &mut ConnState, tag: Option<u32>) {
    if !shared.cfg.allow_remote_shutdown {
        conn.push_resp(
            tag,
            Response::Error {
                code: ErrorCode::Protocol,
                message: "remote shutdown is disabled on this server".into(),
            },
        );
        return;
    }
    conn.push_resp(tag, Response::Ok);
    conn.flush(); // the loop exits on the flag; get the Ok out now
    shared.trigger_shutdown();
}

fn handle_cancel(shared: &Shared, conn_id: u64, key: u64) -> Response {
    let conns = shared.conns.lock();
    match conns.get(&conn_id) {
        Some(conn) if conn.cancel_key == key => {
            conn.cancel_all();
            Response::Ok
        }
        _ => Response::Error {
            code: ErrorCode::Protocol,
            message: "unknown connection id or bad cancel key".into(),
        },
    }
}

fn handle_set(conn: &mut ConnState, key: &str, value: &str) -> Response {
    if key.trim().eq_ignore_ascii_case("output") {
        return match value.trim().to_ascii_lowercase().as_str() {
            "binary" => {
                conn.output = OutputMode::Binary;
                Response::Ok
            }
            "text" => {
                conn.output = OutputMode::Text;
                Response::Ok
            }
            other => Response::Error {
                code: ErrorCode::Sql,
                message: format!("output must be 'binary' or 'text', got {other:?}"),
            },
        };
    }
    match conn.session.set_option(key, value) {
        Ok(()) => Response::Ok,
        Err(e) => sql_error(&e),
    }
}

/// `SET`/`SHOW` text commands and plain SQL, multiplexed over Query. The
/// text commands are answered inline on the event loop; SQL dispatches.
fn handle_query(shared: &Arc<Shared>, conn: &mut ConnState, tag: Option<u32>, sql: &str) {
    let trimmed = sql.trim().trim_end_matches(';').trim();
    if let Some(rest) = strip_keyword(trimmed, "SET") {
        let resp = match parse_set(rest) {
            Some((key, value)) => handle_set(conn, &key, &value),
            None => Response::Error {
                code: ErrorCode::Sql,
                message: "usage: SET <option> = <value>".into(),
            },
        };
        conn.push_resp(tag, resp);
        return;
    }
    if let Some(rest) = strip_keyword(trimmed, "SHOW") {
        match handle_show(shared, rest) {
            Ok(table) => {
                let version = conn.version.max(1);
                write_result_frames(
                    &mut conn.outbox,
                    tag,
                    version,
                    conn.output,
                    shared.cfg.rows_per_batch,
                    table,
                    QuerySummary::default(),
                );
            }
            Err(resp) => conn.push_resp(tag, resp),
        }
        return;
    }
    let strategy = conn.session.strategy();
    dispatch(
        shared,
        conn,
        tag,
        JobKind::Query {
            sql: sql.to_string(),
            strategy,
        },
    );
}

/// Hand a statement to the worker pool: arm its cancel token (before
/// admission, so a cancel landing during the queue wait is not lost),
/// take the admission gate's non-blocking verdict, and submit.
fn dispatch(shared: &Arc<Shared>, conn: &mut ConnState, tag: Option<u32>, kind: JobKind) {
    if shared.is_shutting_down() {
        conn.push_resp(
            tag,
            Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            },
        );
        return;
    }
    let key = ConnCancel::tag_key(tag);
    if conn.cancel.is_armed(key) {
        conn.push_resp(
            tag,
            Response::Error {
                code: ErrorCode::Protocol,
                message: match tag {
                    Some(t) => format!("tag {t} already has a statement in flight"),
                    None => {
                        "untagged statement already in flight (pipelining requires tags)".into()
                    }
                },
            },
        );
        return;
    }
    // Fresh per-query token honouring the session deadline; the deadline
    // clock also covers queue time — client-perceived latency is what the
    // deadline bounds.
    let token = match conn.session.settings().deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    // Always-on tracing: the ring is preallocated here (one small
    // allocation per statement, off the execution hot path) and every
    // stage records plain monotonic timestamps into it. The trace epoch
    // is this dispatch instant, so `admission_wait` is measured from the
    // client's perspective.
    let trace = Trace::new(TRACE_SPANS);
    let ctx = conn
        .session
        .exec_context()
        .with_cancel(token.clone())
        .with_trace(trace);
    conn.cancel.arm(key, token.clone());
    let gate = match shared.gate.begin(&conn.tenant) {
        Begin::Granted(p) => GateWait::Granted(p),
        Begin::Queued(t) => GateWait::Queued(t),
        Begin::Shed(reason) => {
            conn.cancel.finish(key);
            let code = match reason {
                ShedReason::Closed => ErrorCode::ShuttingDown,
                _ => ErrorCode::Overloaded,
            };
            conn.push_resp(
                tag,
                Response::Error {
                    code,
                    message: reason.message(shared.gate.config()),
                },
            );
            return;
        }
    };
    conn.inflight += 1;
    shared.submit(Job {
        shard: shard_of(shared, conn),
        conn_token: conn.token,
        conn_id: conn.conn_id,
        tag,
        version: conn.version.max(1),
        output: conn.output,
        gate,
        token,
        cancel: conn.cancel.clone(),
        ctx,
        kind,
    });
}

/// Which shard a connection lives on. Shards never migrate connections,
/// so this is derivable from the loop that called us; stored per job for
/// completion routing.
fn shard_of(shared: &Arc<Shared>, conn: &ConnState) -> usize {
    // The conn's token is shard-local; the shard index travels via the
    // thread-local set by shard_loop.
    let _ = (shared, conn);
    CURRENT_SHARD.with(|s| s.get())
}

thread_local! {
    static CURRENT_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

pub(crate) fn set_current_shard(ix: usize) {
    CURRENT_SHARD.with(|s| s.set(ix));
}

fn handle_show(shared: &Shared, what: &str) -> Result<QueryResult, Response> {
    let what = what.trim().to_ascii_uppercase();
    match what.as_str() {
        "SERVER STATS" => {
            let cache = shared.db.learning_cache_stats();
            let mut gauges: Vec<(String, u64)> = vec![
                (
                    "active_connections".into(),
                    shared.active_conns.load(Ordering::SeqCst) as u64,
                ),
                ("active_queries".into(), shared.gate.active()),
                ("queued_queries".into(), shared.gate.queued() as u64),
                ("shed_total".into(), shared.gate.shed_total()),
                ("admitted_total".into(), shared.gate.admitted_total()),
                // The instance-wide default only — connections may
                // override per session via SET learning_cache, which the
                // hit/miss/published counters below reflect.
                (
                    "learning_cache.enabled_default".into(),
                    shared.db.learning_cache_enabled() as u64,
                ),
                ("learning_cache.entries".into(), cache.entries as u64),
                ("learning_cache.hits".into(), cache.hits),
                ("learning_cache.misses".into(), cache.misses),
                ("learning_cache.invalidations".into(), cache.invalidations),
                ("learning_cache.published".into(), cache.published),
                ("learning_cache.evictions".into(), cache.evictions),
                (
                    "learning_cache.generalized_hits".into(),
                    cache.generalized_hits,
                ),
                (
                    "learning_cache.quarantined".into(),
                    cache.quarantined as u64,
                ),
                ("learning_cache.quarantines".into(), cache.quarantines),
                (
                    "learning_cache.durable".into(),
                    shared.db.learning_cache().is_durable() as u64,
                ),
                ("learning_cache.loaded".into(), cache.loaded),
                ("learning_cache.load_rejected".into(), cache.load_rejected),
                ("learning_cache.flushes".into(), cache.flushes),
            ];
            for t in shared.gate.tenant_snapshot() {
                let name = &t.name;
                gauges.push((format!("tenant.{name}.weight"), u64::from(t.weight)));
                gauges.push((format!("tenant.{name}.inflight"), u64::from(t.inflight)));
                gauges.push((format!("tenant.{name}.waiting"), u64::from(t.waiting)));
                gauges.push((format!("tenant.{name}.admitted"), t.admitted));
                gauges.push((format!("tenant.{name}.shed"), t.shed));
            }
            Ok(shared.stats.snapshot_table(&gauges))
        }
        "STRATEGIES" => {
            let names = shared.db.strategies().names();
            Ok(QueryResult {
                columns: vec!["strategy".into()],
                rows: names
                    .into_iter()
                    .map(|n| vec![skinnerdb::Value::from(n.as_str())])
                    .collect(),
            })
        }
        other => Err(Response::Error {
            code: ErrorCode::Sql,
            message: format!("unknown SHOW target {other:?} (try SERVER STATS, STRATEGIES)"),
        }),
    }
}
