//! # skinner_server — SkinnerDB as a standalone database server
//!
//! The paper describes SkinnerDB as a system clients submit queries to;
//! this crate is that serving layer over the embedded library: a TCP
//! server (std only — no external dependencies) that maps each client
//! connection to its own [`skinnerdb::Session`] over one shared
//! [`skinnerdb::Database`], with server-level admission control so
//! overload degrades predictably.
//!
//! ```no_run
//! use skinner_server::{Server, ServerConfig};
//! use skinnerdb::Database;
//!
//! let db = Database::new();
//! // … create tables …
//! let mut server = Server::bind(db, "127.0.0.1:7878", ServerConfig::default()).unwrap();
//! server.wait(); // serve until a wire-level Shutdown arrives
//! ```
//!
//! The in-repo client is the `skinner_client` crate; the `skinner-server`
//! binary in this crate starts a server from the command line.
//!
//! ## Wire protocol
//!
//! The full normative specification — frame layout, message tags,
//! error codes, the cancel handshake — lives next to this crate in
//! `crates/server/PROTOCOL.md`; the summary:
//!
//! Frames are a little-endian `u32` payload length followed by the
//! payload; the payload's first byte is the message tag (see
//! [`protocol`]). Strings are length-prefixed UTF-8; values carry a
//! one-byte type tag (int / float / string). The flow:
//!
//! 1. **Handshake** — the client opens a TCP connection and sends
//!    `Hello{version, tenant}`; the server answers `HelloOk{version,
//!    conn_id, cancel_key, max_inflight}`. Versions 1 and 2 are accepted
//!    and echoed; the `(conn_id, cancel_key)` pair is this connection's
//!    cancellation credential, and `max_inflight` is the pipelining cap.
//! 2. **Queries** — `Query{sql}` runs a SQL script under the connection's
//!    session. The server streams back `RowHeader{columns}`, zero or more
//!    `RowBatch{rows}`, and a final `Done{summary}` carrying script totals
//!    plus per-statement work/wall/episode metrics. Failures produce a
//!    single `Error{code, message}` instead. Under protocol v2 a client
//!    may wrap requests in `Tagged{tag, req}` envelopes and keep up to
//!    `max_inflight` statements in flight; every response frame for a
//!    tagged request comes back wrapped in `Tagged{tag, resp}`, so
//!    pipelined result streams interleave without ambiguity.
//! 3. **Session options** — `Set{key, value}` (or a SQL-style `SET key =
//!    value` through `Query`) adjusts the session: `strategy` (any
//!    registered engine, e.g. `skinner-c`, `traditional`,
//!    `parallel_skinner`), `threads`, `work_limit`, `deadline_ms`, and the
//!    wire-level `output` (`binary` row batches or `text` — one rendered
//!    table per query, via the library's shared renderer).
//! 4. **Prepared statements** — `Prepare{sql}` → `PrepareOk{id, columns}`
//!    binds a SELECT once; `Execute{id}` runs it (streaming like Query);
//!    `Close{id}` drops it.
//! 5. **Cancel** — out-of-band, Postgres style: while a query runs on
//!    connection A, the client opens a *new* connection and sends
//!    `Cancel{conn_id, cancel_key}` as its only message. The server trips
//!    connection A's cooperative cancel token; A's query stops at its next
//!    slice boundary and A receives `Error{Cancelled}` promptly. The
//!    credential check stops third parties from cancelling other people's
//!    queries.
//! 6. **Introspection** — `SHOW SERVER STATS` (through `Query`) returns a
//!    `metric | value` table: active/total connections, queued and shed
//!    queries, latency quantiles, regret proxies and per-strategy
//!    aggregates (queries, learning episodes, result tuples ≈ cumulative
//!    reward, work units, wall time). `SHOW STRATEGIES` lists the
//!    registry. `Profile{key}` returns the span timeline (admission wait,
//!    parse/bind, preprocess, per-order episode runs, postprocess, encode)
//!    of a recently completed statement — EXPLAIN ANALYZE over the wire.
//!    With [`ServerConfig::metrics_addr`] set, the same telemetry registry
//!    is additionally served as Prometheus text on `GET /metrics`, and
//!    [`ServerConfig::slow_query_ms`] enables a structured slow-query log
//!    line (template key, join order, convergence, per-stage micros).
//! 7. **Shutdown** — `Shutdown` (ack `Ok`) drains the server: the
//!    admission gate closes (queued queries shed with `ShuttingDown`),
//!    running queries are cancelled, sockets are shut, and every thread —
//!    acceptor and per-connection handlers — is joined before the process
//!    exits.
//!
//! ## Architecture: event loops + completion pool
//!
//! The server is readiness-based, not thread-per-connection. A small set
//! of connection shards each run a nonblocking event loop (epoll on
//! Linux, a portable fallback elsewhere) multiplexing many sockets with
//! per-connection read/write buffers and incremental frame decoding.
//! Query execution is dispatched to a completion pool; finished results
//! come back to the owning shard as pre-encoded bytes through a
//! completion queue plus waker. Backpressure is per connection: reads
//! pause while the in-flight statement count is at the negotiated cap or
//! the write buffer is over the high-water mark, and idle connections
//! are reaped after `idle_timeout`.
//!
//! ## Admission control
//!
//! A global [`admission::AdmissionGate`] (a one-unit-per-query
//! [`skinnerdb::skinner_exec::WorkBudget`] used as a concurrency gate)
//! admits at most `max_concurrent` queries; up to `queue_depth` more wait
//! (bounded, with a timeout); everything beyond that is refused with
//! `Error{Overloaded}` immediately. Tenants declared in
//! [`admission::AdmissionConfig::tenants`] get weighted fair shares of
//! the concurrency slots: a tenant below its share is admitted ahead of
//! queued work from tenants above theirs, while unused capacity still
//! flows to whoever wants it. Connections above `max_connections` are
//! refused at accept time with `TooManyConnections`.

pub mod admission;
pub(crate) mod conn;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod stats;

pub use admission::{
    Admission, AdmissionConfig, AdmissionGate, Begin, ShedReason, TenantClass, TenantPermit,
    TenantStat, Ticket, DEFAULT_TENANT,
};
pub use metrics::MetricsExporter;
pub use protocol::{
    ErrorCode, FrameBuffer, ProfileSpan, QueryProfile, QuerySummary, Request, Response,
    StatementSummary, WireError, DEFAULT_MAX_INFLIGHT, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use stats::{template_key, ServerStats, StrategyAgg};

// The registry/handle types `ServerStats` exposes, for embedders.
pub use skinner_telemetry::{Counter, Gauge, Histo, Registry};

// The value/result types that cross the wire, for client-side use.
pub use skinnerdb::{QueryResult, Value};
