//! The `/metrics` exporter: a minimal HTTP endpoint serving the telemetry
//! registry in Prometheus text exposition format (version 0.0.4).
//!
//! One dedicated thread accepts plain HTTP/1.x GETs on a nonblocking
//! `TcpListener`. Per request it invokes a refresh hook (the server
//! samples live gauges — active connections, admission-gate tenants,
//! learning-cache counters — into the registry) and writes the rendered
//! exposition with `Connection: close`. No keep-alive, no TLS, no routing
//! beyond `/metrics` — it is an observability sidecar, not a web server,
//! and it deliberately shares nothing with the query protocol's event
//! loops so a scrape can never stall a query (and vice versa).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use skinner_telemetry::Registry;

/// A running exporter; dropping it stops the thread.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` and serve `registry`, calling `refresh` before each
    /// render so sampled gauges are current.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Registry,
        refresh: impl Fn() + Send + 'static,
    ) -> std::io::Result<MetricsExporter> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("skinner-metrics".into())
            .spawn(move || serve(listener, registry, refresh, stop2))?;
        Ok(MetricsExporter {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread and join it. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, registry: Registry, refresh: impl Fn(), stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle(stream, &registry, &refresh),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle(mut stream: TcpStream, registry: &Registry, refresh: &impl Fn()) {
    // The accepted socket inherits nonblocking from the listener on some
    // platforms; scraping is request/response, so blocking with a short
    // timeout is simplest and safe.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read until the end of the request headers (or timeout/overflow) —
    // only the request line matters.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request_line = buf
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") || path == "/" {
        refresh();
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics\n".to_string(),
        )
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    #[test]
    fn serves_prometheus_text_and_refreshes() {
        let registry = Registry::new();
        let c = registry.counter("skinner_test_total", "Test counter.");
        let g = registry.gauge("skinner_test_sampled", "Sampled on scrape.");
        let g2 = g.clone();
        let mut exp = MetricsExporter::bind("127.0.0.1:0", registry, move || g2.inc()).unwrap();
        c.add(3);
        let (status, body) = scrape(exp.local_addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE skinner_test_total counter"), "{body}");
        assert!(body.contains("skinner_test_total 3"), "{body}");
        assert!(body.contains("skinner_test_sampled 1"), "{body}");
        // Second scrape re-samples; counters stay monotone.
        c.inc();
        let (_, body2) = scrape(exp.local_addr(), "/metrics");
        assert!(body2.contains("skinner_test_total 4"), "{body2}");
        assert!(body2.contains("skinner_test_sampled 2"), "{body2}");
        let (status404, _) = scrape(exp.local_addr(), "/nope");
        assert!(status404.contains("404"), "{status404}");
        exp.shutdown();
    }
}
